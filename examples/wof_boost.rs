//! Power management in action: Workload Optimized Frequency, MMA power
//! gating, fine-grained throttling, and the droop sensor (paper §IV).
//!
//! Run with: `cargo run --release --example wof_boost`

use p10sim::core::scenario::run_benchmark;
use p10sim::powermgmt::gating::{simulate as gate, GatingConfig, MmaEvent};
use p10sim::powermgmt::throttle::{
    simulate_droop, simulate_fine_loop, step_load, DroopSensor, FineThrottle, PdnModel,
};
use p10sim::powermgmt::wof::{ceff_ratio, solve, WofConfig};
use p10sim::uarch::CoreConfig;
use p10sim::workloads::specint_like;

fn main() {
    // --- 1. WOF: measure each workload's effective capacitance on the
    // cycle model and solve its shipping frequency. ---
    println!("== Workload Optimized Frequency ==");
    let cfg = CoreConfig::power10();
    let suite = specint_like();
    let results: Vec<_> = suite
        .iter()
        .map(|b| run_benchmark(&cfg, b, 42, 20_000))
        .collect();
    let ref_power = results
        .iter()
        .map(|r| r.power.active())
        .fold(0.0f64, f64::max);
    let wof = WofConfig::typical();
    for r in &results {
        let ceff = ceff_ratio(r.power.active(), ref_power);
        let d = solve(&wof, ceff, 0.0);
        let gated = solve(&wof, ceff, 2.0); // MMA leakage reclaimed
        println!(
            "{:<14} Ceff {:>5.2} -> {:.2} GHz ({:+5.1}% boost); MMA gated: {:.2} GHz",
            r.workload,
            ceff,
            d.point.freq,
            (d.boost - 1.0) * 100.0,
            gated.point.freq
        );
    }

    // --- 2. MMA power gating with wake-up hints. ---
    println!("\n== MMA power gating ==");
    let g = GatingConfig::default();
    let cold = gate(&g, &[MmaEvent::Use(50_000)], 200_000);
    let hinted = gate(
        &g,
        &[
            MmaEvent::Hint(50_000 - g.wake_latency),
            MmaEvent::Use(50_000),
        ],
        200_000,
    );
    println!(
        "cold use : {} stall cycles, {:.0} leakage-units saved",
        cold.wake_stall_cycles, cold.leakage_saved
    );
    println!(
        "with hint: {} stall cycles, {:.0} leakage-units saved  (the architected hint hides the wake)",
        hinted.wake_stall_cycles, hinted.leakage_saved
    );

    // --- 3. Fine-grained throttling at a fixed frequency. ---
    println!("\n== Fine-grained instruction throttle (cap = 100) ==");
    let mut ctl = FineThrottle::new(100.0, 0.35);
    let powers = simulate_fine_loop(&mut ctl, &vec![150.0; 60], 1.0);
    for (i, p) in powers.iter().enumerate().step_by(10) {
        println!(
            "interval {i:>3}: power {p:>6.1}  throttle {:.0}%",
            ctl.level() * 100.0
        );
    }

    // --- 4. Droop sensing on a step load. ---
    println!("\n== Digital droop sensor ==");
    let demand = step_load(20, 40, 0.2, 2.0);
    let pdn = PdnModel::default();
    let without = simulate_droop(&pdn, None, &demand);
    let with = simulate_droop(&pdn, Some(&DroopSensor::default()), &demand);
    println!(
        "worst droop without DDS: {:.1}% of nominal; with DDS: {:.1}% ({} engagements)",
        without.max_droop * 100.0,
        with.max_droop * 100.0,
        with.engagements
    );
}
