//! Quickstart: write a small POWER-like program, execute it functionally,
//! then replay it through the POWER9 and POWER10 cycle models and compare
//! performance, power, and energy efficiency.
//!
//! Run with: `cargo run --release --example quickstart`

use p10sim::core::scenario::run_traces;
use p10sim::isa::{Machine, ProgramBuilder, Reg};
use p10sim::uarch::CoreConfig;

fn main() {
    // 1. Build a program: a counted loop summing a small array.
    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(1), 0x10_0000); // array base
    b.li(Reg::gpr(3), 0); //          accumulator
    b.li(Reg::gpr(4), 5_000); //      iterations
    b.mtctr(Reg::gpr(4));
    let top = b.bind_label();
    b.ld(Reg::gpr(5), Reg::gpr(1), 0);
    b.add(Reg::gpr(3), Reg::gpr(3), Reg::gpr(5));
    b.addi(Reg::gpr(1), Reg::gpr(1), 8);
    b.bdnz(top);
    let program = b.build();

    // 2. Execute functionally: full architectural state, and a dynamic-op
    //    trace as the by-product.
    let mut machine = Machine::new();
    for i in 0..5_000u64 {
        machine.mem.write_u64(0x10_0000 + i * 8, i);
    }
    let trace = machine.run(&program, 1_000_000).expect("program runs");
    println!(
        "functional result: sum = {} over {} dynamic instructions",
        machine.gpr(3),
        trace.len()
    );

    // 3. Replay the same trace through both timing models.
    println!(
        "\n{:<10} {:>8} {:>10} {:>12} {:>12}",
        "machine", "IPC", "cycles", "core power", "perf/watt"
    );
    let mut rows = Vec::new();
    for cfg in [CoreConfig::power9(), CoreConfig::power10()] {
        let r = run_traces(&cfg, "quickstart", vec![trace.clone()]);
        println!(
            "{:<10} {:>8.2} {:>10} {:>12.1} {:>12.4}",
            r.config,
            r.ipc(),
            r.sim.activity.cycles,
            r.core_power(),
            r.efficiency()
        );
        rows.push(r);
    }
    let eff = rows[1].efficiency() / rows[0].efficiency();
    println!(
        "\nPOWER10 delivers {:.2}x the performance-per-watt of POWER9 on this loop.",
        eff
    );
}
