//! Design-space exploration: the pipeline-depth study (Fig. 2) and the
//! POWER9→POWER10 ablation (Fig. 4) — how the methodology picks design
//! points before committing silicon.
//!
//! Run with: `cargo run --release --example design_space`

use p10sim::core::ablation::run_fig4;
use p10sim::pipedepth::{run_fig2, DepthParams};
use p10sim::workloads::specint_like;

fn main() {
    // --- Fig. 2: where should the pipeline depth sit? ---
    println!("== Optimal pipeline depth (relative BIPS vs FO4/stage) ==");
    let fig2 = run_fig2(&DepthParams::default(), &[0.25, 0.15]);
    print!("{:>6}", "fo4");
    for &t in &fig2.power_targets {
        print!("{t:>8.2}x");
    }
    println!();
    for &fo4 in fig2.fo4_grid.iter().step_by(4) {
        print!("{fo4:>6.0}");
        for &t in &fig2.power_targets {
            let p = fig2
                .points
                .iter()
                .find(|p| (p.fo4 - fo4).abs() < 1e-9 && (p.power_target - t).abs() < 1e-9)
                .expect("point in sweep");
            print!("{:>9.3}", p.bips);
        }
        println!();
    }
    for &t in &fig2.power_targets {
        println!("  optimum at {t:.2}x power: {} FO4", fig2.optimal_fo4(t));
    }
    println!("  (the paper's finding: stable at ~27 FO4 for the targets of interest,");
    println!("   shifting shallower only for very low power envelopes)\n");

    // --- Fig. 4: which design changes paid off? ---
    println!("== POWER9 -> POWER10 design-change ablation ==");
    println!("   (cumulative groups on the SPECint-like suite; takes a minute)");
    let suite = specint_like();
    let fig4 = run_fig4(&suite, 42, 60_000);
    println!(
        "{:<20} {:>8} {:>8} {:>8}  max workload",
        "group", "ST", "SMT", "max"
    );
    for r in &fig4.rows {
        println!(
            "{:<20} {:>7.1}% {:>7.1}% {:>7.1}%  {}",
            r.group,
            r.st_gain * 100.0,
            r.smt_gain * 100.0,
            r.max_gain * 100.0,
            r.max_workload
        );
    }
    let total: f64 = fig4.rows.iter().map(|r| (1.0 + r.smt_gain).ln()).sum();
    println!(
        "cumulative SMT throughput gain: {:+.1}%",
        (total.exp() - 1.0) * 100.0
    );
}
