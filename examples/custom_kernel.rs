//! Write your own kernel in textual assembly, run it functionally, and
//! compare POWER9 vs POWER10 — including an MMA variant.
//!
//! Run with: `cargo run --release --example custom_kernel`

use p10sim::core::scenario::run_traces;
use p10sim::isa::asm::assemble;
use p10sim::isa::Machine;
use p10sim::uarch::CoreConfig;

const VSU_KERNEL: &str = "
    # dot-product-ish VSX loop: 2 FMAs per iteration
    li r1, 0x100000        # x
    li r2, 0x140000        # y
    li r4, 4000
    mtctr r4
loop:
    lxv vs34, 0(r1)
    lxv vs35, 0(r2)
    xvmaddadp vs40, vs34, vs35
    xvmaddadp vs41, vs34, vs35
    addi r1, r1, 16
    addi r2, r2, 16
    bdnz loop
";

const MMA_KERNEL: &str = "
    # the same math pressure as 8 rank-1 updates per iteration
    li r1, 0x100000
    li r2, 0x140000
    li r4, 4000
    mtctr r4
    xxsetaccz acc0
    xxsetaccz acc1
loop:
    lxvp vs34, 0(r1)
    lxvp vs36, 0(r2)
    xvf64gerpp acc0, vs34, vs36
    xvf64gerpp acc1, vs34, vs37
    addi r1, r1, 32
    addi r2, r2, 32
    bdnz loop
";

fn main() {
    for (name, src) in [("VSX kernel", VSU_KERNEL), ("MMA kernel", MMA_KERNEL)] {
        let program = assemble(src).expect("kernel assembles");
        let mut m = Machine::new();
        for i in 0..40_000u64 {
            m.mem.write_f64(0x10_0000 + i * 8, (i % 17) as f64 * 0.5);
            m.mem.write_f64(0x14_0000 + i * 8, (i % 13) as f64 * 0.25);
        }
        let trace = m.run(&program, 10_000_000).expect("kernel runs");
        println!("== {name} ({} dynamic instructions) ==", trace.len());
        for cfg in [CoreConfig::power9(), CoreConfig::power10()] {
            if name == "MMA kernel" && cfg.mma.is_none() {
                println!("{:<10} (no MMA facility — kernel not runnable)", cfg.name);
                continue;
            }
            let r = run_traces(&cfg, name, vec![trace.clone()]);
            println!(
                "{:<10} {:>6.2} flops/cycle   IPC {:>5.2}   core power {:>7.1}",
                r.config,
                r.sim.activity.flops_per_cycle(),
                r.ipc(),
                r.core_power()
            );
        }
        println!();
    }
    println!("Swap in your own assembly above — the full mnemonic list is in");
    println!("`p10_isa::asm` (scalar, VSX, MMA, branches, memory).");
}
