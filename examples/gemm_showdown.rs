//! GEMM showdown: the same DGEMM math in vector (VSU) code and in MMA
//! outer-product code, replayed on POWER9 and POWER10 — the Fig. 5 story
//! as a runnable demo, plus the per-instruction density that explains it.
//!
//! Run with: `cargo run --release --example gemm_showdown`

use p10sim::core::scenario::run_traces;
use p10sim::kernels::gemm::{bf16gemm_mma, dgemm_mma, dgemm_vsu, int8gemm_mma, sgemm_mma};
use p10sim::uarch::CoreConfig;

fn main() {
    let ops = 60_000u64;
    let p9 = CoreConfig::power9();
    let p10 = CoreConfig::power10();

    println!(
        "{:<26} {:>10} {:>10} {:>11} {:>11}",
        "kernel @ machine", "flops/cyc", "% of peak", "flops/inst", "core power"
    );

    let mut baseline_power = 0.0;
    let mut baseline_fpc = 0.0;
    let cases: Vec<(&CoreConfig, p10sim::workloads::Workload, f64)> = vec![
        (&p9, dgemm_vsu(1 << 40), f64::from(p9.vsx_peak_dp_flops())),
        (&p10, dgemm_vsu(1 << 40), f64::from(p10.vsx_peak_dp_flops())),
        (&p10, dgemm_mma(1 << 40), f64::from(p10.mma_peak_dp_flops())),
        (&p10, sgemm_mma(1 << 40), 64.0),     // SP peak on the grid
        (&p10, bf16gemm_mma(1 << 40), 64.0),  // BF16: 2-deep dots in f32
        (&p10, int8gemm_mma(1 << 40), 128.0), // INT8 op-equivalents
    ];
    for (cfg, kernel, peak) in cases {
        let trace = kernel.trace_or_panic(ops);
        let flops_per_inst = trace.total_flops() as f64 / trace.len() as f64;
        let r = run_traces(cfg, &kernel.name, vec![trace]);
        let fpc = r.sim.activity.flops_per_cycle();
        println!(
            "{:<26} {:>10.2} {:>9.1}% {:>11.2} {:>11.1}",
            format!("{} @ {}", kernel.name, cfg.name),
            fpc,
            fpc / peak * 100.0,
            flops_per_inst,
            r.core_power()
        );
        if kernel.name == "dgemm_vsu" && cfg.name == "POWER9" {
            baseline_power = r.core_power();
            baseline_fpc = fpc;
        } else if kernel.name == "dgemm_mma" {
            println!(
                "    -> {:.2}x the flops/cycle of the POWER9 VSU baseline at {:+.1}% core power",
                fpc / baseline_fpc,
                (r.core_power() / baseline_power - 1.0) * 100.0
            );
        }
    }

    println!("\nWhy MMA wins: one xvf64gerpp performs 16 flops from two VSR reads,");
    println!("with partial sums living in the accumulators instead of round-tripping");
    println!("through the register file — more math per instruction, less data movement.");
}
