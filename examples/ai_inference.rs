//! End-to-end AI inference: ResNet-50 and BERT-Large estimated on
//! POWER9, POWER10 without the MMA, and POWER10 with the MMA — then
//! scaled to the socket level, reproducing the paper's headline AI
//! numbers (Fig. 6 and the 10×/21× projections).
//!
//! Run with: `cargo run --release --example ai_inference`

use p10sim::core::inference::{compose_bf16, compose_int8, run_fig6};
use p10sim::core::socket::{project_socket, SocketScaling};
use p10sim::kernels::models::{bert_large, resnet50};
use p10sim::uarch::CoreConfig;

fn main() {
    for model in [resnet50(100), bert_large(8, 384)] {
        println!(
            "=== {} (batch {}, {:.1} GFLOP, {:.0}M parameters) ===",
            model.name,
            model.batch,
            model.gemm_flops() as f64 / 1e9,
            model.parameters as f64 / 1e6,
        );
        let f = run_fig6(&model, 30_000);
        println!(
            "{:<16} {:>13} {:>13} {:>7} {:>11}",
            "machine", "instructions", "cycles", "CPI", "GEMM-inst %"
        );
        let p10 = CoreConfig::power10();
        let bf16 = compose_bf16(&model, &p10, 30_000);
        let int8 = compose_int8(&model, &p10, 30_000);
        for r in [&f.p9, &f.p10_no_mma, &f.p10_mma, &bf16, &int8] {
            println!(
                "{:<16} {:>13.3e} {:>13.3e} {:>7.3} {:>10.1}%",
                r.config,
                r.instructions,
                r.cycles,
                r.cpi(),
                r.gemm_inst_ratio * 100.0
            );
        }
        println!(
            "core speedups vs POWER9: {:.2}x without MMA, {:.2}x with MMA, \
             {:.2}x BF16, {:.2}x INT8",
            f.speedup_no_mma(),
            f.speedup_mma(),
            f.p9.cycles / bf16.cycles,
            f.p9.cycles / int8.cycles
        );

        let p = project_socket(&f, &SocketScaling::default());
        println!(
            "socket projection: FP32 {:.1}x, INT8 {:.1}x  \
             (2.5x cores, 1.1x system, INT8 2x on the grid)\n",
            p.fp32_socket_speedup, p.int8_socket_speedup
        );
    }
    println!("Note the Fig. 6 signature: enabling the MMA *cuts total instructions*");
    println!("(each ger op does the work of several vector FMAs) while CPI rises —");
    println!("fewer, denser instructions — and cycles fall the most.");
}
