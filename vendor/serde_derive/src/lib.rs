//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! type shapes this workspace actually contains — non-generic structs
//! (named, tuple, unit) and enums (unit, tuple, and struct variants) —
//! directly on `proc_macro`, since `syn`/`quote` are not available
//! offline. The generated code targets the simplified value-tree traits
//! in the vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("derive(Serialize): generated code parses")
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("derive(Deserialize): generated code parses")
}

// ---- a minimal item model ----

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde derive (vendored): generic types are not supported; found generics on `{name}`"
        );
    }
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_fields(&tokens, i, &name)),
        "enum" => Body::Enum(parse_variants(&tokens, i, &name)),
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Item { name, body }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_fields(tokens: &[TokenTree], i: usize, name: &str) -> Fields {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde derive: unexpected struct body for `{name}`: {other:?}"),
    }
}

/// Parses `attrs vis name: Type,` sequences, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other}"),
        };
        names.push(field);
        // Skip `: Type` up to the next top-level comma. Commas inside
        // generic arguments sit at this token level, so track `<`/`>`.
        let mut angle = 0i32;
        i += 1;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts fields of a tuple struct/variant (top-level comma segments).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing = true;
                continue;
            }
            _ => {}
        }
        trailing = false;
    }
    if trailing {
        count -= 1; // `(A, B,)` — trailing comma opens no new field
    }
    count
}

fn parse_variants(tokens: &[TokenTree], i: usize, name: &str) -> Vec<Variant> {
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde derive: expected enum body for `{name}`, found {other:?}"),
    };
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant {
            name: vname,
            fields,
        });
        // Skip to the next variant (past explicit discriminants, if any).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---- code generation ----

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Body::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_owned(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__v0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__v0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__v{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(__v{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let elems: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{}]))]),\n",
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(::std::format!(\"expected object for {name}, found {{}}\", __v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::__field(__obj, \"{f}\").map_err(|__e| __e.context(\"{name}.{f}\"))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Body::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::__de(__v).map_err(|__e| __e.context(\"{name}\"))?))"
        ),
        Body::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::__de(&__a[{k}]).map_err(|__e| __e.context(\"{name}.{k}\"))?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::Error::custom(::std::format!(\"expected array for {name}, found {{}}\", __v.kind())))?;\n\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"expected {n} elements for {name}, found {{}}\", __a.len()))); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            Fields::Tuple(1) => data_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::__de(__content).map_err(|__e| __e.context(\"{name}::{vn}\"))?)),\n"
            )),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::__de(&__a[{k}]).map_err(|__e| __e.context(\"{name}::{vn}.{k}\"))?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __a = __content.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for variant {name}::{vn}\"))?;\n\
                     if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for {name}::{vn}\")); }}\n\
                     ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                    elems.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::__field(__obj, \"{f}\").map_err(|__e| __e.context(\"{name}::{vn}.{f}\"))?"
                        )
                    })
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __obj = __content.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for variant {name}::{vn}\"))?;\n\
                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}},\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
         }},\n\
         ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
         let (__tag, __content) = &__m[0];\n\
         let _ = __content;\n\
         match __tag.as_str() {{\n\
         {data_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"invalid value for enum {name}: {{}}\", __other.kind()))),\n\
         }}"
    )
}
