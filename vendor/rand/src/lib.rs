//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API subset it actually uses: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] / [`Rng::gen_range`]
//! over integer and float ranges.
//!
//! The generator is xoshiro256++ (the same family rand 0.8's 64-bit
//! `SmallRng` uses) seeded through SplitMix64, so streams are
//! deterministic, well distributed, and stable across platforms. Exact
//! bit-compatibility with upstream `rand` is *not* guaranteed — every
//! consumer in this workspace treats the stream as an arbitrary but fixed
//! function of the seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A generator seedable from a `u64` (the only construction p10sim uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like `rand_core`'s default implementation.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core randomness source: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T` (integers over their full
    /// range, floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a canonical "uniform over the whole domain" distribution.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`, uniform over the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` by rejection.
fn sample_span<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sample_span(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = sample_span(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                let x = <$t as Standard>::sample(rng);
                self.start + x * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion (rand_core's seed_from_u64).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-64i64..64);
            assert!((-64..64).contains(&i));
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
