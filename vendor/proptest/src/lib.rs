//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: range and tuple strategies, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-case RNG (seeded from
//! the case index), so failures reproduce exactly across runs. There is
//! no shrinking: a failing case reports its inputs via the assertion
//! message instead.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};
use std::fmt;
use std::ops::Range;

/// The deterministic RNG driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// An RNG for one test case, derived from the test's config seed and
    /// the case index.
    #[must_use]
    pub fn for_case(seed: u64, case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    fn gen_index(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound.max(1))
    }
}

/// A failing test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    #[must_use]
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    #[must_use]
    pub fn reject(msg: impl fmt::Display) -> Self {
        Self::fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed for case generation.
    pub seed: u64,
}

impl Config {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            seed: 0x5eed,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::with_cases(64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_index(self.len.end - self.len.start) + self.len.start;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Picks uniformly among strategies (a simplification of proptest's
/// weighted `TupleUnion`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_index(self.0.len());
        self.0[idx].sample(rng)
    }
}

/// The test-runner namespace, mirroring `proptest::test_runner`.
pub mod test_runner {
    pub use super::{Config, TestCaseError};
}

/// The strategy namespace, mirroring `proptest::strategy`.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, OneOf, Strategy};
}

/// Everything the `proptest!` tests import.
pub mod prelude {
    /// Re-export so `proptest::collection::vec` also resolves through the
    /// prelude-importing crate root.
    pub use super::collection;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Config as ProptestConfig, Just, Strategy, TestCaseError,
    };
}

/// Chooses uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        if __a != __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let __a = &$a;
        let __b = &$b;
        if __a != __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!($($fmt)*)));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a,
                __b
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `config.cases` times with strategy-drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::Config = $config;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::for_case(__config.seed, __case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("proptest case {} of {} failed: {}", __case, stringify!($name), __e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 0);
        let s = (3u16..20, -4i64..4).prop_map(|(a, b)| (a, b));
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!((3..20).contains(&a));
            assert!((-4..4).contains(&b));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut rng = crate::TestRng::for_case(2, 0);
        let s = prop_oneof![(0u8..1).prop_map(|_| 0usize), (0u8..1).prop_map(|_| 1usize)];
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::TestRng::for_case(3, 0);
        let s = collection::vec(0u64..10, 1..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, v in collection::vec(0u8..3, 1..4)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
