//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The real crate cannot be fetched in this environment, but the bench
//! targets still need to compile (and `cargo bench` should still produce a
//! useful signal).  This stub keeps the subset of the API the p10sim bench
//! files use — `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — and implements it as a plain wall-clock
//! timing loop: a short warm-up, then `sample_size` timed samples, with the
//! median and min/max printed per benchmark.  No statistics beyond that, no
//! plots, no saved baselines.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.  Only the variant the repo
/// uses is provided; it scales the reported per-iteration time into an
/// elements/second figure.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness handle, handed to each bench function by
/// `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &name.into(), sample_size, None, f);
        self
    }
}

/// A named group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &name.into(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the measured body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up iteration, then `sample_size` timed ones.
        black_box(body());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(group: &str, name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.samples.is_empty() {
        println!("  {label}: no samples (closure never called iter)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
            format!(
                "  {:.3} MiB/s",
                n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "  {label}: median {:?} (min {:?}, max {:?}, n={}){rate}",
        median,
        min,
        max,
        b.samples.len()
    );
}

/// Identity function that defeats constant-folding well enough for a
/// wall-clock stub: reads the value through a volatile pointer.
pub fn black_box<T>(x: T) -> T {
    // SAFETY: reading an initialized value we own through a volatile pointer
    // and forgetting the original to avoid a double drop.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Collects bench functions under a single name, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits the `fn main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}
