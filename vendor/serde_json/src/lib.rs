//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the vendored `serde` crate's
//! [`Value`] tree. Covers the API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], and the [`json!`] macro.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for tree-shaped data; `Result` kept for API compatibility.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for tree-shaped data; `Result` kept for API compatibility.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for tree-shaped data; `Result` kept for API compatibility.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

// ---- rendering ----

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; integral floats
                // keep a `.0` so they re-parse as floats.
                if f.fract() == 0.0 && f.abs() < 1e16 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an error describing the first malformed construct.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: JSON escapes BMP-external
                            // chars as two \u escapes.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| Error::custom("truncated surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| Error::custom("invalid surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error::custom("invalid surrogate"))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid codepoint"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume the maximal run of unescaped bytes at once.
                    // UTF-8 continuation bytes are >= 0x80, so scanning for
                    // the ASCII delimiters can never split a character.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::I64(-(n as i64)))
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

/// Builds a [`Value`] from JSON-looking syntax, embedding serializable
/// Rust expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($items:tt)* ]) => { $crate::json_array!([$($items)*]) };
    ({ $($entries:tt)* }) => { $crate::json_object!([] $($entries)*) };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

/// Internal helper for [`json!`] arrays.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item).expect("json! value") ),* ])
    };
}

/// Internal helper for [`json!`] objects: munches `"key": value` pairs.
/// Single-token values (including `null`/`true`/`false` and nested
/// `{...}`/`[...]` literals) route back through [`json!`]; multi-token
/// expressions fall through to the `expr` rules.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ([$($done:expr),*]) => {
        $crate::Value::Object(vec![$($done),*])
    };
    ([$($done:expr),*] $key:literal : $val:tt , $($rest:tt)*) => {
        $crate::json_object!([$($done,)* (::std::string::String::from($key), $crate::json!($val))] $($rest)*)
    };
    ([$($done:expr),*] $key:literal : $val:tt) => {
        $crate::json_object!([$($done,)* (::std::string::String::from($key), $crate::json!($val))])
    };
    ([$($done:expr),*] $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_object!([$($done,)* (::std::string::String::from($key), $crate::to_value(&$val).expect("json! value"))] $($rest)*)
    };
    ([$($done:expr),*] $key:literal : $val:expr) => {
        $crate::json_object!([$($done,)* (::std::string::String::from($key), $crate::to_value(&$val).expect("json! value"))])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\""] {
            let v: Value = parse(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn parse_nested() {
        let v = parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x\ny"}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Str("x\ny".into())));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Value::U64(1));
        assert_eq!(a[1], Value::F64(2.5));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert!((back - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_macro_shapes() {
        let name = "w";
        let v = json!({
            "workload": name,
            "vals": [1, 2.5],
            "flag": true,
            "nothing": null,
        });
        assert_eq!(v.get("workload"), Some(&Value::Str("w".into())));
        assert_eq!(v.get("vals").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&Value::Null));
    }

    #[test]
    fn pretty_print_is_valid_json() {
        let v = parse(r#"{"a":[1,2],"b":{"c":3}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = parse(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
