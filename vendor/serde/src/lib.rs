//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a minimal serde: serialization goes through an
//! in-memory [`Value`] tree rather than streaming visitors. The derive
//! macros (re-exported from `serde_derive`) generate impls of these
//! simplified traits; `serde_json` renders/parses the tree.
//!
//! Externally-tagged enum representation, newtype-struct transparency,
//! and `Option`-field leniency all match upstream serde's defaults, so
//! JSON produced by the real crates round-trips through this one.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Object keys keep insertion order, which makes struct output match
/// upstream `serde_json`'s field-declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    I64(i64),
    /// Unsigned integer (non-negative numbers).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up an object key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Wraps the error with a location (e.g. `Struct.field`).
    #[must_use]
    pub fn context(self, at: &str) -> Self {
        Error(format!("{at}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON rendering, matching upstream `serde_json`'s `Display`
/// for `Value` (and `serde_json::to_string`'s output for tree data).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::I64(n) => write!(f, "{n}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::F64(x) => {
                if !x.is_finite() {
                    f.write_str("null") // JSON has no NaN/Infinity
                } else if x.fract() == 0.0 && x.abs() < 1e16 {
                    write!(f, "{x:.1}") // keep ".0" so it re-parses as a float
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => fmt_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    fmt_escaped(f, k)?;
                    write!(f, ":{item}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn fmt_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by the derive-generated code ----

/// Looks up and deserializes a struct field; a missing key deserializes
/// from `Null` so `Option` fields default to `None` (serde's behavior).
///
/// # Errors
///
/// Propagates the field's deserialization error.
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

/// Deserializes a value with the target type inferred at the call site.
///
/// # Errors
///
/// Propagates the deserialization error.
pub fn __de<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

// ---- primitive impls ----

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

fn int_err<T>(v: &Value, what: &str) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {what}, found {}",
        v.kind()
    )))
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    ref other => return int_err(other, "unsigned integer"),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => f as i64,
                    ref other => return int_err(other, "integer"),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            ref other => int_err(other, "number"),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => int_err(other, "bool"),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => int_err(other, "string"),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => int_err(other, "single-character string"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => int_err(other, "array"),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?;
        if a.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                a.len()
            )));
        }
        let items: Vec<T> = a.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => int_err(v, "2-element array"),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => int_err(v, "3-element array"),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
                .collect(),
            other => int_err(other, "object"),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
                .collect(),
            other => int_err(other, "object"),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
