//! Chrome trace-event rendering: the mapping from recorded
//! [`TraceEvent`]s to a `chrome://tracing`/Perfetto-loadable file.
//!
//! The output is the JSON Object Format — `{"traceEvents": [...]}` — and
//! is always complete, valid JSON (written once by [`crate::finalize`],
//! never streamed). The mapping:
//!
//! * [`EventKind::Span`] → a complete slice (`"ph":"X"`) whose `ts` is
//!   the span start (`t_us - dur_us`) and `dur` its microseconds. Both
//!   aggregated phases (`span!`) and sink-only [`crate::event_span`]s
//!   (runner jobs, trace-arena syntheses, sampled detailed intervals)
//!   land here; the `cat` field keeps them filterable (`job` / `synth` /
//!   `interval` name prefixes; everything else is a `phase`).
//! * [`EventKind::Count`] → a counter sample (`"ph":"C"`) carrying the
//!   *cumulative* total of that counter in global time order, so cache
//!   hits and arena traffic render as rising counter tracks.
//! * [`EventKind::Gauge`] → a counter sample with the raw value (hit
//!   rates, coverage).
//! * [`EventKind::Mark`] → an instant event (`"ph":"i"`).
//!
//! Tracks are `(pid, tid)` pairs; every event carries `pid` 1 and the
//! recording thread's id as `tid`. Threads named via
//! [`crate::set_thread_name`] get a `thread_name` metadata event, and
//! threads *sharing* a name are remapped onto one canonical tid — the
//! runner's scoped pools spawn fresh OS threads per invocation, and this
//! folds every incarnation of `worker03` onto a single track. Events are
//! sorted by `(tid, ts)`, so each track's timestamps are monotonically
//! non-decreasing.

use crate::{EventKind, TraceEvent};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// The single process id every event is filed under.
pub const PID: u64 = 1;

/// `cat` assigned to a span from its name's conventional prefix.
fn category(name: &str) -> &'static str {
    match name.split(':').next() {
        Some("job") => "job",
        Some("synth") => "synth",
        Some("interval") => "interval",
        _ => "phase",
    }
}

/// Renders recorded events (plus the thread-name table) as a complete
/// Chrome trace-event JSON document.
#[must_use]
pub fn render(events: &[TraceEvent], thread_names: &BTreeMap<u64, String>) -> String {
    // Threads sharing a name collapse onto the first (smallest) tid seen
    // with that name; unnamed threads keep their own id.
    let mut canonical_of_name: BTreeMap<&str, u64> = BTreeMap::new();
    for (&tid, name) in thread_names {
        canonical_of_name.entry(name.as_str()).or_insert(tid);
    }
    let track_of = |thread: u64| -> u64 {
        thread_names
            .get(&thread)
            .map_or(thread, |name| canonical_of_name[name.as_str()])
    };

    // Counter events carry cumulative totals, accumulated in global
    // time order (drains interleave threads, so sort first).
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| (events[i].t_us, i));

    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    let mut rows: Vec<(u64, u64, Value)> = Vec::with_capacity(events.len());
    for &i in &order {
        let e = &events[i];
        let tid = track_of(e.thread);
        match &e.kind {
            EventKind::Span { name, dur_us } => {
                let ts = e.t_us.saturating_sub(*dur_us);
                rows.push((
                    tid,
                    ts,
                    json!({
                        "ph": "X", "pid": PID, "tid": tid, "ts": ts,
                        "dur": dur_us, "name": name, "cat": category(name),
                    }),
                ));
            }
            EventKind::Count { name, delta } => {
                let total = totals.entry(name.as_str()).or_insert(0);
                *total += delta;
                rows.push((
                    tid,
                    e.t_us,
                    json!({
                        "ph": "C", "pid": PID, "tid": tid, "ts": e.t_us,
                        "name": name, "args": {"value": *total},
                    }),
                ));
            }
            EventKind::Gauge { name, value } => rows.push((
                tid,
                e.t_us,
                json!({
                    "ph": "C", "pid": PID, "tid": tid, "ts": e.t_us,
                    "name": name, "args": {"value": value},
                }),
            )),
            EventKind::Mark { name, detail } => rows.push((
                tid,
                e.t_us,
                json!({
                    "ph": "i", "pid": PID, "tid": tid, "ts": e.t_us,
                    "name": name, "s": "t", "args": {"detail": detail},
                }),
            )),
        }
    }
    rows.sort_by_key(|&(tid, ts, _)| (tid, ts));

    // Metadata first (one thread_name per canonical track), then the
    // track-sorted events.
    let mut out: Vec<Value> = canonical_of_name
        .iter()
        .map(|(name, &tid)| {
            json!({
                "ph": "M", "pid": PID, "tid": tid, "ts": 0,
                "name": "thread_name", "args": {"name": *name},
            })
        })
        .collect();
    out.extend(rows.into_iter().map(|(_, _, v)| v));
    serde_json::to_string(&json!({
        "traceEvents": out,
        "displayTimeUnit": "ms",
    }))
    .expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_us: u64, thread: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { t_us, thread, kind }
    }

    fn span(name: &str, dur_us: u64) -> EventKind {
        EventKind::Span {
            name: name.into(),
            dur_us,
        }
    }

    /// Parses a render and returns the traceEvents array.
    fn trace_events(text: &str) -> Vec<Value> {
        let doc = serde_json::parse(text).expect("chrome trace parses as JSON");
        doc.get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array")
            .to_vec()
    }

    fn field_u64(v: &Value, key: &str) -> u64 {
        match v.get(key) {
            Some(Value::U64(n)) => *n,
            other => panic!("field {key} must be u64, got {other:?}"),
        }
    }

    fn field_str<'a>(v: &'a Value, key: &str) -> &'a str {
        match v.get(key) {
            Some(Value::Str(s)) => s,
            other => panic!("field {key} must be a string, got {other:?}"),
        }
    }

    #[test]
    fn renders_valid_json_with_monotonic_ts_per_track() {
        let events = vec![
            ev(
                50,
                1,
                EventKind::Count {
                    name: "cache.hits".into(),
                    delta: 2,
                },
            ),
            ev(900, 0, span("fig2", 880)),
            ev(400, 1, span("job:mcfish @ P10", 300)),
            ev(
                10,
                1,
                EventKind::Mark {
                    name: "job".into(),
                    detail: "disk hit".into(),
                },
            ),
            ev(
                60,
                2,
                EventKind::Count {
                    name: "cache.hits".into(),
                    delta: 3,
                },
            ),
            ev(
                70,
                0,
                EventKind::Gauge {
                    name: "trace.arena.hit_rate".into(),
                    value: 0.75,
                },
            ),
        ];
        let mut names = BTreeMap::new();
        names.insert(0, "main".to_owned());
        let text = render(&events, &names);
        let rows = trace_events(&text);
        assert!(!rows.is_empty());
        let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
        for row in &rows {
            let tid = field_u64(row, "tid");
            let ts = field_u64(row, "ts");
            let prev = last_ts.entry(tid).or_insert(0);
            assert!(ts >= *prev, "ts must be monotonic per track: {row:?}");
            *prev = ts;
            assert_eq!(field_u64(row, "pid"), PID);
        }
    }

    #[test]
    fn spans_become_complete_slices_with_start_ts() {
        let events = vec![ev(900, 0, span("fig2", 880))];
        let rows = trace_events(&render(&events, &BTreeMap::new()));
        let x = rows
            .iter()
            .find(|r| field_str(r, "ph") == "X")
            .expect("slice present");
        assert_eq!(field_u64(x, "ts"), 20, "ts is span start");
        assert_eq!(field_u64(x, "dur"), 880);
        assert_eq!(field_str(x, "name"), "fig2");
        assert_eq!(field_str(x, "cat"), "phase");
    }

    #[test]
    fn counters_accumulate_in_time_order_across_threads() {
        let events = vec![
            ev(
                60,
                2,
                EventKind::Count {
                    name: "cache.hits".into(),
                    delta: 3,
                },
            ),
            ev(
                50,
                1,
                EventKind::Count {
                    name: "cache.hits".into(),
                    delta: 2,
                },
            ),
        ];
        let rows = trace_events(&render(&events, &BTreeMap::new()));
        let values: Vec<u64> = rows
            .iter()
            .filter(|r| field_str(r, "ph") == "C")
            .map(|r| field_u64(r.get("args").expect("args"), "value"))
            .collect();
        assert_eq!(values.len(), 2);
        assert!(values.contains(&2) && values.contains(&5), "{values:?}");
    }

    #[test]
    fn same_named_threads_fold_onto_one_track() {
        // Two OS threads both named worker00 (successive pools) merge.
        let events = vec![ev(10, 3, span("job:a", 5)), ev(30, 7, span("job:b", 5))];
        let mut names = BTreeMap::new();
        names.insert(3, "worker00".to_owned());
        names.insert(7, "worker00".to_owned());
        let rows = trace_events(&render(&events, &names));
        let tids: Vec<u64> = rows
            .iter()
            .filter(|r| field_str(r, "ph") == "X")
            .map(|r| field_u64(r, "tid"))
            .collect();
        assert_eq!(tids, vec![3, 3], "both jobs land on the canonical tid");
        let meta: Vec<&Value> = rows.iter().filter(|r| field_str(r, "ph") == "M").collect();
        assert_eq!(meta.len(), 1, "one thread_name per merged track");
        assert_eq!(field_u64(meta[0], "tid"), 3);
        assert_eq!(
            field_str(meta[0].get("args").expect("args"), "name"),
            "worker00"
        );
    }

    #[test]
    fn categories_follow_name_prefixes() {
        assert_eq!(category("job:mcfish @ P10"), "job");
        assert_eq!(category("synth:00ab cap=60000"), "synth");
        assert_eq!(category("interval:12"), "interval");
        assert_eq!(category("fig4"), "phase");
        assert_eq!(category("fig6 resnet50 ops=30000"), "phase");
    }
}
