//! The persistent run ledger: durable, queryable flight records.
//!
//! Every `figures` run appends one [`RunRecord`] — a single JSON line —
//! to `<ledger dir>/ledger.jsonl`. The record makes everything the
//! `[obs]` stderr summary prints durable: experiment identity
//! (content-addressed config/workload/sampling keys), machine and build
//! metadata, per-phase wall times, cache and trace-arena traffic,
//! sampling coverage, and per-worker job/busy-time breakdowns. Wall-clock
//! data lives *only* here and on stderr — experiment stdout stays
//! byte-identical whether the ledger is on or off.
//!
//! On top of the history sit [`comparable`] (which prior runs are
//! apples-to-apples with the latest) and [`gate`] (the perf-regression
//! check behind `figures obsreport --gate PCT`).
//!
//! Appends are one `write` call of one line to a file opened in append
//! mode, so concurrent runs interleave whole records; [`read`] skips any
//! line that fails to parse (torn writes, foreign schema) rather than
//! failing the whole history.

use crate::Summary;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Schema version stamped into every record.
pub const SCHEMA: u32 = 1;

/// File name of the append-only ledger inside the ledger directory.
pub const LEDGER_FILE: &str = "ledger.jsonl";

/// Where the run ledger lives: `P10SIM_LEDGER` if set, else
/// `target/p10sim-ledger`.
#[must_use]
pub fn default_dir() -> PathBuf {
    std::env::var_os("P10SIM_LEDGER")
        .map_or_else(|| Path::new("target").join("p10sim-ledger"), PathBuf::from)
}

/// 64-bit FNV-1a over a string, rendered as 16 hex digits — the
/// content-addressing primitive for run/config/workload keys (stable
/// across runs and Rust versions, unlike `DefaultHasher`).
#[must_use]
pub fn content_key(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The machine a run executed on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineInfo {
    /// Host name (`HOSTNAME`/`HOST` env; `unknown` when absent).
    pub host: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available CPUs at run time.
    pub cpus: u64,
}

impl MachineInfo {
    /// Detects the current machine.
    #[must_use]
    pub fn detect() -> Self {
        MachineInfo {
            host: std::env::var("HOSTNAME")
                .or_else(|_| std::env::var("HOST"))
                .unwrap_or_else(|_| "unknown".to_owned()),
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        }
    }
}

/// The build that produced a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildInfo {
    /// Workspace package version.
    pub version: String,
    /// `debug` or `release` (from `debug_assertions`).
    pub profile: String,
}

impl BuildInfo {
    /// Detects the current build.
    #[must_use]
    pub fn detect() -> Self {
        BuildInfo {
            version: env!("CARGO_PKG_VERSION").to_owned(),
            profile: if cfg!(debug_assertions) {
                "debug".to_owned()
            } else {
                "release".to_owned()
            },
        }
    }
}

/// Result-cache traffic for one run (from the `cache.*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheTraffic {
    /// In-process memo hits.
    pub memo_hits: u64,
    /// On-disk cache hits.
    pub disk_hits: u64,
    /// Points actually simulated.
    pub computes: u64,
    /// Corrupt disk entries healed by recompute.
    pub disk_decode_errors: u64,
}

impl CacheTraffic {
    /// Fraction of cacheable lookups served by either cache layer.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.disk_hits + self.computes;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                (self.memo_hits + self.disk_hits) as f64 / total as f64
            }
        }
    }
}

/// Trace-arena traffic for one run (from the `trace.arena.*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ArenaTraffic {
    /// Requests served zero-copy from a cached buffer.
    pub hits: u64,
    /// Requests that synthesized.
    pub misses: u64,
    /// Bytes of op storage synthesized.
    pub bytes: u64,
    /// `hits / (hits + misses)` (0 when the arena saw no traffic).
    pub hit_rate: f64,
}

/// Sampled-execution activity for one run (from the `sim.sample.*`
/// counters); all zero in exact mode.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SamplingActivity {
    /// Trace intervals partitioned.
    pub intervals: u64,
    /// Clusters selected.
    pub clusters: u64,
    /// Ops simulated in detail.
    pub simulated_ops: u64,
    /// Ops reconstituted from representatives.
    pub skipped_ops: u64,
    /// `simulated / (simulated + skipped)` (1.0 when nothing sampled).
    pub coverage: f64,
}

/// One runner worker slot's activity for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerStat {
    /// Slot name (`worker00`, `worker01`, ...).
    pub worker: String,
    /// Jobs completed by the slot.
    pub jobs: u64,
    /// Seconds spent inside jobs.
    pub busy_s: f64,
    /// `busy_s` over the run's total wall time.
    pub busy_frac: f64,
}

/// One durable flight record: everything the `[obs]` summary prints,
/// plus run identity and provenance. Appended as one JSON line per
/// `figures` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Record schema version ([`SCHEMA`]).
    pub schema: u32,
    /// Content-addressed run id (experiment + keys + start time + pid).
    pub run_id: String,
    /// Experiment selector that ran (`all`, `fig4`, ...).
    pub experiment: String,
    /// Content key of the resolved engine/trace configuration.
    pub config_key: String,
    /// Content key of the workload surface (experiment list + op budget).
    pub workload_key: String,
    /// Sampling mode text (`exact`, `simpoints:I:K:W`, ...).
    pub sampling_key: String,
    /// Op budget per workload.
    pub ops: u64,
    /// Resolved worker-pool width.
    pub jobs: u64,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Total run wall time in seconds.
    pub wall_s: f64,
    /// Machine metadata.
    pub machine: MachineInfo,
    /// Build metadata.
    pub build: BuildInfo,
    /// Result-cache traffic.
    pub cache: CacheTraffic,
    /// Trace-arena traffic.
    pub arena: ArenaTraffic,
    /// Sampled-execution activity.
    pub sampling: SamplingActivity,
    /// Per-worker job/busy-time breakdown.
    pub workers: Vec<WorkerStat>,
    /// The full end-of-run aggregate (phases, counters, gauges,
    /// histograms) — the queryable superset of the fields above.
    pub summary: Summary,
}

/// Identity fields for building a [`RunRecord`] (everything not derived
/// from the [`Summary`]).
#[derive(Debug, Clone)]
pub struct RunIdentity {
    /// Experiment selector (`all`, `fig4`, ...).
    pub experiment: String,
    /// Pre-hash text of the resolved configuration.
    pub config_text: String,
    /// Pre-hash text of the workload surface.
    pub workload_text: String,
    /// Sampling mode text.
    pub sampling_key: String,
    /// Op budget per workload.
    pub ops: u64,
    /// Resolved worker-pool width.
    pub jobs: u64,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
}

impl RunRecord {
    /// Builds a record from run identity plus the end-of-run [`Summary`],
    /// deriving the cache/arena/sampling/worker sections from the
    /// summary's counters.
    #[must_use]
    pub fn from_summary(id: &RunIdentity, summary: Summary) -> Self {
        let counter = |name: &str| -> u64 {
            summary
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        #[allow(clippy::cast_precision_loss)]
        let rate = |num: u64, den: u64, empty: f64| -> f64 {
            if den == 0 {
                empty
            } else {
                num as f64 / den as f64
            }
        };
        let arena_hits = counter("trace.arena.hits");
        let arena_misses = counter("trace.arena.misses");
        let simulated = counter("sim.sample.simulated_ops");
        let skipped = counter("sim.sample.skipped_ops");
        let wall_s = summary.total_wall_s;
        let mut workers = Vec::new();
        for c in &summary.counters {
            let Some(rest) = c.name.strip_prefix("engine.") else {
                continue;
            };
            let Some(slot) = rest.strip_suffix(".jobs") else {
                continue;
            };
            let busy_s = counter(&format!("engine.{slot}.busy_us")) as f64 / 1e6;
            workers.push(WorkerStat {
                worker: slot.to_owned(),
                jobs: c.value,
                busy_s,
                busy_frac: if wall_s > 0.0 { busy_s / wall_s } else { 0.0 },
            });
        }
        let config_key = content_key(&id.config_text);
        let workload_key = content_key(&id.workload_text);
        let run_id = content_key(&format!(
            "{}|{}|{}|{}|{}|{}",
            id.experiment,
            config_key,
            workload_key,
            id.sampling_key,
            id.started_unix_ms,
            std::process::id()
        ));
        RunRecord {
            schema: SCHEMA,
            run_id,
            experiment: id.experiment.clone(),
            config_key,
            workload_key,
            sampling_key: id.sampling_key.clone(),
            ops: id.ops,
            jobs: id.jobs,
            started_unix_ms: id.started_unix_ms,
            wall_s,
            machine: MachineInfo::detect(),
            build: BuildInfo::detect(),
            cache: CacheTraffic {
                memo_hits: counter("cache.memo_hits"),
                disk_hits: counter("cache.disk_hits"),
                computes: counter("cache.computes"),
                disk_decode_errors: counter("cache.disk_decode_errors"),
            },
            arena: ArenaTraffic {
                hits: arena_hits,
                misses: arena_misses,
                bytes: counter("trace.arena.bytes"),
                hit_rate: rate(arena_hits, arena_hits + arena_misses, 0.0),
            },
            sampling: SamplingActivity {
                intervals: counter("sim.sample.intervals"),
                clusters: counter("sim.sample.clusters"),
                simulated_ops: simulated,
                skipped_ops: skipped,
                coverage: rate(simulated, simulated + skipped, 1.0),
            },
            workers,
            summary,
        }
    }

    /// Wall seconds of the named phase, if the run recorded it.
    #[must_use]
    pub fn phase_wall_s(&self, name: &str) -> Option<f64> {
        self.summary
            .phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.wall_s)
    }
}

/// Appends one record to `dir/ledger.jsonl` (creating the directory as
/// needed) and returns the ledger path. One line, one `write` call.
///
/// # Errors
///
/// Propagates directory-creation, serialization, and write failures.
pub fn append(dir: &Path, record: &RunRecord) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(LEDGER_FILE);
    let line = serde_json::to_string(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    f.write_all(format!("{line}\n").as_bytes())?;
    Ok(path)
}

/// Reads the full run history from `dir/ledger.jsonl`, oldest first.
/// A missing ledger is an empty history; lines that fail to parse
/// (torn concurrent writes, foreign schemas) are skipped.
///
/// # Errors
///
/// Propagates read failures other than the file not existing.
pub fn read(dir: &Path) -> std::io::Result<Vec<RunRecord>> {
    let path = dir.join(LEDGER_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .filter_map(|l| serde_json::from_str::<RunRecord>(l).ok())
        .collect())
}

/// The prior runs that are apples-to-apples with `latest`: same
/// experiment selector, op budget, and sampling mode. (Config keys may
/// differ across machines — worker counts — without breaking wall-time
/// comparability, so they are reported but not filtered on.)
#[must_use]
pub fn comparable<'a>(prior: &'a [RunRecord], latest: &RunRecord) -> Vec<&'a RunRecord> {
    prior
        .iter()
        .filter(|r| {
            r.experiment == latest.experiment
                && r.ops == latest.ops
                && r.sampling_key == latest.sampling_key
        })
        .collect()
}

/// One gated wall-time regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// `total`, or the regressed experiment phase's name.
    pub phase: String,
    /// Baseline wall seconds.
    pub baseline_s: f64,
    /// Latest wall seconds.
    pub latest_s: f64,
    /// `(latest/baseline - 1) * 100`.
    pub delta_pct: f64,
}

/// The perf gate: compares `latest` against `baseline` and returns every
/// wall-time regression beyond `pct` percent — the total, and each phase
/// present in both runs. Deltas smaller than `min_s` seconds are noise
/// and never gate, whatever their percentage (short phases jitter).
/// An empty result is a pass.
#[must_use]
pub fn gate(baseline: &RunRecord, latest: &RunRecord, pct: f64, min_s: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    let mut check = |phase: &str, base: f64, new: f64| {
        if new > base * (1.0 + pct / 100.0) && new - base > min_s {
            out.push(Regression {
                phase: phase.to_owned(),
                baseline_s: base,
                latest_s: new,
                delta_pct: if base > 0.0 {
                    (new / base - 1.0) * 100.0
                } else {
                    f64::INFINITY
                },
            });
        }
    };
    check("total", baseline.wall_s, latest.wall_s);
    for p in &latest.summary.phases {
        if let Some(base) = baseline.phase_wall_s(&p.name) {
            check(&p.name, base, p.wall_s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterSummary, PhaseSummary};

    fn scratch_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static UNIQ: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "p10sim-ledger-{tag}-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn summary_with(phases: &[(&str, f64)], counters: &[(&str, u64)]) -> Summary {
        Summary {
            total_wall_s: phases.iter().map(|(_, w)| w).sum(),
            phases: phases
                .iter()
                .map(|&(name, wall_s)| PhaseSummary {
                    name: name.into(),
                    wall_s,
                    calls: 1,
                })
                .collect(),
            counters: counters
                .iter()
                .map(|&(name, value)| CounterSummary {
                    name: name.into(),
                    value,
                })
                .collect(),
            gauges: vec![],
            histograms: vec![],
        }
    }

    fn identity(experiment: &str) -> RunIdentity {
        RunIdentity {
            experiment: experiment.into(),
            config_text: "jobs=2|cache=on".into(),
            workload_text: "all|ops=2000".into(),
            sampling_key: "exact".into(),
            ops: 2000,
            jobs: 2,
            started_unix_ms: 1_700_000_000_000,
        }
    }

    fn record(experiment: &str, phases: &[(&str, f64)]) -> RunRecord {
        RunRecord::from_summary(
            &identity(experiment),
            summary_with(
                phases,
                &[
                    ("cache.memo_hits", 3),
                    ("cache.disk_hits", 1),
                    ("cache.computes", 4),
                    ("trace.arena.hits", 6),
                    ("trace.arena.misses", 2),
                    ("engine.worker00.jobs", 5),
                    ("engine.worker00.busy_us", 500_000),
                    ("engine.worker01.jobs", 3),
                    ("engine.worker01.busy_us", 250_000),
                ],
            ),
        )
    }

    #[test]
    fn run_record_round_trips_through_serde() {
        let r = record("all", &[("fig2", 0.5), ("fig4", 1.5)]);
        let line = serde_json::to_string(&r).expect("serialize");
        assert!(!line.contains('\n'), "one record must be one line");
        let back: RunRecord = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, r);
    }

    #[test]
    fn from_summary_derives_traffic_and_workers() {
        let r = record("all", &[("fig2", 0.5), ("fig4", 1.5)]);
        assert_eq!(r.schema, SCHEMA);
        assert_eq!(r.cache.memo_hits, 3);
        assert_eq!(r.cache.computes, 4);
        assert!((r.cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(r.arena.hits, 6);
        assert!((r.arena.hit_rate - 0.75).abs() < 1e-12);
        assert!((r.sampling.coverage - 1.0).abs() < 1e-12, "exact => 1.0");
        assert_eq!(r.workers.len(), 2);
        let w0 = &r.workers[0];
        assert_eq!((w0.worker.as_str(), w0.jobs), ("worker00", 5));
        assert!((w0.busy_s - 0.5).abs() < 1e-12);
        assert!((w0.busy_frac - 0.25).abs() < 1e-12, "0.5s of 2.0s wall");
        assert_eq!(r.phase_wall_s("fig4"), Some(1.5));
        assert_eq!(r.phase_wall_s("fig9"), None);
        assert_eq!(r.config_key, content_key("jobs=2|cache=on"));
    }

    #[test]
    fn ledger_appends_and_reads_back_across_runs() {
        let dir = scratch_dir("appendread");
        assert_eq!(read(&dir).expect("missing ledger reads empty"), vec![]);
        let a = record("all", &[("fig2", 0.5)]);
        let b = record("all", &[("fig2", 0.4)]);
        let c = record("fig4", &[("fig4", 1.0)]);
        for r in [&a, &b, &c] {
            append(&dir, r).expect("append");
        }
        let runs = read(&dir).expect("read back");
        assert_eq!(runs, vec![a.clone(), b.clone(), c.clone()]);
        // A torn/corrupt line is skipped, not fatal.
        let path = dir.join(LEDGER_FILE);
        let mut text = std::fs::read_to_string(&path).expect("ledger text");
        text.push_str("{\"torn\":");
        std::fs::write(&path, text).expect("plant torn line");
        assert_eq!(read(&dir).expect("read with torn line").len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn comparable_filters_on_experiment_ops_and_sampling() {
        let latest = record("all", &[("fig2", 0.4)]);
        let same = record("all", &[("fig2", 0.5)]);
        let other_exp = record("fig4", &[("fig4", 1.0)]);
        let mut other_ops = record("all", &[("fig2", 0.5)]);
        other_ops.ops = 60_000;
        let mut other_mode = record("all", &[("fig2", 0.5)]);
        other_mode.sampling_key = "simpoints:100:4:12".into();
        let prior = vec![same.clone(), other_exp, other_ops, other_mode];
        let pool = comparable(&prior, &latest);
        assert_eq!(pool, vec![&same]);
    }

    #[test]
    fn gate_fails_a_synthetically_slowed_run_and_passes_a_repeat() {
        let baseline = record("all", &[("fig2", 0.5), ("fig4", 1.5)]);
        // Repeat run with noise-level jitter: passes a 50% gate.
        let repeat = record("all", &[("fig2", 0.55), ("fig4", 1.45)]);
        assert_eq!(gate(&baseline, &repeat, 50.0, 0.05), vec![]);
        // Synthetically slowed run: total and fig4 both regress.
        let slowed = record("all", &[("fig2", 0.5), ("fig4", 3.5)]);
        let regs = gate(&baseline, &slowed, 50.0, 0.05);
        let phases: Vec<&str> = regs.iter().map(|r| r.phase.as_str()).collect();
        assert_eq!(phases, vec!["total", "fig4"]);
        assert!((regs[0].delta_pct - 100.0).abs() < 1e-9);
        // Faster runs never gate.
        let faster = record("all", &[("fig2", 0.1), ("fig4", 0.2)]);
        assert_eq!(gate(&baseline, &faster, 0.0, 0.0), vec![]);
    }

    #[test]
    fn gate_min_s_floor_suppresses_short_phase_jitter() {
        let baseline = record("all", &[("fig2", 0.010)]);
        // 3x slower but only 20ms absolute: below the 50ms noise floor.
        let jitter = record("all", &[("fig2", 0.030)]);
        assert_eq!(gate(&baseline, &jitter, 50.0, 0.05), vec![]);
        // The same ratio above the floor gates.
        let real = record("all", &[("fig2", 3.0)]);
        assert_eq!(gate(&baseline, &real, 50.0, 0.05).len(), 2);
    }

    #[test]
    fn content_key_is_stable() {
        assert_eq!(content_key(""), "cbf29ce484222325");
        assert_eq!(content_key("a"), "af63dc4c8601ec8c");
        assert_eq!(content_key("a"), content_key("a"));
        assert_ne!(content_key("a"), content_key("b"));
    }
}
