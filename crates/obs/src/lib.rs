//! # p10-obs
//!
//! Structured tracing and metrics for the p10sim stack — std-only, no
//! external dependencies beyond the vendored serde.
//!
//! The paper's methodology is an observability story (RTLSim latch
//! tracking, APEX counter extraction, M1-linked power models); this crate
//! gives the *simulator's own runtime* the same treatment:
//!
//! * **Spans** time phases (`let s = span!("run_suite"); ...; s.finish()`)
//!   and aggregate into a per-phase wall-time table.
//! * **Counters / gauges / histograms** aggregate named metrics (cache
//!   hits, jobs per worker, per-job compute seconds, ...).
//! * **A trace sink** ([`init`] with a trace path, driven by
//!   `figures --trace-out` or `P10SIM_TRACE`) records every span, counter
//!   increment, gauge and mark — either as one [`TraceEvent`] JSON line
//!   ([`TraceFormat::JsonLines`], the default) or as a Chrome
//!   trace-event file loadable in `chrome://tracing`/Perfetto
//!   ([`TraceFormat::Chrome`], one track per named worker thread; see
//!   [`chrome`]). Chrome traces buffer in memory and are written by
//!   [`finalize`].
//! * **[`summary`]/[`render_summary`]** produce the end-of-run table the
//!   `figures` driver prints on stderr.
//! * **[`ledger`]** makes runs durable: one append-only JSON-lines
//!   [`ledger::RunRecord`] per `figures` run, with trend reporting and
//!   perf-regression gating on top (`figures obsreport`).
//!
//! ## Threading model
//!
//! All recording goes to **thread-local buffers**; nothing takes a lock
//! on the hot path, so the parallel runner's workers never contend (and
//! simulation stays bit-identical — recording has no feedback into the
//! model). Buffers drain into the global aggregate when a thread exits
//! (scoped workers), when the event buffer fills, or on [`flush`].
//!
//! With no sink configured, events are dropped at the recording site and
//! only the cheap metric aggregation remains; the crate is safe to call
//! from any thread at any time, before or after [`init`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod ledger;

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// On-disk format of the trace sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// One [`TraceEvent`] JSON object per line, streamed as recorded.
    #[default]
    JsonLines,
    /// A Chrome trace-event file (`chrome://tracing` / Perfetto).
    /// Events buffer in memory and are written by [`finalize`].
    Chrome,
}

/// How the process-wide recorder behaves.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Write every recorded event to this file. `None` disables event
    /// recording (metrics still aggregate).
    pub trace_path: Option<PathBuf>,
    /// Format of the trace file (JSON lines unless asked otherwise).
    pub trace_format: TraceFormat,
}

/// One recorded event, as written to the JSON-lines trace sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds since the recorder was created.
    pub t_us: u64,
    /// Small per-thread id (assignment order, not OS tid).
    pub thread: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span finished.
    Span {
        /// Phase name.
        name: String,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
    },
    /// A counter was incremented.
    Count {
        /// Counter name.
        name: String,
        /// Increment amount.
        delta: u64,
    },
    /// A gauge was set.
    Gauge {
        /// Gauge name.
        name: String,
        /// New value.
        value: f64,
    },
    /// A point event (e.g. one runner job finishing).
    Mark {
        /// Event label.
        name: String,
        /// Free-form detail (e.g. "disk hit" or "1.24s").
        detail: String,
    },
}

/// Value-distribution summary kept per histogram name.
///
/// `buckets[i]` counts samples with `2^i <= value * 1e6 < 2^(i+1)`
/// (log2 buckets over micro-units, clamped at the ends), so second-scale
/// timings and small ratios both land on usable resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Log2 micro-unit buckets.
    pub buckets: [u64; 16],
}

impl Default for HistSummary {
    fn default() -> Self {
        HistSummary {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; 16],
        }
    }
}

impl HistSummary {
    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let micro = (value * 1e6).max(1.0);
        let idx = (micro.log2().floor() as i64).clamp(0, 15) as usize;
        self.buckets[idx] += 1;
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &HistSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregated wall time of one span name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Span name.
    pub name: String,
    /// Total wall-clock seconds across all finishes.
    pub wall_s: f64,
    /// Number of finishes.
    pub calls: u64,
}

/// One counter total.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSummary {
    /// Counter name.
    pub name: String,
    /// Total across all threads.
    pub value: u64,
}

/// One gauge's last-written value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSummary {
    /// Gauge name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// One histogram's distribution summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistEntry {
    /// Histogram name.
    pub name: String,
    /// Distribution summary.
    pub hist: HistSummary,
}

/// End-of-run aggregate: everything the summary table renders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Wall-clock seconds since the recorder was created.
    pub total_wall_s: f64,
    /// Per-phase wall times, in first-seen order.
    pub phases: Vec<PhaseSummary>,
    /// Counter totals, sorted by name.
    pub counters: Vec<CounterSummary>,
    /// Gauges (last value wins), sorted by name.
    pub gauges: Vec<GaugeSummary>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistEntry>,
}

// ---- the recorder ----

#[derive(Default)]
struct Agg {
    phase_order: Vec<String>,
    phases: BTreeMap<String, (f64, u64)>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, HistSummary>,
}

enum Sink {
    /// Streamed: each drained event becomes one JSON line immediately.
    JsonLines(Mutex<BufWriter<File>>),
    /// Buffered: events accumulate until [`finalize`] sorts them into
    /// tracks and writes the complete trace-event file (the format needs
    /// a closing bracket, so it cannot stream).
    Chrome(Mutex<ChromeBuf>),
}

struct ChromeBuf {
    path: PathBuf,
    events: Vec<TraceEvent>,
    written: bool,
}

struct Recorder {
    start: Instant,
    sink: Option<Sink>,
    agg: Mutex<Agg>,
    progress_seq: AtomicU64,
    progress_lock: Mutex<()>,
    next_thread_id: AtomicU64,
    thread_names: Mutex<BTreeMap<u64, String>>,
}

impl Recorder {
    fn new(config: &ObsConfig) -> Self {
        let sink = config
            .trace_path
            .as_ref()
            .and_then(|p| match File::create(p) {
                Ok(f) => Some(match config.trace_format {
                    TraceFormat::JsonLines => Sink::JsonLines(Mutex::new(BufWriter::new(f))),
                    TraceFormat::Chrome => Sink::Chrome(Mutex::new(ChromeBuf {
                        path: p.clone(),
                        events: Vec::new(),
                        written: false,
                    })),
                }),
                Err(e) => {
                    eprintln!("[obs] cannot open trace file {}: {e}", p.display());
                    None
                }
            });
        Recorder {
            start: Instant::now(),
            sink,
            agg: Mutex::new(Agg::default()),
            progress_seq: AtomicU64::new(0),
            progress_lock: Mutex::new(()),
            next_thread_id: AtomicU64::new(0),
            thread_names: Mutex::new(BTreeMap::new()),
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder::new(&ObsConfig::default()))
}

/// Installs the process-wide recorder. First caller wins; returns `false`
/// if a recorder already existed (in which case the requested sink is
/// **not** attached). Call before any recording, e.g. first thing in
/// `main`.
pub fn init(config: &ObsConfig) -> bool {
    let mut created = false;
    RECORDER.get_or_init(|| {
        created = true;
        Recorder::new(config)
    });
    created
}

/// Whether a JSON-lines trace sink is attached (events are recorded).
#[must_use]
pub fn trace_enabled() -> bool {
    recorder().sink.is_some()
}

// ---- thread-local buffering ----

struct Local {
    thread_id: u64,
    events: Vec<TraceEvent>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, HistSummary)>,
    phases: Vec<(String, f64, u64)>,
}

const EVENT_FLUSH_THRESHOLD: usize = 512;

impl Local {
    fn new() -> Self {
        Local {
            thread_id: recorder().next_thread_id.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            phases: Vec::new(),
        }
    }

    fn drain(&mut self) {
        let Some(r) = RECORDER.get() else { return };
        if !self.events.is_empty() {
            match &r.sink {
                Some(Sink::JsonLines(sink)) => {
                    let mut w = sink.lock().expect("trace sink poisoned");
                    for e in &self.events {
                        if let Ok(line) = serde_json::to_string(e) {
                            let _ = writeln!(w, "{line}");
                        }
                    }
                    let _ = w.flush();
                }
                Some(Sink::Chrome(buf)) => {
                    let mut b = buf.lock().expect("chrome buffer poisoned");
                    // Events after finalization have no file to land in.
                    if !b.written {
                        b.events.append(&mut self.events);
                    }
                }
                None => {}
            }
            self.events.clear();
        }
        if self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.phases.is_empty()
        {
            return;
        }
        let mut agg = r.agg.lock().expect("obs aggregate poisoned");
        for (name, v) in self.counters.drain(..) {
            *agg.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in self.gauges.drain(..) {
            agg.gauges.insert(name, v);
        }
        for (name, h) in self.hists.drain(..) {
            agg.hists.entry(name).or_default().merge(&h);
        }
        for (name, secs, calls) in self.phases.drain(..) {
            if !agg.phases.contains_key(&name) {
                agg.phase_order.push(name.clone());
            }
            let e = agg.phases.entry(name).or_insert((0.0, 0));
            e.0 += secs;
            e.1 += calls;
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.drain();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::new());
}

fn with_local(f: impl FnOnce(&mut Local)) {
    // During thread teardown the TLS slot may already be gone; the Drop
    // impl has drained it by then, so losing the record is acceptable.
    let _ = LOCAL.try_with(|l| f(&mut l.borrow_mut()));
}

fn bump<T>(list: &mut Vec<(String, T)>, name: &str, apply: impl FnOnce(&mut T), init: T) {
    match list.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => apply(v),
        None => {
            let mut v = init;
            apply(&mut v);
            list.push((name.to_owned(), v));
        }
    }
}

fn emit(local: &mut Local, kind: EventKind) {
    let r = recorder();
    if r.sink.is_none() {
        return;
    }
    local.events.push(TraceEvent {
        t_us: r.now_us(),
        thread: local.thread_id,
        kind,
    });
    if local.events.len() >= EVENT_FLUSH_THRESHOLD {
        local.drain();
    }
}

// ---- the recording API ----

/// Times a phase; created by [`span`] (or the `span!` macro). Records on
/// [`Span::finish`] or on drop.
#[must_use = "a span records its duration when finished or dropped"]
pub struct Span {
    name: String,
    start: Instant,
    finished: bool,
}

/// Starts timing a named phase.
pub fn span(name: &str) -> Span {
    Span {
        name: name.to_owned(),
        start: Instant::now(),
        finished: false,
    }
}

/// Starts timing a named phase (macro form: `span!("run_suite")`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// A sink-only span: emits a [`EventKind::Span`] trace event on finish
/// (or drop) without entering the `[obs]` phase table — for
/// high-cardinality work items (one span per runner job, per trace-arena
/// synthesis, per sampled detailed interval) that a Chrome trace wants
/// as individual slices but the end-of-run summary must not drown in.
/// Free when no trace sink is attached.
#[must_use = "an event span records its duration when finished or dropped"]
pub struct EventSpan {
    name: Option<String>,
    start: Instant,
}

/// Starts a sink-only span (see [`EventSpan`]).
pub fn event_span(name: &str) -> EventSpan {
    EventSpan {
        name: trace_enabled().then(|| name.to_owned()),
        start: Instant::now(),
    }
}

impl EventSpan {
    /// Stops the span, emitting its trace event (if a sink is attached).
    pub fn finish(self) {}
}

impl Drop for EventSpan {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else { return };
        let dur_us = (self.start.elapsed().as_secs_f64() * 1e6) as u64;
        with_local(|l| emit(l, EventKind::Span { name, dur_us }));
    }
}

/// Names the calling thread for trace display: Chrome-format traces
/// render one track per named thread (threads sharing a name — e.g. the
/// runner's `workerNN` slots across successive pools — merge into one
/// track). Unnamed threads keep their numeric id.
pub fn set_thread_name(name: &str) {
    let r = recorder();
    with_local(|l| {
        r.thread_names
            .lock()
            .expect("thread names poisoned")
            .insert(l.thread_id, name.to_owned());
    });
}

impl Span {
    fn record(&mut self) -> f64 {
        if self.finished {
            return 0.0;
        }
        self.finished = true;
        let secs = self.start.elapsed().as_secs_f64();
        let name = std::mem::take(&mut self.name);
        with_local(|l| {
            emit(
                l,
                EventKind::Span {
                    name: name.clone(),
                    dur_us: (secs * 1e6) as u64,
                },
            );
            l.phases.push((name, secs, 1));
        });
        secs
    }

    /// Stops the span and returns its wall-clock seconds.
    pub fn finish(mut self) -> f64 {
        self.record()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// Adds `delta` to the named counter.
pub fn counter(name: &str, delta: u64) {
    with_local(|l| {
        emit(
            l,
            EventKind::Count {
                name: name.to_owned(),
                delta,
            },
        );
        bump(&mut l.counters, name, |v| *v += delta, 0);
    });
}

/// Sets the named gauge (last write wins at aggregation).
pub fn gauge(name: &str, value: f64) {
    with_local(|l| {
        emit(
            l,
            EventKind::Gauge {
                name: name.to_owned(),
                value,
            },
        );
        bump(&mut l.gauges, name, |v| *v = value, value);
    });
}

/// Records one sample into the named histogram.
pub fn observe(name: &str, value: f64) {
    with_local(|l| {
        bump(
            &mut l.hists,
            name,
            |h| h.record(value),
            HistSummary::default(),
        );
    });
}

/// Records a point event (trace sink only; no aggregate).
pub fn mark(name: &str, detail: &str) {
    if !trace_enabled() {
        return;
    }
    with_local(|l| {
        emit(
            l,
            EventKind::Mark {
                name: name.to_owned(),
                detail: detail.to_owned(),
            },
        );
    });
}

/// Records a point event *and* echoes the classic numbered progress line
/// (`[runner #N] label: outcome`) to stderr — the structured replacement
/// for the runner's former raw `eprintln!`.
///
/// The sequence number is taken and the line written under one process
/// lock, as a single pre-formatted `write`: concurrent workers can
/// neither splice characters into each other's lines (an unbuffered
/// `eprintln!` writes each format fragment separately) nor print out of
/// sequence order.
pub fn progress(label: &str, outcome: &str) {
    let r = recorder();
    {
        let _serialized = r.progress_lock.lock().expect("progress lock poisoned");
        let n = r.progress_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let line = format!("[runner #{n}] {label}: {outcome}\n");
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
    mark(label, outcome);
}

/// Drains the calling thread's buffers into the global aggregate and
/// flushes the trace sink. Threads that already exited (scoped workers)
/// drained automatically on exit.
pub fn flush() {
    with_local(Local::drain);
    if let Some(r) = RECORDER.get() {
        if let Some(Sink::JsonLines(sink)) = &r.sink {
            let _ = sink.lock().expect("trace sink poisoned").flush();
        }
    }
}

/// Flushes the calling thread and, for a Chrome-format sink, writes the
/// complete trace-event file (threads that already exited drained on
/// exit). Idempotent — the first call wins; events recorded afterwards
/// are dropped. JSON-lines sinks are complete after every [`flush`], so
/// this is only *required* when tracing in [`TraceFormat::Chrome`]; call
/// it last thing before process exit.
pub fn finalize() {
    flush();
    let Some(r) = RECORDER.get() else { return };
    if let Some(Sink::Chrome(buf)) = &r.sink {
        let mut b = buf.lock().expect("chrome buffer poisoned");
        if b.written {
            return;
        }
        b.written = true;
        let names = r
            .thread_names
            .lock()
            .expect("thread names poisoned")
            .clone();
        let text = chrome::render(&b.events, &names);
        b.events = Vec::new();
        if let Err(e) = std::fs::write(&b.path, text) {
            eprintln!("[obs] cannot write chrome trace {}: {e}", b.path.display());
        }
    }
}

/// Flushes and snapshots the aggregate state.
#[must_use]
pub fn summary() -> Summary {
    flush();
    let r = recorder();
    let agg = r.agg.lock().expect("obs aggregate poisoned");
    Summary {
        total_wall_s: r.start.elapsed().as_secs_f64(),
        phases: agg
            .phase_order
            .iter()
            .map(|name| {
                let (wall_s, calls) = agg.phases[name];
                PhaseSummary {
                    name: name.clone(),
                    wall_s,
                    calls,
                }
            })
            .collect(),
        counters: agg
            .counters
            .iter()
            .map(|(name, &value)| CounterSummary {
                name: name.clone(),
                value,
            })
            .collect(),
        gauges: agg
            .gauges
            .iter()
            .map(|(name, &value)| GaugeSummary {
                name: name.clone(),
                value,
            })
            .collect(),
        histograms: agg
            .hists
            .iter()
            .map(|(name, &hist)| HistEntry {
                name: name.clone(),
                hist,
            })
            .collect(),
    }
}

/// Renders the end-of-run summary table (every line `[obs]`-prefixed, so
/// it stays out of the way of parseable stdout).
#[must_use]
pub fn render_summary(s: &Summary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "[obs] ---- run summary ----");
    if !s.phases.is_empty() {
        let _ = writeln!(
            out,
            "[obs] {:<28} {:>9} {:>7} {:>6}",
            "phase", "wall", "share", "calls"
        );
        let mut covered = 0.0;
        for p in &s.phases {
            covered += p.wall_s;
            let share = if s.total_wall_s > 0.0 {
                100.0 * p.wall_s / s.total_wall_s
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "[obs]   {:<26} {:>8.2}s {:>6.1}% {:>6}",
                p.name, p.wall_s, share, p.calls
            );
        }
        let _ = writeln!(
            out,
            "[obs] phases cover {covered:.2}s of {:.2}s wall",
            s.total_wall_s
        );
    }
    for c in &s.counters {
        let _ = writeln!(out, "[obs] counter {:<32} {:>12}", c.name, c.value);
    }
    for g in &s.gauges {
        let _ = writeln!(out, "[obs] gauge   {:<32} {:>12.3}", g.name, g.value);
    }
    for h in &s.histograms {
        let _ = writeln!(
            out,
            "[obs] hist    {:<32} n={} mean={:.4} min={:.4} max={:.4}",
            h.name,
            h.hist.count,
            h.hist.mean(),
            h.hist.min,
            h.hist.max
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global, so these tests share one aggregate;
    // each uses its own metric names and asserts only on deltas/presence.

    #[test]
    fn counters_aggregate_across_threads() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        counter("test.counters_aggregate", 2);
                    }
                    // Drain explicitly: `thread::scope` unblocks when the
                    // closure returns, which can race the TLS destructor
                    // that would otherwise drain this thread's buffer.
                    flush();
                });
            }
        });
        let sum = summary();
        let c = sum
            .counters
            .iter()
            .find(|c| c.name == "test.counters_aggregate")
            .expect("counter present");
        assert_eq!(c.value, 4 * 10 * 2);
    }

    #[test]
    fn span_records_a_phase_and_returns_duration() {
        let sp = span("test.span_phase");
        std::thread::sleep(std::time::Duration::from_millis(5));
        let secs = sp.finish();
        assert!(secs >= 0.004, "span measured {secs}s");
        let sum = summary();
        let p = sum
            .phases
            .iter()
            .find(|p| p.name == "test.span_phase")
            .expect("phase present");
        assert!(p.wall_s >= 0.004);
        assert_eq!(p.calls, 1);
    }

    #[test]
    fn histogram_tracks_distribution() {
        for v in [0.5, 1.5, 3.0] {
            observe("test.hist", v);
        }
        let sum = summary();
        let h = &sum
            .histograms
            .iter()
            .find(|h| h.name == "test.hist")
            .expect("histogram present")
            .hist;
        assert_eq!(h.count, 3);
        assert!((h.sum - 5.0).abs() < 1e-12);
        assert!((h.min - 0.5).abs() < 1e-12);
        assert!((h.max - 3.0).abs() < 1e-12);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn gauge_last_write_wins() {
        gauge("test.gauge", 1.0);
        gauge("test.gauge", 42.5);
        let sum = summary();
        let g = sum
            .gauges
            .iter()
            .find(|g| g.name == "test.gauge")
            .expect("gauge present");
        assert!((g.value - 42.5).abs() < 1e-12);
    }

    #[test]
    fn hist_summary_merge_is_lossless_on_count_sum_min_max() {
        let mut a = HistSummary::default();
        let mut b = HistSummary::default();
        for v in [1.0, 2.0] {
            a.record(v);
        }
        for v in [0.25, 8.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert!((a.sum - 11.25).abs() < 1e-12);
        assert!((a.min - 0.25).abs() < 1e-12);
        assert!((a.max - 8.0).abs() < 1e-12);
    }

    #[test]
    fn render_summary_mentions_each_section() {
        let s = Summary {
            total_wall_s: 2.0,
            phases: vec![PhaseSummary {
                name: "fig2".into(),
                wall_s: 1.5,
                calls: 1,
            }],
            counters: vec![CounterSummary {
                name: "cache.disk_hits".into(),
                value: 7,
            }],
            gauges: vec![GaugeSummary {
                name: "apex.speedup".into(),
                value: 12.0,
            }],
            histograms: vec![],
        };
        let text = render_summary(&s);
        assert!(text.contains("fig2"));
        assert!(text.contains("cache.disk_hits"));
        assert!(text.contains("apex.speedup"));
        assert!(text.lines().all(|l| l.starts_with("[obs]")));
    }

    #[test]
    fn trace_event_serializes_to_one_json_line() {
        let e = TraceEvent {
            t_us: 123,
            thread: 0,
            kind: EventKind::Mark {
                name: "job".into(),
                detail: "disk hit".into(),
            },
        };
        let line = serde_json::to_string(&e).expect("serialize");
        assert!(!line.contains('\n'));
        let back: TraceEvent = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, e);
    }
}
