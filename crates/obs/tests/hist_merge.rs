//! Property test: merging per-thread [`HistSummary`]s must equal
//! recording the concatenated sample stream into one histogram — the
//! invariant that makes the thread-local drain path lossless.

use p10_obs::HistSummary;
use proptest::prelude::*;

fn recorded(samples: &[f64]) -> HistSummary {
    let mut h = HistSummary::default();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(record(a), record(b)) == record(a ++ b): count/min/max and
    /// every bucket exactly, sum up to float accumulation order.
    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(0.0f64..50.0, 0..40),
        b in proptest::collection::vec(0.0f64..50.0, 0..40),
    ) {
        let mut merged = recorded(&a);
        merged.merge(&recorded(&b));

        let mut both = a.clone();
        both.extend_from_slice(&b);
        let whole = recorded(&both);

        prop_assert_eq!(merged.count, whole.count);
        prop_assert_eq!(merged.buckets, whole.buckets);
        if !both.is_empty() {
            prop_assert_eq!(merged.min, whole.min);
            prop_assert_eq!(merged.max, whole.max);
        }
        prop_assert!((merged.sum - whole.sum).abs() <= 1e-9 * (1.0 + whole.sum.abs()));
    }

    /// Merging an empty summary in either direction is the identity.
    #[test]
    fn merge_with_empty_is_identity(
        a in proptest::collection::vec(0.0f64..50.0, 0..40),
    ) {
        let base = recorded(&a);
        let mut left = base;
        left.merge(&HistSummary::default());
        prop_assert_eq!(left, base);
        let mut right = HistSummary::default();
        right.merge(&base);
        prop_assert_eq!(right, base);
    }
}
