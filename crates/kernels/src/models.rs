//! Layer-accurate workload graphs for the Fig. 6 inference studies.
//!
//! Both models are described as sequences of GEMM operations (convolutions
//! via im2col) plus non-GEMM work (activation functions, normalization,
//! residual adds, data loading/preprocessing) expressed as elementwise
//! flops and moved bytes. The end-to-end inference model in
//! `p10-core::inference` combines these shapes with kernel throughputs
//! measured on the cycle model.

use serde::{Deserialize, Serialize};

/// A GEMM operation shape: `C[M×N] += A[M×K] · B[K×N]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmShape {
    /// Rows of C.
    pub m: u64,
    /// Columns of C.
    pub n: u64,
    /// Inner (reduction) dimension.
    pub k: u64,
}

impl GemmShape {
    /// Floating-point operations (multiply + add).
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * self.m * self.n * self.k
    }
}

/// One layer of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerOp {
    /// Layer name (e.g. `"conv3_2/3x3"`).
    pub name: String,
    /// The GEMM, if this layer is GEMM-shaped.
    pub gemm: Option<GemmShape>,
    /// Non-GEMM elementwise flops (activations, normalization, residual).
    pub elementwise_flops: u64,
    /// Bytes moved that are not captured by the GEMM operands (weight
    /// streaming, activations between layers, preprocessing).
    pub moved_bytes: u64,
}

/// A full model as a sequence of layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    /// Model name.
    pub name: String,
    /// Inference batch size.
    pub batch: u64,
    /// Layers in execution order.
    pub layers: Vec<LayerOp>,
    /// Parameter count (for the data-loading share; BERT-Large has >10×
    /// the parameters of ResNet-50, which the paper calls out as the
    /// reason its non-GEMM share is bigger).
    pub parameters: u64,
}

impl ModelGraph {
    /// Total GEMM flops over the whole model.
    #[must_use]
    pub fn gemm_flops(&self) -> u64 {
        self.layers
            .iter()
            .filter_map(|l| l.gemm.map(|g| g.flops()))
            .sum()
    }

    /// Total non-GEMM elementwise flops.
    #[must_use]
    pub fn elementwise_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.elementwise_flops).sum()
    }

    /// Total non-GEMM moved bytes.
    #[must_use]
    pub fn moved_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.moved_bytes).sum()
    }

    /// Fraction of total flops performed inside GEMMs.
    #[must_use]
    pub fn gemm_flop_fraction(&self) -> f64 {
        let g = self.gemm_flops() as f64;
        let e = self.elementwise_flops() as f64;
        if g + e == 0.0 {
            0.0
        } else {
            g / (g + e)
        }
    }
}

fn conv(name: &str, cout: u64, cin: u64, ksz: u64, out_hw: u64, batch: u64) -> LayerOp {
    let gemm = GemmShape {
        m: cout,
        k: cin * ksz * ksz,
        n: out_hw * out_hw * batch,
    };
    let outputs = cout * out_hw * out_hw * batch;
    LayerOp {
        name: name.to_owned(),
        gemm: Some(gemm),
        // BN + ReLU: ~4 ops per output element.
        elementwise_flops: outputs * 4,
        // Activations written + weights streamed once per batch.
        moved_bytes: outputs * 4 + cout * cin * ksz * ksz * 4,
    }
}

/// ResNet-50 (ImageNet, 224×224 inputs) as im2col GEMMs.
///
/// The paper's Fig. 6 uses batch size 100.
#[must_use]
pub fn resnet50(batch: u64) -> ModelGraph {
    let mut layers = Vec::new();
    layers.push(conv("conv1/7x7", 64, 3, 7, 112, batch));

    // (stage, blocks, width, out_hw)
    let stages: [(u64, u64, u64, u64); 4] = [
        (2, 3, 64, 56),
        (3, 4, 128, 28),
        (4, 6, 256, 14),
        (5, 3, 512, 7),
    ];
    let mut in_ch = 64u64;
    for (stage, blocks, width, hw) in stages {
        for blk in 0..blocks {
            let prefix = format!("conv{stage}_{}", blk + 1);
            layers.push(conv(&format!("{prefix}/1x1a"), width, in_ch, 1, hw, batch));
            layers.push(conv(&format!("{prefix}/3x3"), width, width, 3, hw, batch));
            layers.push(conv(
                &format!("{prefix}/1x1b"),
                width * 4,
                width,
                1,
                hw,
                batch,
            ));
            if blk == 0 {
                layers.push(conv(
                    &format!("{prefix}/downsample"),
                    width * 4,
                    in_ch,
                    1,
                    hw,
                    batch,
                ));
            }
            // Residual add.
            let outputs = width * 4 * hw * hw * batch;
            layers.push(LayerOp {
                name: format!("{prefix}/residual"),
                gemm: None,
                elementwise_flops: outputs,
                moved_bytes: outputs * 8,
            });
            in_ch = width * 4;
        }
    }
    // Global average pool + FC.
    layers.push(LayerOp {
        name: "avgpool".to_owned(),
        gemm: None,
        elementwise_flops: 2048 * 49 * batch,
        moved_bytes: 2048 * 49 * 4 * batch,
    });
    layers.push(LayerOp {
        name: "fc1000".to_owned(),
        gemm: Some(GemmShape {
            m: 1000,
            k: 2048,
            n: batch,
        }),
        elementwise_flops: 1000 * batch,
        moved_bytes: 1000 * 2048 * 4,
    });
    // Input preprocessing (decode/normalize 224x224x3 images).
    layers.insert(
        0,
        LayerOp {
            name: "preprocess".to_owned(),
            gemm: None,
            elementwise_flops: 224 * 224 * 3 * 10 * batch,
            moved_bytes: 224 * 224 * 3 * 8 * batch,
        },
    );
    ModelGraph {
        name: "ResNet-50".to_owned(),
        batch,
        layers,
        parameters: 25_600_000,
    }
}

/// BERT-Large (24 layers, hidden 1024, 16 heads, FFN 4096).
///
/// The paper's Fig. 6 uses batch size 8 on SQuAD v1.1; we use sequence
/// length 384 (the standard SQuAD fine-tuning length).
#[must_use]
pub fn bert_large(batch: u64, seq: u64) -> ModelGraph {
    let h = 1024u64;
    let heads = 16u64;
    let dh = h / heads; // 64
    let ffn = 4096u64;
    let n_tok = batch * seq;
    let mut layers = Vec::new();

    // Embedding lookup + layernorm: pure data movement + elementwise.
    layers.push(LayerOp {
        name: "embeddings".to_owned(),
        gemm: None,
        elementwise_flops: n_tok * h * 6,
        moved_bytes: n_tok * h * 12,
    });

    for l in 0..24 {
        let p = format!("layer{l}");
        for (nm, m, k) in [("q", h, h), ("k", h, h), ("v", h, h)] {
            layers.push(LayerOp {
                name: format!("{p}/{nm}_proj"),
                gemm: Some(GemmShape { m, k, n: n_tok }),
                elementwise_flops: n_tok * h,
                moved_bytes: h * h * 4,
            });
        }
        // Attention scores: QK^T per head.
        layers.push(LayerOp {
            name: format!("{p}/scores"),
            gemm: Some(GemmShape {
                m: seq,
                k: dh,
                n: seq * batch * heads,
            }),
            // Softmax ~8 ops/score.
            elementwise_flops: seq * seq * batch * heads * 8,
            moved_bytes: seq * seq * batch * heads * 4,
        });
        // Attention-weighted values.
        layers.push(LayerOp {
            name: format!("{p}/context"),
            gemm: Some(GemmShape {
                m: dh,
                k: seq,
                n: seq * batch * heads,
            }),
            elementwise_flops: 0,
            moved_bytes: n_tok * h * 4,
        });
        layers.push(LayerOp {
            name: format!("{p}/out_proj"),
            gemm: Some(GemmShape {
                m: h,
                k: h,
                n: n_tok,
            }),
            // Residual + layernorm.
            elementwise_flops: n_tok * h * 8,
            moved_bytes: h * h * 4 + n_tok * h * 8,
        });
        layers.push(LayerOp {
            name: format!("{p}/ffn1"),
            gemm: Some(GemmShape {
                m: ffn,
                k: h,
                n: n_tok,
            }),
            // GELU ~10 ops/element.
            elementwise_flops: n_tok * ffn * 10,
            moved_bytes: h * ffn * 4,
        });
        layers.push(LayerOp {
            name: format!("{p}/ffn2"),
            gemm: Some(GemmShape {
                m: h,
                k: ffn,
                n: n_tok,
            }),
            elementwise_flops: n_tok * h * 8,
            moved_bytes: h * ffn * 4 + n_tok * h * 8,
        });
    }
    // Span classification head.
    layers.push(LayerOp {
        name: "qa_head".to_owned(),
        gemm: Some(GemmShape {
            m: 2,
            k: h,
            n: n_tok,
        }),
        elementwise_flops: n_tok * 4,
        moved_bytes: n_tok * h * 4,
    });

    ModelGraph {
        name: "BERT-Large".to_owned(),
        batch,
        layers,
        parameters: 340_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_shape_flops() {
        let g = GemmShape { m: 2, n: 3, k: 4 };
        assert_eq!(g.flops(), 48);
    }

    #[test]
    fn resnet50_structure() {
        let m = resnet50(1);
        // 1 stem + (3+4+6+3)=16 blocks × 3 convs + 4 downsamples + fc = 69
        let convs = m.layers.iter().filter(|l| l.gemm.is_some()).count();
        assert_eq!(convs, 1 + 16 * 3 + 4 + 1);
        // ResNet-50 is ~3.8 GMACs = ~7.7 GFLOPs at 2 ops per MAC.
        let gf = m.gemm_flops() as f64 / 1e9;
        assert!((7.0..8.5).contains(&gf), "ResNet-50 GFLOP/image = {gf}");
        // GEMMs dominate the flops.
        assert!(m.gemm_flop_fraction() > 0.9);
    }

    #[test]
    fn resnet50_scales_with_batch() {
        let m1 = resnet50(1);
        let m100 = resnet50(100);
        let r = m100.gemm_flops() as f64 / m1.gemm_flops() as f64;
        assert!((r - 100.0).abs() < 1.0, "batch scaling ratio {r}");
    }

    #[test]
    fn bert_large_structure() {
        let m = bert_large(8, 384);
        // 24 layers × 8 GEMM layers (q,k,v,scores,context,out,ffn1,ffn2)
        // + qa head.
        let gemms = m.layers.iter().filter(|l| l.gemm.is_some()).count();
        assert_eq!(gemms, 24 * 8 + 1);
        // ≈ 2 × params × tokens + attention ≈ 2 TFLOP per 8×384 batch.
        let gf = m.gemm_flops() as f64 / 1e9;
        assert!(
            (1500.0..2500.0).contains(&gf),
            "BERT-Large batch GFLOP = {gf}"
        );
        assert!(m.parameters > 10 * resnet50(1).parameters);
    }

    #[test]
    fn bert_is_more_gemm_concentrated_but_heavier_per_token() {
        // The paper: BERT has a larger proportion of GEMM instructions
        // (slightly higher MMA speedup) yet its >10× parameter count makes
        // weight streaming a bigger burden per token (lower no-MMA
        // speedup). Both facts must hold structurally.
        let r = resnet50(100);
        let b = bert_large(8, 384);
        assert!(b.gemm_flop_fraction() > r.gemm_flop_fraction());
        let weight_bytes_per_token_r = r.parameters as f64 * 4.0 / (100.0 * 1.0);
        let weight_bytes_per_token_b = b.parameters as f64 * 4.0 / (8.0 * 384.0);
        assert!(weight_bytes_per_token_b < weight_bytes_per_token_r);
        assert!(b.parameters > 10 * r.parameters);
    }
}
