//! # p10-kernels
//!
//! Dense linear-algebra kernels and AI-model workload graphs for the
//! `p10sim` reproduction.
//!
//! * [`gemm`] — register-blocked GEMM micro-kernels in three code styles:
//!   the VSU (vector) style that runs on both POWER9 and POWER10, and the
//!   MMA outer-product style (FP64, FP32, INT8) that exploits the POWER10
//!   accelerator. These are real programs for the functional machine; the
//!   Fig. 5 experiment replays them through the cycle model.
//! * [`models`] — layer-accurate GEMM-shape graphs for ResNet-50 (im2col
//!   convolutions) and BERT-Large (attention + FFN), the two inference
//!   workloads of Fig. 6.
//!
//! ## Example
//!
//! ```
//! use p10_kernels::gemm::{dgemm_mma, dgemm_vsu};
//!
//! let vsu = dgemm_vsu(64);
//! let mma = dgemm_mma(64);
//! // Both kernels perform the same mathematical work per iteration.
//! let t_vsu = vsu.trace_or_panic(10_000);
//! let t_mma = mma.trace_or_panic(10_000);
//! assert!(t_mma.total_flops() > 0);
//! assert!(t_vsu.total_flops() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extra;
pub mod gemm;
pub mod models;
