//! Register-blocked GEMM micro-kernels.
//!
//! The Fig. 5 experiment compares an OpenBLAS-representative DGEMM inner
//! kernel in two code styles at iso math-per-iteration:
//!
//! * **VSU style** ([`dgemm_vsu`]): a 4×8 C tile held in sixteen 128-bit
//!   accumulator VSRs, per-k rank-1 update via splats and `xvmaddadp`.
//!   Runs on both POWER9 (peak 8 DP flops/cycle) and POWER10 (16).
//! * **MMA style** ([`dgemm_mma`]): an 8×8 C tile held in all eight
//!   512-bit accumulators, per-k rank-1 update via `xvf64gerpp` fed by
//!   32-byte `lxvp` loads. POWER10 only (peak 32 DP flops/cycle).
//!
//! Single-precision ([`sgemm_vsu`], [`sgemm_mma`] — the paper's 8×16 MMA
//! SGEMM panel), bfloat16 ([`bf16gemm_mma`]) and INT8 ([`int8gemm_mma`])
//! variants cover the Fig. 6 and socket-level reduced-precision
//! projections.
//!
//! All kernels run as endless loops over L1-contained A/B panels
//! (wrap-around offset masking), exactly like the paper's proxy workloads;
//! bound execution with `max_ops`.

use p10_isa::{Inst, Reg};
use p10_workloads::Workload;

/// Base address of the A panel.
const A_BASE: i64 = 0x0100_0000;
/// Base address of the B panel.
const B_BASE: i64 = 0x0110_0000;
/// Offset mask keeping each panel within 16 KiB (L1-contained).
const PANEL_MASK: i64 = 0x3fff & !63;

struct KernelBuilder {
    w: p10_workloads::WorkloadBuilder,
}

impl KernelBuilder {
    fn new(seed: u64) -> Self {
        KernelBuilder {
            w: p10_workloads::WorkloadBuilder::new(seed),
        }
    }

    /// Emits the shared prologue: panel bases, offset counter, wrap mask,
    /// endless loop counter. Returns nothing; registers are fixed:
    /// r3=A base, r9=B base, r4=offset, r7=mask, r10/r11 current pointers.
    fn prologue(&mut self, iterations: i64) {
        let b = &mut self.w.b;
        b.li(Reg::gpr(3), A_BASE);
        b.li(Reg::gpr(9), B_BASE);
        b.li(Reg::gpr(4), 0);
        b.li(Reg::gpr(7), PANEL_MASK);
        b.li(Reg::gpr(30), iterations);
        b.mtctr(Reg::gpr(30));
    }

    /// Computes wrapped A/B pointers for the current offset (3 ALU ops).
    fn pointers(&mut self) {
        let b = &mut self.w.b;
        b.push(Inst::And {
            rt: Reg::gpr(6),
            ra: Reg::gpr(4),
            rb: Reg::gpr(7),
        });
        b.add(Reg::gpr(10), Reg::gpr(3), Reg::gpr(6));
        b.add(Reg::gpr(11), Reg::gpr(9), Reg::gpr(6));
    }

    fn init_panels(&mut self) {
        // Fill both panels with nonzero doubles so functional math is
        // meaningful.
        for i in 0..(16 * 1024 / 8) as u64 {
            let av = f64::to_bits(0.5 + (i % 97) as f64 * 0.125);
            let bv = f64::to_bits(1.0 - (i % 53) as f64 * 0.0625);
            self.w.init_word(A_BASE as u64 + i * 8, av);
            self.w.init_word(B_BASE as u64 + i * 8, bv);
        }
    }

    fn finish(self, name: &str) -> Workload {
        self.w.finish(name)
    }
}

/// DGEMM inner kernel, VSU (vector) style: 4×8 C tile, 64 flops per
/// k-step. `iterations` bounds the endless loop (use a huge value and cap
/// with `max_ops`).
#[must_use]
pub fn dgemm_vsu(iterations: i64) -> Workload {
    let mut k = KernelBuilder::new(11);
    k.prologue(iterations);
    k.init_panels();
    let top = k.w.b.bind_label();
    k.pointers();
    {
        let b = &mut k.w.b;
        // A column: 4 doubles.
        b.lxv(Reg::vsr(32), Reg::gpr(10), 0);
        b.lxv(Reg::vsr(33), Reg::gpr(10), 16);
        // B row: 8 doubles in 4 VSRs.
        for (i, disp) in [0i64, 16, 32, 48].iter().enumerate() {
            b.lxv(Reg::vsr(52 + i as u16), Reg::gpr(11), *disp);
        }
        // Splat each A element (4 splats).
        for i in 0..4u16 {
            b.push(Inst::Xxspltd {
                xt: Reg::vsr(56 + i),
                xa: Reg::vsr(32 + i / 2),
                uim: (i % 2) as u8,
            });
        }
        // 16 FMAs: C[i][jp] += a_i * b[jp].
        for i in 0..4u16 {
            for jp in 0..4u16 {
                b.push(Inst::Xvmaddadp {
                    xt: Reg::vsr(36 + i * 4 + jp),
                    xa: Reg::vsr(56 + i),
                    xb: Reg::vsr(52 + jp),
                });
            }
        }
        b.addi(Reg::gpr(4), Reg::gpr(4), 64);
        b.bdnz(top);
    }
    k.finish("dgemm_vsu")
}

/// DGEMM inner kernel, MMA style: 8×8 C tile in all eight accumulators,
/// 128 flops per k-step, fed by 32-byte `lxvp` loads.
#[must_use]
pub fn dgemm_mma(iterations: i64) -> Workload {
    let mut k = KernelBuilder::new(12);
    k.prologue(iterations);
    k.init_panels();
    {
        let b = &mut k.w.b;
        for a in 0..8 {
            b.push(Inst::Xxsetaccz { at: Reg::acc(a) });
        }
    }
    let top = k.w.b.bind_label();
    k.pointers();
    {
        let b = &mut k.w.b;
        // A column: 8 doubles via two 32-byte paired loads (vs32..35).
        b.push(Inst::Lxvp {
            xt: Reg::vsr(32),
            ra: Reg::gpr(10),
            disp: 0,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(34),
            ra: Reg::gpr(10),
            disp: 32,
        });
        // B row: 8 doubles via two paired loads (vs36..39).
        b.push(Inst::Lxvp {
            xt: Reg::vsr(36),
            ra: Reg::gpr(11),
            disp: 0,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(38),
            ra: Reg::gpr(11),
            disp: 32,
        });
        // 8 rank-1 updates: acc(4r+c) covers C rows 4r..4r+4, cols 2c..2c+2.
        for r in 0..2u16 {
            for c in 0..4u16 {
                b.push(Inst::Xvf64gerpp {
                    at: Reg::acc(4 * r + c),
                    xa: Reg::vsr(32 + 2 * r),
                    xb: Reg::vsr(36 + c),
                });
            }
        }
        b.addi(Reg::gpr(4), Reg::gpr(4), 64);
        b.bdnz(top);
    }
    k.finish("dgemm_mma")
}

/// SGEMM inner kernel, VSU style: 8×8 C tile using 4-lane `xvmaddasp`,
/// 128 flops per k-step.
#[must_use]
pub fn sgemm_vsu(iterations: i64) -> Workload {
    let mut k = KernelBuilder::new(13);
    k.prologue(iterations);
    k.init_panels();
    let top = k.w.b.bind_label();
    k.pointers();
    {
        let b = &mut k.w.b;
        // A column: 8 floats in 2 VSRs.
        b.lxv(Reg::vsr(32), Reg::gpr(10), 0);
        b.lxv(Reg::vsr(33), Reg::gpr(10), 16);
        // B row: 8 floats in 2 VSRs.
        b.lxv(Reg::vsr(52), Reg::gpr(11), 0);
        b.lxv(Reg::vsr(53), Reg::gpr(11), 16);
        // Two splat-ish shuffles standing in for the lane broadcasts.
        b.push(Inst::Xxspltd {
            xt: Reg::vsr(56),
            xa: Reg::vsr(32),
            uim: 0,
        });
        b.push(Inst::Xxspltd {
            xt: Reg::vsr(57),
            xa: Reg::vsr(33),
            uim: 1,
        });
        // 16 single-precision FMAs (8 flops each).
        for i in 0..16u16 {
            b.push(Inst::Xvmaddasp {
                xt: Reg::vsr(36 + i),
                xa: Reg::vsr(56 + (i % 2)),
                xb: Reg::vsr(52 + (i % 2)),
            });
        }
        b.addi(Reg::gpr(4), Reg::gpr(4), 64);
        b.bdnz(top);
    }
    k.finish("sgemm_vsu")
}

/// SGEMM inner kernel, MMA style: the paper's 8×16 panel — eight
/// accumulators as 2 row blocks × 4 col blocks of `xvf32gerpp`,
/// 256 flops per k-step.
#[must_use]
pub fn sgemm_mma(iterations: i64) -> Workload {
    let mut k = KernelBuilder::new(14);
    k.prologue(iterations);
    k.init_panels();
    {
        let b = &mut k.w.b;
        for a in 0..8 {
            b.push(Inst::Xxsetaccz { at: Reg::acc(a) });
        }
    }
    let top = k.w.b.bind_label();
    k.pointers();
    {
        let b = &mut k.w.b;
        // A column: 8 floats in 2 VSRs.
        b.lxv(Reg::vsr(32), Reg::gpr(10), 0);
        b.lxv(Reg::vsr(33), Reg::gpr(10), 16);
        // B row: 16 floats in 4 VSRs via paired loads.
        b.push(Inst::Lxvp {
            xt: Reg::vsr(36),
            ra: Reg::gpr(11),
            disp: 0,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(38),
            ra: Reg::gpr(11),
            disp: 32,
        });
        for r in 0..2u16 {
            for c in 0..4u16 {
                b.push(Inst::Xvf32gerpp {
                    at: Reg::acc(4 * r + c),
                    xa: Reg::vsr(32 + r),
                    xb: Reg::vsr(36 + c),
                });
            }
        }
        b.addi(Reg::gpr(4), Reg::gpr(4), 64);
        b.bdnz(top);
    }
    k.finish("sgemm_mma")
}

/// INT8 GEMM inner kernel on the MMA: eight `xvi8ger4pp` per step
/// (4-deep dot products), 1024 int-op-equivalents per k4-step.
#[must_use]
pub fn int8gemm_mma(iterations: i64) -> Workload {
    let mut k = KernelBuilder::new(15);
    k.prologue(iterations);
    k.init_panels();
    {
        let b = &mut k.w.b;
        for a in 0..8 {
            b.push(Inst::Xxsetaccz { at: Reg::acc(a) });
        }
    }
    let top = k.w.b.bind_label();
    k.pointers();
    {
        let b = &mut k.w.b;
        b.push(Inst::Lxvp {
            xt: Reg::vsr(32),
            ra: Reg::gpr(10),
            disp: 0,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(36),
            ra: Reg::gpr(11),
            disp: 0,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(38),
            ra: Reg::gpr(11),
            disp: 32,
        });
        for r in 0..2u16 {
            for c in 0..4u16 {
                b.push(Inst::Xvi8ger4pp {
                    at: Reg::acc(4 * r + c),
                    xa: Reg::vsr(32 + r),
                    xb: Reg::vsr(36 + c),
                });
            }
        }
        b.addi(Reg::gpr(4), Reg::gpr(4), 64);
        b.bdnz(top);
    }
    k.finish("int8gemm_mma")
}

/// BF16 GEMM inner kernel on the MMA: eight `xvbf16ger2pp` per step
/// (2-deep dot products accumulated in f32), 512 flops per k2-step —
/// the reduced-precision AI format the paper highlights alongside INT8.
#[must_use]
pub fn bf16gemm_mma(iterations: i64) -> Workload {
    let mut k = KernelBuilder::new(21);
    k.prologue(iterations);
    k.init_panels();
    {
        let b = &mut k.w.b;
        for a in 0..8 {
            b.push(Inst::Xxsetaccz { at: Reg::acc(a) });
        }
    }
    let top = k.w.b.bind_label();
    k.pointers();
    {
        let b = &mut k.w.b;
        // A panel: 8 rows × 2 bf16 each, 2 VSRs via one paired load.
        b.push(Inst::Lxvp {
            xt: Reg::vsr(32),
            ra: Reg::gpr(10),
            disp: 0,
        });
        // B panel: 16 columns × 2 bf16 each, 4 VSRs.
        b.push(Inst::Lxvp {
            xt: Reg::vsr(36),
            ra: Reg::gpr(11),
            disp: 0,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(38),
            ra: Reg::gpr(11),
            disp: 32,
        });
        for r in 0..2u16 {
            for c in 0..4u16 {
                b.push(Inst::Xvbf16ger2pp {
                    at: Reg::acc(4 * r + c),
                    xa: Reg::vsr(32 + r),
                    xb: Reg::vsr(36 + c),
                });
            }
        }
        b.addi(Reg::gpr(4), Reg::gpr(4), 64);
        b.bdnz(top);
    }
    k.finish("bf16gemm_mma")
}

/// A small *finite* DGEMM (C = A·B over an 8×8 tile, K steps) in MMA
/// style, storing C to memory at the end — used to validate kernel math
/// against a scalar reference.
#[must_use]
pub fn dgemm_mma_finite(k_steps: i64, c_base: u64) -> Workload {
    let mut k = KernelBuilder::new(16);
    k.prologue(k_steps);
    k.init_panels();
    {
        let b = &mut k.w.b;
        for a in 0..8 {
            b.push(Inst::Xxsetaccz { at: Reg::acc(a) });
        }
    }
    let top = k.w.b.bind_label();
    k.pointers();
    {
        let b = &mut k.w.b;
        b.push(Inst::Lxvp {
            xt: Reg::vsr(32),
            ra: Reg::gpr(10),
            disp: 0,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(34),
            ra: Reg::gpr(10),
            disp: 32,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(36),
            ra: Reg::gpr(11),
            disp: 0,
        });
        b.push(Inst::Lxvp {
            xt: Reg::vsr(38),
            ra: Reg::gpr(11),
            disp: 32,
        });
        for r in 0..2u16 {
            for c in 0..4u16 {
                b.push(Inst::Xvf64gerpp {
                    at: Reg::acc(4 * r + c),
                    xa: Reg::vsr(32 + 2 * r),
                    xb: Reg::vsr(36 + c),
                });
            }
        }
        b.addi(Reg::gpr(4), Reg::gpr(4), 64);
        b.bdnz(top);
    }
    // Epilogue: de-prime accumulators and store C (8 rows x 8 cols).
    {
        let b = &mut k.w.b;
        b.li(Reg::gpr(12), c_base as i64);
        for a in 0..8u16 {
            b.push(Inst::Xxmfacc { at: Reg::acc(a) });
            for row in 0..4u16 {
                b.stxv(
                    Reg::vsr(4 * a + row),
                    Reg::gpr(12),
                    i64::from(a) * 64 + i64::from(row) * 16,
                );
            }
        }
    }
    k.finish("dgemm_mma_finite")
}

/// Scalar reference for the finite MMA DGEMM above: returns the expected
/// C grid given the panel initialization and `k_steps`.
#[must_use]
pub fn dgemm_reference(k_steps: usize) -> [[f64; 8]; 8] {
    let a_at = |i: u64| 0.5 + (i % 97) as f64 * 0.125;
    let b_at = |i: u64| 1.0 - (i % 53) as f64 * 0.0625;
    let mut c = [[0.0f64; 8]; 8];
    for step in 0..k_steps as u64 {
        let off = (step * 64) & (PANEL_MASK as u64);
        let base = off / 8;
        for (i, ci) in c.iter_mut().enumerate() {
            for (j, cij) in ci.iter_mut().enumerate() {
                *cij += a_at(base + i as u64) * b_at(base + j as u64);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_isa::OpClass;

    #[test]
    fn all_kernels_run_endlessly() {
        for w in [
            dgemm_vsu(1 << 40),
            dgemm_mma(1 << 40),
            sgemm_vsu(1 << 40),
            sgemm_mma(1 << 40),
            int8gemm_mma(1 << 40),
            bf16gemm_mma(1 << 40),
        ] {
            let t = w.trace_or_panic(5_000);
            assert_eq!(t.len(), 5_000, "{} must loop", w.name);
            assert!(t.total_flops() > 0, "{} must do flops", w.name);
        }
    }

    #[test]
    fn mma_kernel_does_more_flops_per_instruction() {
        let vsu = dgemm_vsu(1 << 40).trace_or_panic(20_000);
        let mma = dgemm_mma(1 << 40).trace_or_panic(20_000);
        let fpi_vsu = vsu.total_flops() as f64 / vsu.len() as f64;
        let fpi_mma = mma.total_flops() as f64 / mma.len() as f64;
        assert!(
            fpi_mma > 2.5 * fpi_vsu,
            "MMA flops/inst {fpi_mma} must dwarf VSU {fpi_vsu}"
        );
    }

    #[test]
    fn dgemm_kernels_do_identical_math_per_k_step() {
        // 64 flops per k-step VSU, 128 per k-step MMA, but VSU covers a
        // 4x8 tile vs MMA 8x8: flops per C element per k are equal (2).
        let vsu = dgemm_vsu(1 << 40).trace_or_panic(30_000);
        let mma = dgemm_mma(1 << 40).trace_or_panic(30_000);
        let per_iter = |t: &p10_isa::Trace, tile: f64| {
            // flops per branch (= per k-step), normalized by tile size
            let iters = t.ops.iter().filter(|o| o.class == OpClass::Branch).count() as f64;
            t.total_flops() as f64 / iters / tile
        };
        let v = per_iter(&vsu, 32.0);
        let m = per_iter(&mma, 64.0);
        assert!(
            (v - m).abs() < 0.1,
            "per-element work differs: vsu {v} mma {m}"
        );
    }

    #[test]
    fn finite_mma_dgemm_matches_scalar_reference() {
        let c_base = 0x0200_0000u64;
        let k_steps = 37;
        let w = dgemm_mma_finite(k_steps, c_base);
        let mut m = w.machine.clone();
        m.run(&w.program, 1_000_000).expect("kernel must run");
        let expect = dgemm_reference(k_steps as usize);
        // C layout: acc a = rows 4*(a/4*?)... acc(4r+c): rows 4r..4r+4,
        // cols 2c..2c+2; each acc row is one VSR = 2 doubles, stored at
        // c_base + a*64 + row*16.
        for r_blk in 0..2u64 {
            for c_blk in 0..4u64 {
                let a = 4 * r_blk + c_blk;
                for row in 0..4u64 {
                    for col in 0..2u64 {
                        let addr = c_base + a * 64 + row * 16 + col * 8;
                        let got = m.mem.read_f64(addr);
                        let want = expect[(4 * r_blk + row) as usize][(2 * c_blk + col) as usize];
                        assert!(
                            (got - want).abs() < 1e-9,
                            "C[{}][{}] = {got}, want {want}",
                            4 * r_blk + row,
                            2 * c_blk + col
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bf16_kernel_uses_bf16_mma_ops_and_outpaces_sgemm() {
        let bf16 = bf16gemm_mma(1 << 40).trace_or_panic(10_000);
        let bf16_ops = bf16
            .ops
            .iter()
            .filter(|o| o.class == OpClass::Mma(p10_isa::MmaKind::Bf16))
            .count();
        assert!(bf16_ops > 1_000);
        // Per-instruction math density: bf16 (64 fl/inst) doubles fp32
        // (32 fl/inst) at identical loop structure.
        let sp = sgemm_mma(1 << 40).trace_or_panic(10_000);
        let fpi = |t: &p10_isa::Trace| t.total_flops() as f64 / t.len() as f64;
        assert!(
            fpi(&bf16) > 1.7 * fpi(&sp),
            "bf16 {} vs sgemm {}",
            fpi(&bf16),
            fpi(&sp)
        );
    }

    #[test]
    fn int8_kernel_uses_int8_mma_ops() {
        let t = int8gemm_mma(1 << 40).trace_or_panic(5_000);
        let int8_ops = t
            .ops
            .iter()
            .filter(|o| o.class == OpClass::Mma(p10_isa::MmaKind::I8))
            .count();
        assert!(int8_ops > 500);
    }
}
