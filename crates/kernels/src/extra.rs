//! MMA instructions as building blocks beyond GEMM.
//!
//! The paper (§II-C): "MMA instructions are more fine-grained than a
//! complete matrix multiply unit and they can also be used as the
//! building blocks of other computations such as convolution, triangular
//! solve and discrete fourier transform." This module implements all
//! three on the modeled MMA facility, each validated against a scalar
//! reference:
//!
//! * [`conv3x3_mma_finite`] — a direct 3×3 convolution tile computed as
//!   a sequence of `xvf32gerpp` rank-1 updates over input channels and
//!   taps (no explicit im2col buffer).
//! * [`trsm_mma_finite`] — a unit-lower-triangular solve `L·X = B` with
//!   MMA `xvf64gernp` trailing updates.
//! * [`dft8_mma_finite`] — an 8-point real-input DFT as two small GEMMs
//!   against the cosine/sine twiddle matrices.

use p10_isa::{Inst, Reg};
use p10_workloads::{Workload, WorkloadBuilder};

/// Base address for kernel inputs.
const IN_BASE: u64 = 0x0400_0000;
/// Base address for kernel weights/matrices.
const W_BASE: u64 = 0x0410_0000;
/// Base address for kernel outputs (read back via the `*_read_output`
/// helpers).
pub const OUT_BASE: u64 = 0x0420_0000;

fn f32_init(w: &mut WorkloadBuilder, addr: u64, vals: &[f32]) {
    for (i, pair) in vals.chunks(2).enumerate() {
        let lo = pair[0].to_bits() as u64;
        let hi = pair.get(1).map_or(0, |v| v.to_bits()) as u64;
        w.init_word(addr + 8 * i as u64, lo | (hi << 32));
    }
}

fn f64_init(w: &mut WorkloadBuilder, addr: u64, vals: &[f64]) {
    for (i, v) in vals.iter().enumerate() {
        w.init_word(addr + 8 * i as u64, v.to_bits());
    }
}

/// Input geometry of the convolution demo: 4 input channels, 6×6 input,
/// 4 output channels, 4 output positions along one row.
pub const CONV_CIN: usize = 4;
/// Output channels.
pub const CONV_COUT: usize = 4;
/// Input edge length.
pub const CONV_IN_W: usize = 6;

/// Deterministic convolution test data: `(input, weights)`.
///
/// `input[ci][y][x]`, `weights[co][ci][dy][dx]`.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn conv_test_data() -> (Vec<f32>, Vec<f32>) {
    let input: Vec<f32> = (0..CONV_CIN * CONV_IN_W * CONV_IN_W)
        .map(|i| ((i * 7 + 3) % 13) as f32 * 0.25 - 1.0)
        .collect();
    let weights: Vec<f32> = (0..CONV_COUT * CONV_CIN * 9)
        .map(|i| ((i * 5 + 1) % 11) as f32 * 0.125 - 0.5)
        .collect();
    (input, weights)
}

/// Scalar reference: one output row of 4 positions at `y = 1`,
/// `O[co][x] = Σ_{ci,dy,dx} W[co][ci][dy][dx] · I[ci][y+dy-1][x+dx-1]`
/// for x in 1..5 (valid positions with the 3×3 window).
#[must_use]
#[allow(clippy::needless_range_loop)] // tensor index symmetry
pub fn conv_reference() -> [[f32; 4]; 4] {
    let (input, weights) = conv_test_data();
    let i_at = |ci: usize, y: usize, x: usize| input[(ci * CONV_IN_W + y) * CONV_IN_W + x];
    let w_at = |co: usize, ci: usize, dy: usize, dx: usize| {
        weights[((co * CONV_CIN + ci) * 3 + dy) * 3 + dx]
    };
    let mut out = [[0.0f32; 4]; 4];
    for co in 0..4 {
        for x in 0..4 {
            let mut acc = 0.0f32;
            for ci in 0..CONV_CIN {
                for dy in 0..3 {
                    for dx in 0..3 {
                        acc = w_at(co, ci, dy, dx).mul_add(i_at(ci, dy, x + dx), acc);
                    }
                }
            }
            out[co][x] = acc;
        }
    }
    out
}

/// Builds the finite MMA convolution kernel: 36 rank-1 updates
/// (4 channels × 9 taps), one `xvf32gerpp` each: the a-vector is the
/// 4-output-channel weight column for the tap, the b-vector is the 4
/// sliding input positions the tap touches. Output stored at
/// [`OUT_BASE`] as a 4×4 f32 grid (co-major).
#[must_use]
pub fn conv3x3_mma_finite() -> Workload {
    let (input, weights) = conv_test_data();
    let mut w = WorkloadBuilder::new(41);
    f32_init(&mut w, IN_BASE, &input);
    // Weight columns laid out per (ci, dy, dx): 4 f32 = W[0..4][ci][tap].
    let mut wcols = Vec::new();
    for ci in 0..CONV_CIN {
        for dy in 0..3 {
            for dx in 0..3 {
                for co in 0..4 {
                    wcols.push(weights[((co * CONV_CIN + ci) * 3 + dy) * 3 + dx]);
                }
            }
        }
    }
    f32_init(&mut w, W_BASE, &wcols);

    {
        let b = &mut w.b;
        b.li(Reg::gpr(1), IN_BASE as i64);
        b.li(Reg::gpr(2), W_BASE as i64);
        b.li(Reg::gpr(3), OUT_BASE as i64);
        b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
        let mut k = 0i64;
        for ci in 0..CONV_CIN {
            for dy in 0..3usize {
                for dx in 0..3usize {
                    // a: weight column for this tap.
                    b.lxv(Reg::vsr(34), Reg::gpr(2), k * 16);
                    // b: 4 sliding input values I[ci][dy][dx..dx+4]
                    // (output row y=1 uses input rows dy, unpadded).
                    let off = ((ci * CONV_IN_W + dy) * CONV_IN_W + dx) * 4;
                    b.lxv(Reg::vsr(36), Reg::gpr(1), off as i64);
                    b.push(Inst::Xvf32gerpp {
                        at: Reg::acc(0),
                        xa: Reg::vsr(34),
                        xb: Reg::vsr(36),
                    });
                    k += 1;
                }
            }
        }
        b.push(Inst::Xxmfacc { at: Reg::acc(0) });
        for row in 0..4 {
            b.stxv(Reg::vsr(row), Reg::gpr(3), i64::from(row) * 16);
        }
    }
    w.finish("conv3x3_mma")
}

/// Reads the convolution output grid from a machine that ran the kernel.
#[must_use]
pub fn conv_read_output(m: &p10_isa::Machine) -> [[f32; 4]; 4] {
    let mut out = [[0.0f32; 4]; 4];
    for (co, row) in out.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            *v = m.mem.read_f32(OUT_BASE + (co * 16 + x * 4) as u64);
        }
    }
    out
}

/// Size of the triangular system.
pub const TRSM_N: usize = 8;
/// Right-hand-side columns (one accumulator row-pair wide).
pub const TRSM_RHS: usize = 2;

/// Deterministic TRSM test data `(l, b)`: `l` unit-lower-triangular
/// row-major 8×8, `b` 8×2 row-major.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn trsm_test_data() -> (Vec<f64>, Vec<f64>) {
    let mut l = vec![0.0f64; TRSM_N * TRSM_N];
    for i in 0..TRSM_N {
        l[i * TRSM_N + i] = 1.0;
        for j in 0..i {
            l[i * TRSM_N + j] = ((i * 3 + j * 5 + 1) % 7) as f64 * 0.125 - 0.375;
        }
    }
    let b: Vec<f64> = (0..TRSM_N * TRSM_RHS)
        .map(|i| ((i * 11 + 2) % 9) as f64 * 0.5 - 2.0)
        .collect();
    (l, b)
}

/// Scalar forward substitution reference: solves `L · X = B`.
#[must_use]
pub fn trsm_reference() -> Vec<f64> {
    let (l, b) = trsm_test_data();
    let mut x = b;
    for i in 0..TRSM_N {
        for j in 0..i {
            let lij = l[i * TRSM_N + j];
            for c in 0..TRSM_RHS {
                x[i * TRSM_RHS + c] -= lij * x[j * TRSM_RHS + c];
            }
        }
    }
    x
}

/// Builds the MMA triangular solve: X rows are produced top-down; after
/// each block of one row, the trailing rows are updated with
/// `xvf64gernp` rank-1 updates (`B[i..] -= L[i..,row] ⊗ X[row]`).
///
/// For clarity the kernel processes one row at a time with 4-row
/// trailing-update blocks; X is stored to [`OUT_BASE`] (8×2 f64,
/// row-major).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn trsm_mma_finite() -> Workload {
    let (l, b) = trsm_test_data();
    let mut w = WorkloadBuilder::new(43);
    f64_init(&mut w, W_BASE, &l);
    f64_init(&mut w, IN_BASE, &b);

    {
        let bu = &mut w.b;
        bu.li(Reg::gpr(1), IN_BASE as i64); // B / X in place
        bu.li(Reg::gpr(2), W_BASE as i64); // L
        bu.li(Reg::gpr(3), OUT_BASE as i64);
        // Copy B into the output area; the solve updates in place there.
        for i in 0..(TRSM_N * TRSM_RHS) as i64 {
            bu.ld(Reg::gpr(5), Reg::gpr(1), i * 8);
            bu.std(Reg::gpr(5), Reg::gpr(3), i * 8);
        }
        // Row-by-row forward substitution: row i's X equals the current
        // residual (unit diagonal); then subtract its outer product with
        // the L column below.
        for i in 0..TRSM_N {
            let rows_below = TRSM_N - 1 - i;
            if rows_below == 0 {
                break;
            }
            // b-vector: X[i][0..2] (one VSR).
            bu.lxv(Reg::vsr(36), Reg::gpr(3), (i * TRSM_RHS * 8) as i64);
            // Trailing rows in blocks of up to 4.
            let mut r = i + 1;
            while r < TRSM_N {
                let blk = (TRSM_N - r).min(4);
                // a-vector: L[r..r+4][i] — gathered column into memory is
                // awkward; instead materialize via 4 scalar loads into a
                // staging buffer, then two lxv (even pair) reads.
                for k in 0..4usize {
                    let src = if k < blk {
                        ((r + k) * TRSM_N + i) * 8
                    } else {
                        // pad with zeros from a scratch slot
                        (TRSM_N * TRSM_N) * 8
                    };
                    bu.ld(Reg::gpr(6), Reg::gpr(2), src as i64);
                    bu.std(
                        Reg::gpr(6),
                        Reg::gpr(2),
                        ((TRSM_N * TRSM_N + 2) * 8 + k * 8) as i64,
                    );
                }
                let stage = ((TRSM_N * TRSM_N + 2) * 8) as i64;
                bu.lxv(Reg::vsr(34), Reg::gpr(2), stage);
                bu.lxv(Reg::vsr(35), Reg::gpr(2), stage + 16);
                // acc = current residual rows r..r+4 (2 cols).
                bu.push(Inst::Xxsetaccz { at: Reg::acc(0) });
                for k in 0..4usize {
                    let addr = ((r + k.min(blk - 1)) * TRSM_RHS * 8) as i64;
                    let _ = addr;
                }
                // Load residual rows into backing VSRs then prime.
                for k in 0..4usize {
                    let row = if k < blk { r + k } else { TRSM_N - 1 };
                    bu.lxv(Reg::vsr(k as u16), Reg::gpr(3), (row * TRSM_RHS * 8) as i64);
                }
                bu.push(Inst::Xxmtacc { at: Reg::acc(0) });
                // acc -= L-col x X[i]
                bu.push(Inst::Xvf64gernp {
                    at: Reg::acc(0),
                    xa: Reg::vsr(34),
                    xb: Reg::vsr(36),
                });
                bu.push(Inst::Xxmfacc { at: Reg::acc(0) });
                for k in 0..blk {
                    bu.stxv(
                        Reg::vsr(k as u16),
                        Reg::gpr(3),
                        ((r + k) * TRSM_RHS * 8) as i64,
                    );
                }
                r += blk;
            }
        }
    }
    // Scratch zero slot for padding.
    w.init_word(W_BASE + (TRSM_N * TRSM_N) as u64 * 8, 0);
    w.finish("trsm_mma")
}

/// Reads the TRSM solution from a machine that ran the kernel.
#[must_use]
pub fn trsm_read_output(m: &p10_isa::Machine) -> Vec<f64> {
    (0..TRSM_N * TRSM_RHS)
        .map(|i| m.mem.read_f64(OUT_BASE + i as u64 * 8))
        .collect()
}

/// DFT length.
pub const DFT_N: usize = 8;

/// Deterministic DFT input.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn dft_test_input() -> Vec<f64> {
    (0..DFT_N).map(|i| ((i * 5 + 1) % 7) as f64 - 3.0).collect()
}

/// Scalar reference DFT: returns `(re, im)` of `X[k] = Σ x[n]·e^{-2πikn/N}`.
#[must_use]
pub fn dft_reference() -> (Vec<f64>, Vec<f64>) {
    let x = dft_test_input();
    let mut re = vec![0.0; DFT_N];
    let mut im = vec![0.0; DFT_N];
    for k in 0..DFT_N {
        for (n, &v) in x.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * n) as f64 / DFT_N as f64;
            re[k] += v * ang.cos();
            im[k] += v * ang.sin();
        }
    }
    (re, im)
}

/// Builds the MMA DFT: the real and imaginary twiddle matrices (8×8) are
/// multiplied by the input vector via `xvf64gerpp` rank-1 updates —
/// exactly a (8×8)·(8×1) GEMM pair. Outputs: re at [`OUT_BASE`], im at
/// `OUT_BASE + 64`.
#[must_use]
pub fn dft8_mma_finite() -> Workload {
    let x = dft_test_input();
    let mut w = WorkloadBuilder::new(47);
    // Twiddles stored column-major: column n holds e^{-2πikn/N} over k,
    // so step n is the rank-1 update twiddle_col(n) ⊗ [x[n], x[n]].
    let mut cos_cols = Vec::new();
    let mut sin_cols = Vec::new();
    for n in 0..DFT_N {
        for k in 0..DFT_N {
            let ang = -2.0 * std::f64::consts::PI * (k * n) as f64 / DFT_N as f64;
            cos_cols.push(ang.cos());
            sin_cols.push(ang.sin());
        }
    }
    f64_init(&mut w, W_BASE, &cos_cols);
    f64_init(&mut w, W_BASE + 512, &sin_cols);
    // Input duplicated per column for the 2-wide b-vector: [x[n], x[n]].
    let dup: Vec<f64> = x.iter().flat_map(|&v| [v, v]).collect();
    f64_init(&mut w, IN_BASE, &dup);

    {
        let b = &mut w.b;
        b.li(Reg::gpr(1), IN_BASE as i64);
        b.li(Reg::gpr(2), W_BASE as i64);
        b.li(Reg::gpr(3), OUT_BASE as i64);
        for (part, tw_off, out_off) in [(0u16, 0i64, 0i64), (1, 512, 64)] {
            let _ = part;
            // Two accumulators cover k = 0..4 and 4..8 (columns 0..2 used).
            b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
            b.push(Inst::Xxsetaccz { at: Reg::acc(1) });
            for n in 0..DFT_N as i64 {
                b.push(Inst::Lxvp {
                    xt: Reg::vsr(34),
                    ra: Reg::gpr(2),
                    disp: tw_off + n * 64,
                });
                b.push(Inst::Lxvp {
                    xt: Reg::vsr(38),
                    ra: Reg::gpr(2),
                    disp: tw_off + n * 64 + 32,
                });
                b.lxv(Reg::vsr(36), Reg::gpr(1), n * 16);
                b.push(Inst::Xvf64gerpp {
                    at: Reg::acc(0),
                    xa: Reg::vsr(34),
                    xb: Reg::vsr(36),
                });
                b.push(Inst::Xvf64gerpp {
                    at: Reg::acc(1),
                    xa: Reg::vsr(38),
                    xb: Reg::vsr(36),
                });
            }
            b.push(Inst::Xxmfacc { at: Reg::acc(0) });
            b.push(Inst::Xxmfacc { at: Reg::acc(1) });
            // Column 0 of each accumulator row holds X[k]; rows are 2
            // doubles wide — store the full rows, the reader picks col 0.
            for k in 0..4 {
                b.stxv(Reg::vsr(k), Reg::gpr(3), out_off + i64::from(k) * 16);
                b.stxv(
                    Reg::vsr(4 + k),
                    Reg::gpr(3),
                    out_off + 256 + i64::from(k) * 16,
                );
            }
        }
    }
    w.finish("dft8_mma")
}

/// Reads the DFT result from a machine that ran the kernel.
#[must_use]
pub fn dft_read_output(m: &p10_isa::Machine) -> (Vec<f64>, Vec<f64>) {
    let read_part = |base: u64| -> Vec<f64> {
        let mut out = Vec::with_capacity(DFT_N);
        for k in 0..4u64 {
            out.push(m.mem.read_f64(base + k * 16));
        }
        for k in 0..4u64 {
            out.push(m.mem.read_f64(base + 256 + k * 16));
        }
        out
    };
    (read_part(OUT_BASE), read_part(OUT_BASE + 64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(w: &Workload) -> p10_isa::Machine {
        let mut m = w.machine.clone();
        m.run(&w.program, 10_000_000).expect("kernel runs");
        m
    }

    #[test]
    fn convolution_matches_scalar_reference() {
        let w = conv3x3_mma_finite();
        let m = run(&w);
        let got = conv_read_output(&m);
        let want = conv_reference();
        for co in 0..4 {
            for x in 0..4 {
                assert!(
                    (got[co][x] - want[co][x]).abs() < 1e-4,
                    "O[{co}][{x}] = {}, want {}",
                    got[co][x],
                    want[co][x]
                );
            }
        }
    }

    #[test]
    fn triangular_solve_matches_forward_substitution() {
        let w = trsm_mma_finite();
        let m = run(&w);
        let got = trsm_read_output(&m);
        let want = trsm_reference();
        for (i, (g, wv)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - wv).abs() < 1e-9,
                "X[{}][{}] = {g}, want {wv}",
                i / TRSM_RHS,
                i % TRSM_RHS
            );
        }
        // And the solution actually satisfies L X = B.
        let (l, b) = trsm_test_data();
        for i in 0..TRSM_N {
            for c in 0..TRSM_RHS {
                let mut acc = 0.0;
                for j in 0..TRSM_N {
                    acc += l[i * TRSM_N + j] * got[j * TRSM_RHS + c];
                }
                assert!((acc - b[i * TRSM_RHS + c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dft_matches_scalar_reference() {
        let w = dft8_mma_finite();
        let m = run(&w);
        let (re, im) = dft_read_output(&m);
        let (re_ref, im_ref) = dft_reference();
        for k in 0..DFT_N {
            assert!(
                (re[k] - re_ref[k]).abs() < 1e-9,
                "Re X[{k}] = {}, want {}",
                re[k],
                re_ref[k]
            );
            assert!(
                (im[k] - im_ref[k]).abs() < 1e-9,
                "Im X[{k}] = {}, want {}",
                im[k],
                im_ref[k]
            );
        }
        // Parseval sanity: energy preserved (×N).
        let x = dft_test_input();
        let e_time: f64 = x.iter().map(|v| v * v).sum();
        let e_freq: f64 = re.iter().zip(im.iter()).map(|(r, i)| r * r + i * i).sum();
        assert!((e_freq - e_time * DFT_N as f64).abs() < 1e-6);
    }

    #[test]
    fn kernels_use_the_mma_grid() {
        for w in [conv3x3_mma_finite(), trsm_mma_finite(), dft8_mma_finite()] {
            let mut m = w.machine.clone();
            let t = m.run(&w.program, 10_000_000).unwrap();
            let mma_ops = t.ops.iter().filter(|o| o.is_mma_compute()).count();
            assert!(mma_ops > 0, "{} must use the grid", w.name);
        }
    }
}
