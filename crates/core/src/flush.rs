//! The wasted-instruction (flush-reduction) study.
//!
//! The paper (§II-B): POWER10's branch-prediction improvements reduce
//! wasted/flushed instructions by 25% on average for SPECint and up to
//! 38% for interpreted languages and business analytics.

use crate::scenario::run_benchmark;
use p10_uarch::CoreConfig;
use p10_workloads::suite::{extended_groups, specint_like};
use p10_workloads::{Benchmark, WorkloadGroup};
use serde::{Deserialize, Serialize};

/// Per-workload flush comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlushRow {
    /// Workload name.
    pub workload: String,
    /// Workload group.
    pub group: WorkloadGroup,
    /// Wasted (wrong-path) instructions per completed instruction, POWER9.
    pub p9_waste_per_inst: f64,
    /// Same for POWER10.
    pub p10_waste_per_inst: f64,
}

impl FlushRow {
    /// Fractional reduction (positive = POWER10 wastes less).
    #[must_use]
    pub fn reduction(&self) -> f64 {
        1.0 - self.p10_waste_per_inst / self.p9_waste_per_inst.max(1e-12)
    }
}

/// The full flush study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlushStudy {
    /// Per-workload rows.
    pub rows: Vec<FlushRow>,
}

impl FlushStudy {
    /// Mean reduction over a workload group subset.
    #[must_use]
    pub fn mean_reduction(&self, filter: impl Fn(WorkloadGroup) -> bool) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| filter(r.group))
            .map(FlushRow::reduction)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Mean SPECint reduction (paper: 25%).
    #[must_use]
    pub fn specint_reduction(&self) -> f64 {
        self.mean_reduction(|g| g == WorkloadGroup::SpecIntLike)
    }

    /// Mean interpreted/analytics reduction (paper: 38%).
    #[must_use]
    pub fn interpreted_reduction(&self) -> f64 {
        self.mean_reduction(|g| matches!(g, WorkloadGroup::Interpreted | WorkloadGroup::Analytics))
    }
}

fn waste(cfg: &CoreConfig, b: &Benchmark, seed: u64, ops: u64) -> f64 {
    let r = run_benchmark(cfg, b, seed, ops);
    r.sim.activity.wrong_path_fetched as f64 / r.sim.activity.completed.max(1) as f64
}

/// Runs the flush study over the SPECint-like suite plus the extended
/// workload groups.
#[must_use]
pub fn run_flush_study(seed: u64, ops: u64) -> FlushStudy {
    let p9 = CoreConfig::power9();
    let p10 = CoreConfig::power10();
    let rows = specint_like()
        .into_iter()
        .chain(extended_groups())
        .map(|b| FlushRow {
            workload: b.name.clone(),
            group: b.group,
            p9_waste_per_inst: waste(&p9, &b, seed, ops),
            p10_waste_per_inst: waste(&p10, &b, seed, ops),
        })
        .collect();
    FlushStudy { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_reductions_match_paper_shape() {
        let s = run_flush_study(42, 25_000);
        let spec = s.specint_reduction();
        let interp = s.interpreted_reduction();
        // Paper: 25% SPECint, 38% interpreted/analytics. Shape gate:
        // both large and positive.
        assert!(spec > 0.15, "SPECint reduction {spec}");
        assert!(interp > 0.15, "interpreted reduction {interp}");
        // Every SPECint workload individually improves.
        for r in s
            .rows
            .iter()
            .filter(|r| r.group == WorkloadGroup::SpecIntLike)
        {
            assert!(
                r.reduction() > 0.0,
                "{} regressed: {}",
                r.workload,
                r.reduction()
            );
        }
    }
}
