//! The §III-B project-tracking dashboard: the metrics the paper says
//! were continuously tracked during POWER10 development — IPC, core
//! power, core efficiency, latch count, % clock enabled, potential latch
//! switching, and observed latch switching ratio — computed for any
//! configuration over the suite.

use p10_rtlsim::{run_detailed, Roi, ToggleDensity};
use p10_uarch::CoreConfig;
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// The §III-B tracked-metric row for one design snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackingRow {
    /// Configuration name.
    pub config: String,
    /// Suite-mean instructions per cycle.
    pub ipc: f64,
    /// Suite-mean core power.
    pub core_power: f64,
    /// Core efficiency (IPC per unit power).
    pub core_efficiency: f64,
    /// Latches in the core design.
    pub latches: f64,
    /// % of latch clocks enabled (inverse of % clock gating).
    pub clock_enabled_pct: f64,
    /// Potential latch switching (per latch per cycle).
    pub potential_switching: f64,
    /// Observed / potential latch switching ratio.
    pub observed_ratio: f64,
}

/// Computes the tracking row for one configuration over a suite subset.
#[must_use]
pub fn track(cfg: &CoreConfig, suite: &[Benchmark], seed: u64, ops: u64) -> TrackingRow {
    let mut ipc = 0.0;
    let mut power = 0.0;
    let mut clock_pct = 0.0;
    let mut potential = 0.0;
    let mut observed = 0.0;
    let mut latches = 0.0;
    for b in suite {
        let trace = b.workload(seed).trace_view_or_panic(ops);
        let r = run_detailed(
            cfg,
            vec![trace],
            Roi::new(500, ops * 40),
            ToggleDensity::default(),
        );
        ipc += r.roi_activity.ipc();
        power += r.power.core_total();
        clock_pct += r.powerminer.clock_enable_pct;
        potential += r.powerminer.potential_switching;
        observed += r.powerminer.observed_switching;
        latches = r.powerminer.total_latches;
    }
    let n = suite.len().max(1) as f64;
    let (ipc, power) = (ipc / n, power / n);
    TrackingRow {
        config: cfg.name.clone(),
        ipc,
        core_power: power,
        core_efficiency: ipc / power.max(1e-12),
        latches,
        clock_enabled_pct: clock_pct / n,
        potential_switching: potential / n,
        observed_ratio: if potential > 0.0 {
            observed / potential
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    #[test]
    fn tracking_dashboard_shows_the_development_story() {
        let suite = specint_like();
        let sel = &suite[7..9];
        let p9 = track(&CoreConfig::power9(), sel, 42, 6_000);
        let p10 = track(&CoreConfig::power10(), sel, 42, 6_000);
        // The §III-B narrative: POWER10 has MORE latches yet LESS clock
        // enabled, higher IPC, lower power, much better efficiency.
        assert!(
            p10.latches > p9.latches,
            "{} vs {}",
            p10.latches,
            p9.latches
        );
        assert!(p10.clock_enabled_pct < p9.clock_enabled_pct);
        assert!(p10.ipc > p9.ipc);
        assert!(p10.core_power < p9.core_power);
        assert!(p10.core_efficiency > p9.core_efficiency * 1.8);
        assert!(p10.observed_ratio <= 1.0 && p10.observed_ratio > 0.0);
    }
}
