//! Tracepoints versus Simpoints (paper §III-A).
//!
//! The paper argues BBV-based Simpoints miss phases that basic-block
//! vectors cannot see — LLC misses, periodicity, and the behaviour of
//! interpreted languages where the code mix barely changes while
//! performance swings. The adversarial case here is a *phased pointer
//! chase*: identical code, data-driven cache phases. Epoch performance
//! counters (from APEX windows) feed Tracepoints; BBVs from the
//! functional trace feed Simpoints; both project CPI and are compared to
//! the full-run truth.

use crate::runner;
use p10_apex::run_apex;
use p10_trace::simpoint::{bbv_intervals, simpoints};
use p10_trace::tracepoints::{tracepoints, Epoch, TracepointConfig};
use p10_uarch::CoreConfig;
use p10_workloads::Workload;
use serde::{Deserialize, Serialize};

/// The comparison result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStudy {
    /// True full-run CPI.
    pub full_cpi: f64,
    /// CPI projected from the Simpoint selection.
    pub simpoint_cpi: f64,
    /// CPI projected from the Tracepoint selection.
    pub tracepoint_cpi: f64,
    /// Relative errors (fractions).
    pub simpoint_error: f64,
    /// Relative error of the Tracepoint estimate.
    pub tracepoint_error: f64,
    /// Number of epochs/intervals considered.
    pub epochs: usize,
}

/// Runs the study on a workload. `epoch_ops` is both the BBV interval
/// and, via matching windowing, the counter epoch.
#[must_use]
pub fn run_trace_study(
    cfg: &CoreConfig,
    workload: &Workload,
    total_ops: u64,
    epoch_ops: usize,
    clusters: usize,
) -> TraceStudy {
    let trace = runner::timed(&format!("trace {} ops={total_ops}", workload.name), || {
        workload.trace_view_or_panic(total_ops)
    });
    let bbvs = runner::timed("tracestudy bbv intervals", || {
        let mut bbvs = bbv_intervals(trace.ops(), epoch_ops, 64);
        // This study aligns BBV intervals 1:1 with equal-size counter
        // epochs, so the ragged partial tail (which has no matching
        // epoch) is dropped here — the sampled-execution engine is the
        // consumer that keeps it, with an ops-proportional weight.
        if trace.len() % epoch_ops != 0 {
            bbvs.pop();
        }
        bbvs
    });

    // Timing epochs: drive the cycle model and cut windows at epoch_ops
    // completed instructions (approximated by small cycle windows folded
    // into per-epoch aggregates).
    let report = runner::timed(&format!("apex {} @ {}", workload.name, cfg.name), || {
        run_apex(cfg, vec![trace], 64, total_ops * 40)
    });
    let mut epochs: Vec<Epoch> = Vec::new();
    let mut per_epoch_cpi: Vec<f64> = Vec::new();
    let mut acc = p10_uarch::Activity::default();
    for w in &report.windows {
        acc = acc.sum(&w.activity);
        if acc.completed >= epoch_ops as u64 {
            let cpi = acc.cpi();
            epochs.push(Epoch {
                metrics: vec![
                    cpi,
                    acc.l1d_misses as f64 / acc.completed.max(1) as f64,
                    acc.branch_mispredicts as f64 / acc.completed.max(1) as f64,
                ],
            });
            per_epoch_cpi.push(cpi);
            acc = p10_uarch::Activity::default();
        }
    }
    let n = epochs.len().min(bbvs.len());
    let epochs = &epochs[..n];
    let per_epoch_cpi = &per_epoch_cpi[..n];
    let bbvs = &bbvs[..n];

    let full_cpi = per_epoch_cpi.iter().sum::<f64>() / n.max(1) as f64;
    let sp = simpoints(bbvs, clusters, 11);
    let tp = tracepoints(
        epochs,
        &TracepointConfig {
            bins: clusters.max(2),
            sub_bins: 2,
            budget: clusters.max(2) * 2,
        },
    );
    let simpoint_cpi = sp.weighted_estimate(per_epoch_cpi);
    let tracepoint_cpi = tp.weighted_estimate(per_epoch_cpi);
    TraceStudy {
        full_cpi,
        simpoint_cpi,
        tracepoint_cpi,
        simpoint_error: (simpoint_cpi - full_cpi).abs() / full_cpi.max(1e-12),
        tracepoint_error: (tracepoint_cpi - full_cpi).abs() / full_cpi.max(1e-12),
        epochs: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::suite::phased_pointer_chase;

    #[test]
    fn tracepoints_beat_simpoints_on_phased_interpreted_like_code() {
        let w = phased_pointer_chase(2_000);
        let s = run_trace_study(&CoreConfig::power10(), &w, 60_000, 1_500, 3);
        assert!(s.epochs >= 8, "need phases to compare, got {}", s.epochs);
        assert!(
            s.tracepoint_error < 0.10,
            "tracepoint error {}",
            s.tracepoint_error
        );
        assert!(
            s.tracepoint_error <= s.simpoint_error + 1e-9,
            "tracepoints {} must beat BBV simpoints {}",
            s.tracepoint_error,
            s.simpoint_error
        );
    }
}
