//! Joint performance + power scenario execution.

use p10_isa::TraceView;
use p10_power::{PowerModel, PowerReport};
use p10_uarch::{Core, CoreConfig, SimResult, SmtMode};
use p10_workloads::{arena, Benchmark, Workload};
use serde::{Deserialize, Serialize};

/// Result of running one workload on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Workload name.
    pub workload: String,
    /// Configuration name.
    pub config: String,
    /// Timing result.
    pub sim: SimResult,
    /// Power evaluation of the same window.
    pub power: PowerReport,
}

impl ScenarioResult {
    /// Aggregate instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.sim.ipc()
    }

    /// Core power (excludes the L2/L3 nest).
    #[must_use]
    pub fn core_power(&self) -> f64 {
        self.power.core_total()
    }

    /// Performance per watt (IPC / core power), iso-frequency.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let p = self.core_power();
        if p <= 0.0 {
            0.0
        } else {
            self.ipc() / p
        }
    }
}

/// Runs one workload: `threads(smt)` copies with staggered start points,
/// so SMT threads execute divergent instruction streams (like real
/// rate-mode runs) instead of identical lock-step copies.
#[must_use]
pub fn run_workload(cfg: &CoreConfig, workload: &Workload, max_ops: u64) -> ScenarioResult {
    if arena::enabled() {
        run_traces(
            cfg,
            &workload.name,
            staggered_views(workload, cfg.smt.threads(), max_ops),
        )
    } else {
        run_traces(
            cfg,
            &workload.name,
            staggered_traces(workload, cfg.smt.threads(), max_ops),
        )
    }
}

/// Builds `threads` staggered thread streams as zero-copy views: **one**
/// trace synthesis, then per-thread `[skip, skip + max_ops)` windows by
/// range arithmetic on the shared buffer — no per-thread clone, no
/// O(skip) `drain`.
///
/// The synthesis cap is padded to the SMT8 depth (`max_ops + 7 * 997`)
/// regardless of `threads`, so a sweep over SMT modes at one op budget
/// reuses a single arena buffer instead of growing it once per mode; by
/// the prefix property the shallower views are unaffected.
///
/// Element-identical to [`staggered_traces`] (pinned by tests): with the
/// full trace `F` capped at or beyond the deepest needed cap, thread
/// `t`'s legacy trace is exactly `F[min(skip, e) .. e]` where
/// `e = min(skip + max_ops, |F_legacy|)`, whether the program runs to its
/// cap or halts early. (`|F_legacy|` is recovered as
/// `min(|F|, skip + max_ops)` since `F` extends at least that far.)
#[must_use]
pub fn staggered_views(workload: &Workload, threads: usize, max_ops: u64) -> Vec<TraceView> {
    if threads == 0 {
        return Vec::new();
    }
    let deepest = max_ops + (threads as u64 - 1).max(7) * 997;
    let full = workload.trace_view_or_panic(deepest);
    (0..threads)
        .map(|t| {
            let skip = t * 997;
            let end = full.len().min(skip + max_ops as usize);
            full.slice(skip.min(end)..end)
        })
        .collect()
}

/// Builds `threads` equal-length traces of one workload, thread `t`
/// starting `t * 997` dynamic instructions into the run.
///
/// A `Workload` is already synthesized (its generator seed is baked into
/// the program and memory image), so per-thread variation comes from
/// phase offsets rather than re-seeding: each thread replays the same
/// program from a different point, which is how rate-mode copies actually
/// interleave on hardware.
///
/// This is the legacy clone-and-drain path, kept as the `--no-trace-arena`
/// reference; the hot path is [`staggered_views`].
#[must_use]
pub fn staggered_traces(workload: &Workload, threads: usize, max_ops: u64) -> Vec<p10_isa::Trace> {
    (0..threads)
        .map(|t| {
            let skip = t as u64 * 997;
            let mut trace = workload.trace_or_panic(max_ops + skip);
            trace.ops.drain(..trace.ops.len().min(skip as usize));
            trace
        })
        .collect()
}

/// Runs one benchmark with per-thread seed variation (SMT threads run
/// *different* instances, like real rate-mode runs).
#[must_use]
pub fn run_benchmark(
    cfg: &CoreConfig,
    bench: &Benchmark,
    seed: u64,
    max_ops: u64,
) -> ScenarioResult {
    run_traces(cfg, &bench.name, benchmark_views(cfg, bench, seed, max_ops))
}

/// The per-thread trace views [`run_benchmark`] simulates: one workload
/// instance per SMT thread, seeds offset by thread index. Shared with the
/// sampled-execution path so exact and sampled runs of one point see the
/// same op streams.
#[must_use]
pub fn benchmark_views(
    cfg: &CoreConfig,
    bench: &Benchmark,
    seed: u64,
    max_ops: u64,
) -> Vec<TraceView> {
    (0..cfg.smt.threads())
        .map(|t| {
            bench
                .workload(seed + t as u64 * 101)
                .trace_view_or_panic(max_ops)
        })
        .collect()
}

/// Runs pre-built traces on the configuration and evaluates power.
///
/// Accepts owned [`p10_isa::Trace`]s or zero-copy [`TraceView`]s.
#[must_use]
pub fn run_traces<T: Into<TraceView>>(
    cfg: &CoreConfig,
    name: &str,
    traces: Vec<T>,
) -> ScenarioResult {
    let traces: Vec<TraceView> = traces.into_iter().map(Into::into).collect();
    let total_ops: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let sim = Core::new(cfg.clone()).run(traces, total_ops * 8 + 100_000);
    p10_obs::counter("sim.runs", 1);
    p10_obs::counter("sim.cycles", sim.activity.cycles);
    p10_obs::counter("sim.instructions", sim.activity.completed);
    let power = PowerModel::for_config(cfg).evaluate(&sim.activity);
    ScenarioResult {
        workload: name.to_owned(),
        config: cfg.name.clone(),
        sim,
        power,
    }
}

/// Results for a whole suite on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteResult {
    /// Configuration name.
    pub config: String,
    /// Per-benchmark results.
    pub results: Vec<ScenarioResult>,
}

impl SuiteResult {
    /// Geometric-mean IPC across the suite.
    #[must_use]
    pub fn geomean_ipc(&self) -> f64 {
        geomean(self.results.iter().map(ScenarioResult::ipc))
    }

    /// Arithmetic-mean core power across the suite.
    #[must_use]
    pub fn mean_core_power(&self) -> f64 {
        let n = self.results.len().max(1) as f64;
        self.results
            .iter()
            .map(ScenarioResult::core_power)
            .sum::<f64>()
            / n
    }

    /// Result for a named workload.
    #[must_use]
    pub fn result(&self, workload: &str) -> Option<&ScenarioResult> {
        self.results.iter().find(|r| r.workload == workload)
    }
}

/// Runs every benchmark of a suite on one configuration.
///
/// Routed through the [`crate::runner`] engine: benchmarks fan out across
/// the worker pool and already-simulated points come from the cache, with
/// results ordered exactly as the serial path would produce them.
#[must_use]
pub fn run_suite(cfg: &CoreConfig, suite: &[Benchmark], seed: u64, max_ops: u64) -> SuiteResult {
    crate::runner::run_suite_par(cfg, suite, seed, max_ops)
}

/// Suite-level comparison (new vs baseline) — the Table I quantities.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SuiteComparison {
    /// Geomean performance ratio (new / baseline).
    pub perf_ratio: f64,
    /// Mean core-power ratio (new / baseline).
    pub power_ratio: f64,
    /// Performance-per-watt ratio.
    pub efficiency_ratio: f64,
}

impl SuiteComparison {
    /// Compares `new` against `baseline` (per-benchmark ratio geomean for
    /// performance, mean-power ratio for power).
    ///
    /// # Panics
    ///
    /// Panics if the suites cover different benchmark sets — silently
    /// dropping unmatched benchmarks would make `perf_ratio` a geomean
    /// over a different set than `power_ratio`'s means (see
    /// [`SuiteComparison::try_between`] for the checked form).
    #[must_use]
    pub fn between(baseline: &SuiteResult, new: &SuiteResult) -> SuiteComparison {
        SuiteComparison::try_between(baseline, new).expect("suites must cover the same benchmarks")
    }

    /// Checked comparison: errors when the suites' benchmark sets differ,
    /// naming the unmatched benchmarks.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when a benchmark of `new`
    /// is missing from `baseline` or vice versa.
    pub fn try_between(
        baseline: &SuiteResult,
        new: &SuiteResult,
    ) -> Result<SuiteComparison, String> {
        let missing_from = |from: &SuiteResult, of: &SuiteResult| {
            of.results
                .iter()
                .filter(|r| from.result(&r.workload).is_none())
                .map(|r| r.workload.clone())
                .collect::<Vec<_>>()
        };
        let no_baseline = missing_from(baseline, new);
        let no_new = missing_from(new, baseline);
        if !no_baseline.is_empty() || !no_new.is_empty() {
            return Err(format!(
                "mismatched suites: missing from baseline {no_baseline:?}, missing from new {no_new:?}"
            ));
        }
        let perf_ratio = geomean(new.results.iter().filter_map(|r| {
            baseline
                .result(&r.workload)
                .map(|b| r.ipc() / b.ipc().max(1e-12))
        }));
        let power_ratio = new.mean_core_power() / baseline.mean_core_power().max(1e-12);
        Ok(SuiteComparison {
            perf_ratio,
            power_ratio,
            efficiency_ratio: perf_ratio / power_ratio.max(1e-12),
        })
    }
}

/// Geometric mean of an iterator of positive values (0 if empty).
#[must_use]
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Convenience: a POWER10 config in a given SMT mode.
#[must_use]
pub fn power10_smt(smt: SmtMode) -> CoreConfig {
    let mut c = CoreConfig::power10();
    c.smt = smt;
    c
}

/// Convenience: a POWER9 config in a given SMT mode.
#[must_use]
pub fn power9_smt(smt: SmtMode) -> CoreConfig {
    let mut c = CoreConfig::power9();
    c.smt = smt;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn scenario_produces_consistent_result() {
        let b = &specint_like()[8]; // exchangeish: small and fast
        let r = run_benchmark(&CoreConfig::power10(), b, 1, 20_000);
        assert_eq!(r.workload, "exchangeish");
        assert!(r.ipc() > 0.5);
        assert!(r.core_power() > 0.0);
        assert!(r.efficiency() > 0.0);
        assert_eq!(r.sim.activity.completed, 20_000);
    }

    #[test]
    fn smt4_runs_four_threads() {
        let b = &specint_like()[8];
        let cfg = power10_smt(SmtMode::Smt4);
        let r = run_benchmark(&cfg, b, 1, 5_000);
        assert_eq!(r.sim.threads, 4);
        assert_eq!(r.sim.activity.completed, 20_000);
    }

    #[test]
    fn smt_threads_see_divergent_traces() {
        let w = specint_like()[8].workload(1);
        let traces = staggered_traces(&w, 4, 2_000);
        assert_eq!(traces.len(), 4);
        for t in &traces {
            assert_eq!(t.ops.len(), 2_000);
        }
        let rendered: Vec<String> = traces
            .iter()
            .map(|t| serde_json::to_string(t).expect("json"))
            .collect();
        for i in 1..rendered.len() {
            assert_ne!(
                rendered[0], rendered[i],
                "thread {i} must not replay thread 0's exact trace"
            );
        }
        // Determinism still holds: rebuilding gives identical traces.
        let again = staggered_traces(&w, 4, 2_000);
        assert_eq!(serde_json::to_string(&again[3]).expect("json"), rendered[3]);
    }

    #[test]
    fn staggered_views_are_zero_copy_and_element_identical() {
        // A seed no other test uses, so this test owns the arena entry.
        let w = specint_like()[8].workload(424_242);
        // Views first: their padded synthesis is the deepest request, so
        // the legacy path's shallower `trace()` calls below are served
        // from the same buffer (the legacy path also reads through the
        // arena when it is enabled).
        let views = staggered_views(&w, 4, 2_000);
        let legacy = staggered_traces(&w, 4, 2_000);
        assert_eq!(views.len(), legacy.len());
        for (v, t) in views.iter().zip(legacy.iter()) {
            assert_eq!(v.ops(), &t.ops[..]);
        }
        // Zero-copy: every thread's view windows the same shared buffer.
        for v in &views[1..] {
            assert!(v.shares_storage(&views[0]));
        }
        // No per-thread op-buffer allocation: the four thread streams
        // cost exactly one synthesis, and repeating the call allocates
        // nothing new — the entry's synth count stays at one and the
        // views still alias the original storage.
        let key = w.content_hash();
        let (_, _, synths) = arena::global().entry_stats(key).expect("entry exists");
        assert_eq!(synths, 1, "4 threads x 2 calls must synthesize once");
        let again = staggered_views(&w, 4, 2_000);
        assert!(again[0].shares_storage(&views[0]));
        let (_, _, synths) = arena::global().entry_stats(key).expect("entry exists");
        assert_eq!(synths, 1);
    }

    #[test]
    fn sweep_synthesizes_each_trace_once_per_process() {
        // A figures-all-shaped sweep: every SMT mode of both cores over a
        // few benchmarks at one op budget. The stagger depth is padded to
        // the SMT8 horizon, so each workload's trace must be synthesized
        // exactly once for the whole sweep.
        let suite = specint_like();
        let seed = 776_001;
        for b in &suite[7..10] {
            for base in [CoreConfig::power9(), CoreConfig::power10()] {
                for smt in [SmtMode::St, SmtMode::Smt2, SmtMode::Smt4] {
                    let mut cfg = base.clone();
                    cfg.smt = smt;
                    let _ = run_benchmark(&cfg, b, seed, 3_000);
                }
            }
        }
        for b in &suite[7..10] {
            let w = b.workload(seed);
            let (_, _, synths) = arena::global()
                .entry_stats(w.content_hash())
                .expect("sweep populated the arena");
            assert_eq!(synths, 1, "{}: trace synthesized more than once", b.name);
        }
    }

    #[test]
    fn concurrent_runs_share_the_arena_and_stay_bit_identical() {
        let suite = specint_like();
        let b = &suite[8];
        let seed = 555_123;
        let cfg = CoreConfig::power10();
        let sequential = run_benchmark(&cfg, b, seed, 2_000);
        let reference = serde_json::to_string(&sequential).expect("json");
        let results: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| run_benchmark(&cfg, b, seed, 2_000)))
                .collect();
            handles
                .into_iter()
                .map(|h| serde_json::to_string(&h.join().expect("no panic")).expect("json"))
                .collect()
        });
        for r in &results {
            assert_eq!(*r, reference, "concurrent run diverged");
        }
        let w = b.workload(seed);
        let (_, _, synths) = arena::global()
            .entry_stats(w.content_hash())
            .expect("entry exists");
        assert_eq!(synths, 1, "concurrent equal-cap requests must dedup");
    }

    mod view_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// For random (seed, max_ops, threads), the zero-copy view
            /// stream is element-identical to the legacy clone+drain
            /// path, including the early-halt edge cases.
            #[test]
            fn views_match_clone_drain(
                seed in 0u64..64,
                max_ops in 1u64..4_000,
                threads in 1usize..5,
            ) {
                let w = specint_like()[8].workload(seed);
                let legacy = staggered_traces(&w, threads, max_ops);
                let views = staggered_views(&w, threads, max_ops);
                prop_assert_eq!(legacy.len(), views.len());
                for (t, v) in legacy.iter().zip(views.iter()) {
                    prop_assert_eq!(&t.ops[..], v.ops());
                }
            }
        }
    }

    #[test]
    fn mismatched_suites_are_rejected() {
        let suite = specint_like();
        let a = run_suite(&CoreConfig::power10(), &suite[8..9], 3, 5_000);
        let b = run_suite(&CoreConfig::power9(), &suite[7..9], 3, 5_000);
        let err = SuiteComparison::try_between(&a, &b).unwrap_err();
        assert!(err.contains("mismatched suites"), "{err}");
        assert!(err.contains(&suite[7].name), "{err}");
        // And both orientations are checked.
        assert!(SuiteComparison::try_between(&b, &a).is_err());
    }

    #[test]
    fn comparison_of_identical_suites_is_unity() {
        let suite = &specint_like()[8..9];
        let a = run_suite(&CoreConfig::power10(), suite, 3, 10_000);
        let cmp = SuiteComparison::between(&a, &a);
        assert!((cmp.perf_ratio - 1.0).abs() < 1e-9);
        assert!((cmp.power_ratio - 1.0).abs() < 1e-9);
        assert!((cmp.efficiency_ratio - 1.0).abs() < 1e-9);
    }
}
