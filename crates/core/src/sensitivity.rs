//! Design-choice sensitivity: each POWER10 efficiency mechanism toggled
//! *off* in isolation on the full POWER10 configuration, measuring what
//! it individually buys in performance and core power.
//!
//! This is the ablation view DESIGN.md calls out for the paper's §II-B
//! mechanisms: instruction fusion, EA-tagged L1 caches, store gathering,
//! the stream prefetcher, the long-history branch predictor, and the
//! unified register file's clock-gating discipline.

use crate::runner;
use crate::scenario::geomean;
use p10_uarch::CoreConfig;
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One toggleable design choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignChoice {
    /// Decode-time instruction fusion (>200 pair types).
    Fusion,
    /// Effective-address-tagged L1 caches (translate only on miss).
    EaTaggedL1,
    /// Store gathering in the store queue.
    StoreMerge,
    /// The hardware stream prefetcher.
    Prefetcher,
    /// The long-history (TAGE-like) direction predictor component.
    LongHistoryPredictor,
    /// Dual store-queue drain (2 entries/cycle to the caches).
    DualStoreDrain,
}

impl DesignChoice {
    /// All choices, in presentation order.
    pub const ALL: [DesignChoice; 6] = [
        DesignChoice::Fusion,
        DesignChoice::EaTaggedL1,
        DesignChoice::StoreMerge,
        DesignChoice::Prefetcher,
        DesignChoice::LongHistoryPredictor,
        DesignChoice::DualStoreDrain,
    ];

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DesignChoice::Fusion => "instruction fusion",
            DesignChoice::EaTaggedL1 => "EA-tagged L1",
            DesignChoice::StoreMerge => "store gathering",
            DesignChoice::Prefetcher => "stream prefetcher",
            DesignChoice::LongHistoryPredictor => "long-history predictor",
            DesignChoice::DualStoreDrain => "dual store drain",
        }
    }

    /// Returns POWER10 with this choice disabled.
    #[must_use]
    pub fn disabled_in(self, base: &CoreConfig) -> CoreConfig {
        let mut c = base.clone();
        c.name = format!("{}-no-{:?}", base.name, self);
        match self {
            DesignChoice::Fusion => c.fusion = false,
            DesignChoice::EaTaggedL1 => c.ea_tagged_l1 = false,
            DesignChoice::StoreMerge => c.store_merge = false,
            DesignChoice::Prefetcher => c.prefetch_streams = 0,
            DesignChoice::LongHistoryPredictor => c.branch.long_history_entries = 0,
            DesignChoice::DualStoreDrain => c.store_drain_per_cycle = 1,
        }
        c
    }
}

/// Measured effect of one design choice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// The choice.
    pub choice: DesignChoice,
    /// Label for display.
    pub label: String,
    /// Suite geomean performance loss when disabled (fraction; positive
    /// means the mechanism helps performance).
    pub perf_benefit: f64,
    /// Mean core-power increase when disabled (fraction; positive means
    /// the mechanism saves power).
    pub power_benefit: f64,
    /// Energy-efficiency benefit (perf benefit compounded with power).
    pub efficiency_benefit: f64,
}

/// Runs the sensitivity study over a suite.
#[must_use]
pub fn run_sensitivity(suite: &[Benchmark], seed: u64, ops: u64) -> Vec<SensitivityRow> {
    let base_cfg = CoreConfig::power10();
    let base = runner::run_suite_par(&base_cfg, suite, seed, ops).results;
    DesignChoice::ALL
        .iter()
        .map(|&choice| {
            let cfg = choice.disabled_in(&base_cfg);
            let disabled = runner::run_suite_par(&cfg, suite, seed, ops).results;
            let perf = geomean(
                base.iter()
                    .zip(disabled.iter())
                    .map(|(on, off)| on.ipc() / off.ipc().max(1e-12)),
            ) - 1.0;
            let p_on: f64 = base
                .iter()
                .map(super::scenario::ScenarioResult::core_power)
                .sum::<f64>();
            let p_off: f64 = disabled
                .iter()
                .map(super::scenario::ScenarioResult::core_power)
                .sum::<f64>();
            // Positive when the mechanism lowers power at iso work:
            // compare energy per instruction (power x cpi).
            let epi_on: f64 = base
                .iter()
                .map(|r| r.core_power() * r.sim.cpi())
                .sum::<f64>();
            let epi_off: f64 = disabled
                .iter()
                .map(|r| r.core_power() * r.sim.cpi())
                .sum::<f64>();
            let power_benefit = p_off / p_on.max(1e-12) - 1.0;
            let efficiency_benefit = epi_off / epi_on.max(1e-12) - 1.0;
            SensitivityRow {
                choice,
                label: choice.label().to_owned(),
                perf_benefit: perf,
                power_benefit,
                efficiency_benefit,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    #[test]
    fn each_mechanism_helps_energy_efficiency() {
        let suite = specint_like();
        // A representative slice keeps the test quick.
        let rows = run_sensitivity(&suite[..4], 42, 12_000);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.efficiency_benefit > -0.02,
                "{} must not hurt energy/instruction: {}",
                r.label,
                r.efficiency_benefit
            );
        }
        // Fusion and EA-tagging are the flagship mechanisms: both must
        // show clear benefit on at least one axis.
        let fusion = rows
            .iter()
            .find(|r| r.choice == DesignChoice::Fusion)
            .unwrap();
        assert!(fusion.perf_benefit > 0.0 || fusion.efficiency_benefit > 0.01);
        let ea = rows
            .iter()
            .find(|r| r.choice == DesignChoice::EaTaggedL1)
            .unwrap();
        assert!(
            ea.efficiency_benefit > 0.02,
            "EA tagging must save energy: {}",
            ea.efficiency_benefit
        );
    }

    #[test]
    fn disabled_configs_differ_from_base() {
        let base = CoreConfig::power10();
        for c in DesignChoice::ALL {
            let d = c.disabled_in(&base);
            assert_ne!(d, base, "{c:?} toggle must change the config");
        }
    }
}
