//! Counter-based power-model experiments: Figs. 11, 12, 15(a) and 15(b).
//!
//! Datasets are built from APEX-style windowed runs of the workload
//! suite: each extraction window contributes one sample of per-cycle
//! counter rates (features) and measured power (target, from the
//! component power model — the stand-in for Einspower reference data).

use crate::runner;
use p10_apex::{run_apex, ApexReport};
use p10_power::PowerModel;
use p10_powermodel::{fit, forward_select, input_sweep, Dataset, FitOptions, SweepPoint};
use p10_uarch::{Activity, CoreConfig};
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Per-cycle counter rates as a named feature vector.
#[must_use]
pub fn counter_features(act: &Activity) -> (Vec<String>, Vec<f64>) {
    let c = act.cycles.max(1) as f64;
    let mut names = Vec::new();
    let mut values = Vec::new();
    for (name, v) in act.as_pairs() {
        if name == "cycles" {
            continue;
        }
        names.push(name.to_owned());
        values.push(v as f64 / c);
    }
    (names, values)
}

/// What each sample's regression target is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// Active core power (total minus idle/leakage) — the Fig. 11/15
    /// quantity.
    ActivePower,
    /// Total power including the L2/L3 nest (the sum of all 39
    /// components — the bottom-up model's scope).
    TotalPower,
    /// Power of one component (index into the 39).
    Component(usize),
}

/// Builds a regression dataset from windowed runs of the given
/// benchmarks.
#[must_use]
pub fn build_dataset(
    cfg: &CoreConfig,
    benchmarks: &[Benchmark],
    seeds: &[u64],
    ops_per_run: u64,
    window_cycles: u64,
    target: Target,
) -> Dataset {
    build_datasets(
        cfg,
        benchmarks,
        seeds,
        ops_per_run,
        window_cycles,
        &[target],
    )
    .into_iter()
    .next()
    .expect("one dataset per target")
}

/// Builds one regression dataset per target from a single set of
/// windowed runs.
///
/// The Fig. 12 study needs 40 datasets (total power plus 39 components)
/// over the *same* windows; building them in one pass shares the window
/// simulation reports, the feature extraction, and the reference power
/// evaluation, and each dataset comes out bit-identical to a standalone
/// [`build_dataset`] call for its target.
#[must_use]
pub fn build_datasets(
    cfg: &CoreConfig,
    benchmarks: &[Benchmark],
    seeds: &[u64],
    ops_per_run: u64,
    window_cycles: u64,
    targets: &[Target],
) -> Vec<Dataset> {
    let model = PowerModel::for_config(cfg);
    let mut data: Vec<Option<Dataset>> = vec![None; targets.len()];
    let mut sample_idx = 0u64;
    // Fan the windowed runs out across the engine's worker pool; the
    // reports are cached per (config, benchmark, seed, ops, window), so
    // e.g. the Fig. 12 study's 40 per-target datasets share one set of
    // simulations. Jitter below stays sequential in (benchmark, seed)
    // order, so samples are bit-identical to the serial path.
    let points: Vec<(&Benchmark, u64)> = benchmarks
        .iter()
        .flat_map(|b| seeds.iter().map(move |&s| (b, s)))
        .collect();
    let reports: Vec<ApexReport> = runner::run_jobs_par(&points, |_, &(b, seed)| {
        runner::cached(
            &format!(
                "apex {} @ {} seed={seed} ops={ops_per_run} win={window_cycles}",
                b.name, cfg.name
            ),
            &format!(
                "apex|{}|{}|{seed}|{ops_per_run}|{window_cycles}",
                serde_json::to_string(cfg).expect("config serializes"),
                serde_json::to_string(b).expect("benchmark serializes"),
            ),
            || {
                let trace = b.workload(seed).trace_view_or_panic(ops_per_run);
                run_apex(cfg, vec![trace], window_cycles, ops_per_run * 40)
            },
        )
    });
    for report in &reports {
        for w in &report.windows {
            if w.activity.cycles < window_cycles / 2 {
                continue; // skip ragged tails
            }
            let (names, feats) = counter_features(&w.activity);
            let power = model.evaluate(&w.activity);
            // Physical-design variability the performance counters
            // cannot see (wire detours, data-dependent capacitance...).
            // Einspower reference data carries it; a counter model
            // cannot learn it — this sets the realistic error floor
            // of Figs. 11/12/15. Deterministic ±4%.
            sample_idx += 1;
            let h =
                (sample_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f64 / (1u64 << 24) as f64;
            let jitter = 1.0 + 0.08 * (h - 0.5);
            for (d, target) in data.iter_mut().zip(targets.iter()) {
                let d = d.get_or_insert_with(|| Dataset::new(names.clone()));
                let t = match *target {
                    Target::ActivePower => power.active(),
                    Target::TotalPower => power.total(),
                    Target::Component(i) => power.components[i].total(),
                };
                d.push(feats.clone(), t * jitter);
            }
        }
    }
    data.into_iter()
        .map(|d| d.unwrap_or_else(|| Dataset::new(Vec::new())))
        .collect()
}

/// One constraint-variant curve of Fig. 11.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Curve {
    /// Label ("with intercept", "non-negative", ...).
    pub label: String,
    /// Error-vs-inputs points.
    pub points: Vec<SweepPoint>,
}

/// Runs the Fig. 11 experiment: active-power model error versus number of
/// inputs for several modeling constraints.
#[must_use]
pub fn run_fig11(data: &Dataset, max_inputs: usize) -> Vec<Fig11Curve> {
    let variants: [(&str, FitOptions); 3] = [
        ("least-squares + intercept", FitOptions::default()),
        (
            "no intercept",
            FitOptions {
                intercept: false,
                ..FitOptions::default()
            },
        ),
        (
            "non-negative coefficients",
            FitOptions {
                nonnegative: true,
                ..FitOptions::default()
            },
        ),
    ];
    variants
        .iter()
        .map(|(label, opts)| Fig11Curve {
            label: (*label).to_owned(),
            points: input_sweep(data, max_inputs, *opts),
        })
        .collect()
}

/// The Fig. 12 result: top-down core model versus bottom-up 39-component
/// model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12 {
    /// Mean absolute difference between the two models' predictions (%
    /// of mean power; paper: 3.42%).
    pub mean_model_difference_pct: f64,
    /// Distinct counter events used by the bottom-up model (paper: 72).
    pub bottom_up_events: usize,
    /// Inputs used by the top-down model.
    pub top_down_events: usize,
    /// Held-out error of the top-down model (%).
    pub top_down_error_pct: f64,
    /// Held-out error of the bottom-up total (%).
    pub bottom_up_error_pct: f64,
}

/// Runs the Fig. 12 experiment on pre-built datasets: `total` targets
/// core power; `components[i]` targets component `i`'s power. All must
/// share the same rows/features.
///
/// # Panics
///
/// Panics if the datasets disagree on sample counts.
#[must_use]
pub fn run_fig12(
    total: &Dataset,
    components: &[Dataset],
    top_down_inputs: usize,
    per_component_inputs: usize,
) -> Fig12 {
    let (train, test) = total.split_every(5);
    let td_order = forward_select(total, top_down_inputs, FitOptions::default());
    let td = fit(&train, &td_order, FitOptions::default()).expect("top-down fit");

    // Bottom-up: a small model per component; total = sum of predictions.
    let mut used_events = std::collections::BTreeSet::new();
    let mut models = Vec::new();
    for comp in components {
        assert_eq!(comp.len(), total.len(), "datasets must align");
        // Stabilized per-component fit: heavier ridge, and fall back to an
        // intercept-only model when a component's few-input fit
        // extrapolates badly (e.g. power-gated or near-constant
        // components).
        let opts = FitOptions {
            ridge: 1e-4,
            ..FitOptions::default()
        };
        let order = forward_select(comp, per_component_inputs, opts);
        let (ctrain, ctest) = comp.split_every(5);
        let full = fit(&ctrain, &order, opts).expect("component fit");
        let fallback = fit(&ctrain, &[], opts).expect("intercept fit");
        let chosen = if full.mean_abs_pct_error(&ctest) <= fallback.mean_abs_pct_error(&ctest) {
            for &f in &order {
                used_events.insert(f);
            }
            full
        } else {
            fallback
        };
        models.push(chosen);
    }

    let scale = test.target_mean().abs().max(1e-12);
    let mut diff_sum = 0.0;
    let mut bu_err = 0.0;
    let mut td_err = 0.0;
    for (row, &t) in test.rows.iter().zip(test.targets.iter()) {
        let td_pred = td.predict(row);
        let bu_pred: f64 = models.iter().map(|m| m.predict(row)).sum();
        diff_sum += (td_pred - bu_pred).abs();
        bu_err += (bu_pred - t).abs();
        td_err += (td_pred - t).abs();
    }
    let n = test.len().max(1) as f64;
    Fig12 {
        mean_model_difference_pct: diff_sum / n / scale * 100.0,
        bottom_up_events: used_events.len(),
        top_down_events: td_order.len(),
        top_down_error_pct: td_err / n / scale * 100.0,
        bottom_up_error_pct: bu_err / n / scale * 100.0,
    }
}

/// Expands raw counter features with squares and pairwise products — the
/// larger candidate pool (~hundreds of signals) that the power-proxy
/// selection searches, standing in for the paper's ~500 analyzed debug
/// counters.
#[must_use]
pub fn expand_candidates(data: &Dataset, top_products: usize) -> Dataset {
    let mut names = data.feature_names.clone();
    let base_width = names.len();
    for n in &data.feature_names {
        names.push(format!("{n}^2"));
    }
    // Rank features by mean magnitude for the product set.
    let mut mean_mag: Vec<(usize, f64)> = (0..base_width)
        .map(|i| {
            (
                i,
                data.rows.iter().map(|r| r[i].abs()).sum::<f64>() / data.len().max(1) as f64,
            )
        })
        .collect();
    mean_mag.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let top: Vec<usize> = mean_mag
        .iter()
        .take(top_products)
        .map(|&(i, _)| i)
        .collect();
    for (ai, &a) in top.iter().enumerate() {
        for &b in &top[ai + 1..] {
            names.push(format!(
                "{}*{}",
                data.feature_names[a], data.feature_names[b]
            ));
        }
    }
    let mut out = Dataset::new(names);
    for (row, &t) in data.rows.iter().zip(data.targets.iter()) {
        let mut r = row.clone();
        for v in &row[..base_width] {
            r.push(v * v);
        }
        for (ai, &a) in top.iter().enumerate() {
            for &b in &top[ai + 1..] {
                r.push(row[a] * row[b]);
            }
        }
        out.push(r, t);
    }
    out
}

/// The Fig. 15(a) result: hardware power-proxy accuracy versus number of
/// implemented counters (non-negative weights, no intercept — an adder
/// tree of gated counts).
#[must_use]
pub fn run_fig15a(data: &Dataset, max_counters: usize) -> Vec<SweepPoint> {
    let candidates = expand_candidates(data, 12);
    let opts = FitOptions {
        intercept: false,
        nonnegative: true,
        ..FitOptions::default()
    };
    input_sweep(&candidates, max_counters, opts)
}

/// One point of Fig. 15(b): proxy prediction error at a time granularity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GranularityPoint {
    /// Prediction interval in cycles.
    pub window_cycles: u64,
    /// Mean absolute error (% of mean power).
    pub error_pct: f64,
}

/// Runs the Fig. 15(b) experiment: a proxy trained at coarse granularity
/// predicts power over progressively finer windows. The "true" power
/// series carries electrical/thermal integration across windows (an IIR
/// with the given `carryover`), which fine-grained counter snapshots
/// cannot see — error grows as the window shrinks.
#[must_use]
pub fn run_fig15b(
    cfg: &CoreConfig,
    bench: &Benchmark,
    ops: u64,
    windows: &[u64],
    proxy_inputs: usize,
    carryover: f64,
) -> Vec<GranularityPoint> {
    let model = PowerModel::for_config(cfg);
    let fine = windows.iter().copied().min().unwrap_or(10).max(2);
    let trace = bench.workload(3).trace_view_or_panic(ops);
    let report = run_apex(cfg, vec![trace], fine, ops * 40);

    // Fine-grained instantaneous power and the integrated "true" series.
    let inst: Vec<f64> = report
        .windows
        .iter()
        .map(|w| model.evaluate(&w.activity).core_total())
        .collect();
    let mut true_fine = Vec::with_capacity(inst.len());
    let mut prev = inst.first().copied().unwrap_or(0.0);
    for &p in &inst {
        let v = (1.0 - carryover) * p + carryover * prev;
        true_fine.push(v);
        prev = v;
    }

    // Train the proxy at the coarsest granularity.
    let coarsest = windows.iter().copied().max().unwrap_or(512);
    let per = (coarsest / fine).max(1) as usize;
    let mut train = None;
    for chunk_idx in 0..(report.windows.len() / per) {
        let lo = chunk_idx * per;
        let agg = report.windows[lo..lo + per]
            .iter()
            .fold(Activity::default(), |a, w| a.sum(&w.activity));
        let tgt = true_fine[lo..lo + per].iter().sum::<f64>() / per as f64;
        let (names, feats) = counter_features(&agg);
        let d = train.get_or_insert_with(|| Dataset::new(names));
        d.push(feats, tgt);
    }
    let train = train.expect("run long enough for coarse windows");
    let order = forward_select(&train, proxy_inputs, FitOptions::default());
    let proxy = fit(&train, &order, FitOptions::default()).expect("proxy fit");

    // Evaluate at every granularity.
    let mean_power = true_fine.iter().sum::<f64>() / true_fine.len().max(1) as f64;
    windows
        .iter()
        .map(|&w| {
            let per = (w / fine).max(1) as usize;
            let mut err = 0.0;
            let mut n = 0usize;
            for chunk_idx in 0..(report.windows.len() / per) {
                let lo = chunk_idx * per;
                let agg = report.windows[lo..lo + per]
                    .iter()
                    .fold(Activity::default(), |a, x| a.sum(&x.activity));
                let tgt = true_fine[lo..lo + per].iter().sum::<f64>() / per as f64;
                let (_, feats) = counter_features(&agg);
                err += (proxy.predict(&feats) - tgt).abs();
                n += 1;
            }
            GranularityPoint {
                window_cycles: w,
                error_pct: err / n.max(1) as f64 / mean_power.max(1e-12) * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    fn small_dataset(target: Target) -> Dataset {
        let suite = specint_like();
        build_dataset(
            &CoreConfig::power10(),
            &suite[7..10],
            &[1, 2],
            12_000,
            512,
            target,
        )
    }

    #[test]
    fn dataset_has_samples_and_features() {
        let d = small_dataset(Target::ActivePower);
        assert!(d.len() > 20, "got {} samples", d.len());
        assert!(d.width() > 30);
        assert!(d.target_mean() > 0.0);
    }

    #[test]
    fn fig11_error_decreases_with_inputs() {
        let d = small_dataset(Target::ActivePower);
        let curves = run_fig11(&d, 8);
        assert_eq!(curves.len(), 3);
        let base = &curves[0].points;
        assert!(base.len() >= 4);
        let first = base.first().unwrap().test_error_pct;
        let last = base.last().unwrap().test_error_pct;
        assert!(
            last < first,
            "error must fall with more inputs: {first} -> {last}"
        );
        // With several inputs the model is quite accurate (paper: <2.5%
        // at maximal inputs; shape gate here).
        assert!(last < 12.0, "final error {last}");
    }

    #[test]
    fn fig15a_proxy_reaches_usable_accuracy() {
        let d = small_dataset(Target::ActivePower);
        let sweep = run_fig15a(&d, 16);
        assert!(!sweep.is_empty());
        let best = sweep.last().unwrap();
        assert!(
            best.test_error_pct < 15.0,
            "16-counter proxy error {}",
            best.test_error_pct
        );
        // All-hardware constraints respected.
        assert_eq!(best.model.intercept, 0.0);
        assert!(best.model.coefficients.iter().all(|&c| c >= -1e-12));
    }

    #[test]
    fn fig15b_error_grows_at_fine_granularity() {
        let suite = specint_like();
        let pts = run_fig15b(
            &CoreConfig::power10(),
            &suite[8],
            20_000,
            &[8, 32, 128, 512],
            6,
            0.35,
        );
        assert_eq!(pts.len(), 4);
        let fine = pts[0].error_pct;
        let coarse = pts[3].error_pct;
        assert!(
            fine > coarse * 1.5,
            "fine-grained error {fine} must exceed coarse {coarse}"
        );
    }
}
