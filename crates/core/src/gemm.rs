//! The Fig. 5 experiment: DGEMM flops/cycle and core power, POWER10
//! (VSU and MMA code) relative to the POWER9 VSU baseline.
//!
//! Paper numbers at the same point: P10 VSU = 1.95× flops/cycle at −32.2%
//! core power; P10 MMA = 5.47× flops/cycle at −24.1% core power; P10
//! achieves 9.94 DP flops/cycle with VSU code (62.1% of its 16/cycle
//! peak) and 27.9 with MMA code (87.1% of 32/cycle).

use crate::scenario::{run_traces, ScenarioResult};
use p10_kernels::gemm::{dgemm_mma, dgemm_vsu};
use p10_uarch::CoreConfig;
use serde::{Deserialize, Serialize};

/// One bar-pair of Fig. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GemmPoint {
    /// Label (e.g. `"P10 MMA"`).
    pub label: String,
    /// Double-precision flops per cycle.
    pub flops_per_cycle: f64,
    /// Fraction of the machine's theoretical peak.
    pub peak_utilization: f64,
    /// Core power (relative units).
    pub core_power: f64,
}

/// The full Fig. 5 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// POWER9 running the VSU kernel (the baseline).
    pub p9_vsu: GemmPoint,
    /// POWER10 running the same VSU kernel.
    pub p10_vsu: GemmPoint,
    /// POWER10 running the MMA kernel.
    pub p10_mma: GemmPoint,
}

impl Fig5 {
    /// P10-VSU flops/cycle relative to P9-VSU (paper: 1.95×).
    #[must_use]
    pub fn vsu_speedup(&self) -> f64 {
        self.p10_vsu.flops_per_cycle / self.p9_vsu.flops_per_cycle
    }

    /// P10-MMA flops/cycle relative to P9-VSU (paper: 5.47×).
    #[must_use]
    pub fn mma_speedup(&self) -> f64 {
        self.p10_mma.flops_per_cycle / self.p9_vsu.flops_per_cycle
    }

    /// P10-VSU core-power change relative to P9-VSU (paper: −32.2%).
    #[must_use]
    pub fn vsu_power_delta(&self) -> f64 {
        self.p10_vsu.core_power / self.p9_vsu.core_power - 1.0
    }

    /// P10-MMA core-power change relative to P9-VSU (paper: −24.1%).
    #[must_use]
    pub fn mma_power_delta(&self) -> f64 {
        self.p10_mma.core_power / self.p9_vsu.core_power - 1.0
    }
}

fn measure(cfg: &CoreConfig, kernel: &p10_workloads::Workload, ops: u64, peak: f64) -> GemmPoint {
    let trace = kernel.trace_view_or_panic(ops);
    let r: ScenarioResult = run_traces(cfg, &kernel.name, vec![trace]);
    let fpc = r.sim.activity.flops_per_cycle();
    GemmPoint {
        label: format!("{} {}", cfg.name, kernel.name),
        flops_per_cycle: fpc,
        peak_utilization: if peak > 0.0 { fpc / peak } else { 0.0 },
        core_power: r.core_power(),
    }
}

/// Runs the Fig. 5 experiment. `ops` is the per-point dynamic-instruction
/// budget (the paper averages 5K-cycle windows; 60K+ ops gives several
/// windows' worth).
#[must_use]
pub fn run_fig5(ops: u64) -> Fig5 {
    let p9 = CoreConfig::power9();
    let p10 = CoreConfig::power10();
    let vsu = dgemm_vsu(1 << 40);
    let mma = dgemm_mma(1 << 40);
    Fig5 {
        p9_vsu: measure(&p9, &vsu, ops, f64::from(p9.vsx_peak_dp_flops())),
        p10_vsu: measure(&p10, &vsu, ops, f64::from(p10.vsx_peak_dp_flops())),
        p10_mma: measure(&p10, &mma, ops, f64::from(p10.mma_peak_dp_flops())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let f = run_fig5(40_000);
        // P10 VSU beats P9 VSU substantially (paper 1.95x).
        assert!(
            f.vsu_speedup() > 1.5 && f.vsu_speedup() < 2.5,
            "VSU speedup {}",
            f.vsu_speedup()
        );
        // MMA code multiplies that again (paper 5.47x).
        assert!(f.mma_speedup() > 3.5, "MMA speedup {}", f.mma_speedup());
        // Both P10 points burn less core power than P9 (paper -32%/-24%).
        assert!(
            f.vsu_power_delta() < 0.0,
            "VSU dpower {}",
            f.vsu_power_delta()
        );
        assert!(
            f.mma_power_delta() < 0.0,
            "MMA dpower {}",
            f.mma_power_delta()
        );
        // Utilizations in plausible bands (paper 62.1% and 87.1%).
        assert!(f.p10_vsu.peak_utilization > 0.4 && f.p10_vsu.peak_utilization <= 1.0);
        assert!(f.p10_mma.peak_utilization > 0.6 && f.p10_mma.peak_utilization <= 1.0);
    }
}
