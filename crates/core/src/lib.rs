//! # p10-core
//!
//! The top-level library of the `p10sim` reproduction: scenario presets,
//! suite runners, and the experiment drivers that regenerate every table
//! and figure of the ISCA 2021 POWER10 paper.
//!
//! * [`scenario`] — run a workload (or the whole suite) on a configured
//!   core, producing joint performance + power results.
//! * [`ablation`] — the Fig. 4 study: per-design-change performance gains.
//! * [`inference`] — the Fig. 6 study: ResNet-50 / BERT-Large end-to-end
//!   inference on POWER9, POWER10−MMA, POWER10+MMA.
//! * [`gemm`] — the Fig. 5 study: DGEMM flops/cycle and core power.
//! * [`socket`] — socket-level scaling (cores per socket, system factors)
//!   for the 10×/21× AI claims and Table I.
//! * [`flush`] — the wasted-instruction (flush-reduction) study.
//! * [`runner`] — the parallel experiment engine and result cache every
//!   driver runs on.
//! * [`sampling`] — SimPoint-weighted sampled execution with error
//!   bounds and a learned fast-forward (opt-in via `--sampling`).
//! * [`cycleprof`] — the `figures profile` experiment: per-workload
//!   cycle-attribution tables from the pipeline's always-on counters.
//!
//! ## Quickstart
//!
//! ```no_run
//! use p10_core::scenario::{run_suite, SuiteComparison};
//! use p10_uarch::CoreConfig;
//! use p10_workloads::specint_like;
//!
//! let suite = specint_like();
//! let p9 = run_suite(&CoreConfig::power9(), &suite, 42, 120_000);
//! let p10 = run_suite(&CoreConfig::power10(), &suite, 42, 120_000);
//! let cmp = SuiteComparison::between(&p9, &p10);
//! println!(
//!     "perf {:.2}x power {:.2}x efficiency {:.2}x",
//!     cmp.perf_ratio, cmp.power_ratio, cmp.efficiency_ratio
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cycleprof;
pub mod flush;
pub mod gemm;
pub mod inference;
pub mod powerstudies;
pub mod rasstudy;
pub mod runner;
pub mod sampling;
pub mod scenario;
pub mod sensitivity;
pub mod smtscale;
pub mod socket;
pub mod table1;
pub mod tracestudy;
pub mod tracking;
