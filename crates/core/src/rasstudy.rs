//! The SERMiner derating studies: Fig. 13 (per-testcase derating) and
//! Fig. 14 (POWER9 vs POWER10 derating versus VT).

use p10_rtlsim::{run_detailed, Roi, RtlReport, ToggleDensity};
use p10_serminer::{derating_curve, derating_row, DeratingCurve, DeratingRow};
use p10_uarch::CoreConfig;
use p10_workloads::microbench::{derating_grid, generate, DataInit, MicrobenchSpec};
use p10_workloads::{arena, chopstix, specint_like};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

fn detailed<T: Into<p10_isa::TraceView>>(
    cfg: &CoreConfig,
    traces: Vec<T>,
    init: DataInit,
) -> RtlReport {
    let toggle = match init {
        DataInit::Zero => ToggleDensity::zero_init(),
        DataInit::Random => ToggleDensity::random_init(),
    };
    let mut cfg = cfg.clone();
    cfg.smt = match traces.len() {
        1 => p10_uarch::SmtMode::St,
        2 => p10_uarch::SmtMode::Smt2,
        _ => p10_uarch::SmtMode::Smt4,
    };
    run_detailed(&cfg, traces, Roi::new(500, 2_000_000), toggle)
}

/// A detailed run of one grid testcase, memoized process-wide.
///
/// Fig. 13 on POWER10 and the Fig. 14 POWER10 pass run the same leading
/// grid specs at the same op budget; since [`generate`] and the detailed
/// simulator are both deterministic, the report is fully determined by
/// `(config, spec, ops)` and can be shared. Disabled together with the
/// trace arena so `--no-trace-arena` exercises the legacy path.
fn grid_detailed(cfg: &CoreConfig, spec: &MicrobenchSpec, ops: u64) -> Arc<RtlReport> {
    let run = || {
        let traces: Vec<p10_isa::TraceView> = (0..spec.smt)
            .map(|t| generate(spec, 13 + u64::from(t)).trace_view_or_panic(ops))
            .collect();
        detailed(cfg, traces, spec.init)
    };
    if !arena::enabled() {
        return Arc::new(run());
    }
    static MEMO: OnceLock<Mutex<HashMap<u64, Arc<RtlReport>>>> = OnceLock::new();
    let key = {
        use std::hash::{Hash, Hasher};
        let mut h = p10_isa::Fnv1aHasher::new();
        serde_json::to_string(cfg)
            .expect("config json")
            .hash(&mut h);
        spec.hash(&mut h);
        ops.hash(&mut h);
        h.finish()
    };
    let mut map = MEMO
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("detailed memo poisoned");
    if let Some(r) = map.get(&key) {
        p10_obs::counter("trace.arena.detailed_hits", 1);
        return Arc::clone(r);
    }
    p10_obs::counter("trace.arena.detailed_misses", 1);
    let r = Arc::new(run());
    map.insert(key, Arc::clone(&r));
    r
}

/// The Fig. 13 dataset: derating per testcase (the Microprobe-style grid
/// plus SPEC proxy workloads).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// Per-testcase rows, microbenchmarks first, then SPEC proxies.
    pub rows: Vec<DeratingRow>,
}

/// Runs Fig. 13 on a configuration.
#[must_use]
pub fn run_fig13(cfg: &CoreConfig, ops: u64, spec_benches: usize) -> Fig13 {
    let mut rows = Vec::new();
    // Microprobe-style grid. The ST/SMT labels describe the original
    // testcase family; the kernels run on the configured core.
    for spec in derating_grid() {
        let r = grid_detailed(cfg, &spec, ops);
        rows.push(derating_row(&spec.name(), &r));
    }
    // SPEC proxy workloads (top hot-function proxies of a few suite
    // members; random data).
    for b in specint_like().into_iter().take(spec_benches) {
        let w = b.workload(29);
        let set = chopstix::extract(&w, ops.min(40_000), 3);
        if let Some(p) = set.proxies.first() {
            let r = detailed(cfg, vec![p.trace(ops)], DataInit::Random);
            rows.push(derating_row(&format!("{}_spec", b.name), &r));
        }
    }
    Fig13 { rows }
}

/// The Fig. 14 dataset: derating-vs-VT curves for POWER9 and POWER10,
/// merged across the same workload set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14 {
    /// POWER9 curve.
    pub p9: DeratingCurve,
    /// POWER10 curve.
    pub p10: DeratingCurve,
}

impl Fig14 {
    /// Runtime-derating difference (P10 − P9) at a VT.
    #[must_use]
    pub fn runtime_gap_at(&self, vt: f64) -> f64 {
        let find = |c: &DeratingCurve| {
            c.runtime_by_vt
                .iter()
                .find(|(v, _)| (v - vt).abs() < 1e-9)
                .map_or(0.0, |&(_, d)| d)
        };
        find(&self.p10) - find(&self.p9)
    }
}

/// Runs Fig. 14 across the derating grid workloads.
#[must_use]
pub fn run_fig14(ops: u64, vts: &[f64]) -> Fig14 {
    let mut curves = Vec::new();
    for cfg in [CoreConfig::power9(), CoreConfig::power10()] {
        let mut reports = Vec::new();
        for spec in derating_grid().into_iter().take(6) {
            reports.push(grid_detailed(&cfg, &spec, ops));
        }
        let refs: Vec<&RtlReport> = reports.iter().map(Arc::as_ref).collect();
        curves.push(derating_curve(&cfg.name, &refs, vts));
    }
    let p10 = curves.pop().expect("two curves");
    let p9 = curves.pop().expect("two curves");
    Fig14 { p9, p10 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_rows_cover_grid_and_spec() {
        let f = run_fig13(&CoreConfig::power10(), 6_000, 1);
        assert_eq!(f.rows.len(), 12 + 1);
        for r in &f.rows {
            assert!(r.static_pct >= 0.0 && r.static_pct <= 100.0);
            // More aggressive VT classifies more latches vulnerable, so
            // runtime derating shrinks as VT rises.
            assert!(r.runtime_vt10 >= r.runtime_vt50);
            assert!(r.runtime_vt50 >= r.runtime_vt90);
        }
    }

    #[test]
    fn fig14_p10_runtime_derating_exceeds_p9() {
        let f = run_fig14(6_000, &[0.1, 0.5, 0.9]);
        for vt in [0.1, 0.5, 0.9] {
            assert!(
                f.runtime_gap_at(vt) > 0.0,
                "P10 runtime derating must exceed P9 at VT={vt}"
            );
        }
    }
}
