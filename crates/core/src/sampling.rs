//! Sampled simulation: SimPoint-weighted execution with error bounds and
//! a learned fast-forward.
//!
//! Exact simulation replays every dynamic op through the cycle model. For
//! long traces most of that work is redundant — program phases repeat —
//! so this module partitions each thread's [`TraceView`] into fixed-size
//! intervals (free range arithmetic on the shared trace arena), clusters
//! the intervals' basic-block vectors with deterministic k-means
//! ([`p10_trace::simpoint`]), simulates only one representative interval
//! per cluster, and reconstitutes whole-trace activity, cycle
//! attribution, and power as cluster-weight sums.
//!
//! Four mechanisms keep the representative measurements honest:
//!
//! * **Functional warming** ([`p10_uarch::FunctionalWarmer`]): every op
//!   — simulated or skipped — is replayed timing-free through the
//!   caches, TLBs, and branch predictor, and each detailed run starts
//!   from the [`WarmState`] snapshot at its interval boundary
//!   ([`Core::with_state`]); cache state warms over far more ops than
//!   any affordable detailed warmup prefix could cover.
//! * A short **detailed warmup prefix** per representative, delta'd out
//!   checkpoint-free (pipeline-local transients the functional warmer
//!   cannot see).
//! * **Cold-prefix detailing**: the leading intervals are measured
//!   outright until consecutive CPIs agree within [`COLD_TOL_REL`] —
//!   the cold-start transient executes steady-state code and so has no
//!   BBV signature.
//! * **Miss-augmented BBVs**: each interval's functionally-warmed
//!   L1D/L2/L3 per-op miss rates (× [`MISS_FEATURE_WEIGHT`]) extend its
//!   BBV, so transient and steady intervals of the same code cluster
//!   apart.
//!
//! Every sampled estimate carries a **statistical error bound**: the
//! spread of each cluster (BBV distance of members to their
//! representative, zero for members measured directly) is converted to
//! a CPI/power deviation through the observed sensitivity between
//! representatives, combined across clusters as independent terms,
//! floored by a fixed model-error allowance, plus a boundary-residue
//! term [`BOUNDARY_RESIDUE_CYCLES`]` / (interval_ops · CPI)` for the
//! per-measurement granularity error. Differential tests assert the
//! measured error against exact simulation stays inside the printed
//! bound.
//!
//! [`SamplingMode::Learned`] goes one step further (in the spirit of
//! learned fast-forwarding): the simulated representatives become a
//! training set for linear counter→CPI and counter→power predictors
//! (Gram-cached forward selection from `p10-powermodel`), skipped
//! intervals are *predicted* from cheap functional-trace features instead
//! of inheriting their representative's numbers verbatim, and the
//! reported bound incorporates the leave-one-out cross-validated error.
//!
//! Exact mode remains the byte-identical reference: the engine only
//! routes through this module when a non-exact mode is active, so
//! `figures all` output without `--sampling` is unchanged.

use crate::scenario::{self, ScenarioResult};
use p10_isa::{OpClass, TraceView};
use p10_power::PowerModel;
use p10_powermodel::{forward_select_loo, Dataset, FitOptions};
use p10_trace::simpoint::{simpoints_weighted, WeightedSimpoints};
use p10_uarch::{
    Activity, Core, CoreConfig, CycleAttribution, FunctionalWarmer, SimResult, WarmState,
};
use p10_workloads::{Benchmark, Workload};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::OnceLock;

/// BBV code-region buckets (matches the tracestudy granularity).
const BBV_BUCKETS: usize = 64;
/// Clustering seed: fixed so sampled points are content-addressable.
const KMEANS_SEED: u64 = 11;
/// Two-sided ~95% normal quantile for the cluster-spread bound term.
const Z_95: f64 = 1.96;
/// Fixed relative-error allowance added to every bound: covers warmup
/// residue, reconstitution rounding, and sensitivity-model error that the
/// cluster-spread term cannot see. Calibrated against the differential
/// grid in `tests/sampling_diff.rs`.
const BOUND_FLOOR_REL: f64 = 0.08;
/// Safety factor on the learned mode's cross-validated error term.
const CV_SAFETY: f64 = 1.5;
/// Weight on the functional miss-rate features appended to each BBV:
/// chosen so a cold-vs-warm miss-rate gap (tenths of a miss per op)
/// separates intervals about as strongly as a real code-phase change.
const MISS_FEATURE_WEIGHT: f64 = 4.0;
/// Cold-start escape: the leading intervals are simulated in detail until
/// two consecutive measurements agree within this relative CPI change —
/// the cold-start transient (caches filling for the first time) has no
/// BBV signature, so clustering alone cannot see it.
const COLD_TOL_REL: f64 = 0.25;
/// Residual cycles a per-interval measurement can be off by regardless of
/// interval content: the gap between functionally-warmed and true
/// detailed state at the interval boundary (prefetch timing, in-flight
/// misses). Measured empirically against exact prefix differences; enters
/// the bound as `RESIDUE / (interval_ops · CPI)`, so short low-CPI
/// intervals honestly report large uncertainty while long intervals
/// (where the residue amortizes) stay tight.
const BOUNDARY_RESIDUE_CYCLES: f64 = 200.0;

/// How the engine should execute simulation points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMode {
    /// Simulate every op — the byte-identical reference path.
    Exact,
    /// Simulate one representative interval per BBV cluster and
    /// reconstitute whole-trace results as cluster-weight sums.
    SimPoints {
        /// Ops per interval (per thread).
        interval_ops: usize,
        /// Maximum clusters (k-means k).
        k: usize,
        /// Architectural warmup ops simulated before each representative
        /// and delta'd out of its counters (0 = cold).
        warmup_ops: usize,
    },
    /// SimPoints plus a learned fast-forward: linear predictors fitted on
    /// the simulated representatives estimate each *skipped* interval's
    /// CPI and power from functional-trace features.
    Learned {
        /// Ops per interval (per thread).
        interval_ops: usize,
        /// Maximum clusters (training-set size).
        k: usize,
        /// Maximum features forward selection may use.
        max_features: usize,
    },
}

impl SamplingMode {
    /// Parses a `--sampling` argument:
    /// `exact` | `simpoints:INTERVAL:K[:WARMUP]` | `learned:INTERVAL:K[:FEATURES]`.
    /// Warmup defaults to `INTERVAL / 8`, features to 4.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the accepted grammar when the text
    /// does not parse or a field is zero.
    pub fn parse(text: &str) -> Result<SamplingMode, String> {
        let err = || {
            format!(
                "bad sampling mode '{text}': expected exact | \
                 simpoints:INTERVAL:K[:WARMUP] | learned:INTERVAL:K[:FEATURES]"
            )
        };
        let mut parts = text.split(':');
        let head = parts.next().ok_or_else(err)?;
        let fields: Vec<&str> = parts.collect();
        let num = |s: &str| s.parse::<usize>().ok().filter(|&v| v > 0);
        match (head, fields.len()) {
            ("exact", 0) => Ok(SamplingMode::Exact),
            ("simpoints", 2 | 3) => {
                let interval_ops = num(fields[0]).ok_or_else(err)?;
                let k = num(fields[1]).ok_or_else(err)?;
                let warmup_ops = match fields.get(2) {
                    // Warmup 0 is a legitimate request (cold intervals).
                    Some(s) => s.parse::<usize>().map_err(|_| err())?,
                    None => interval_ops / 8,
                };
                Ok(SamplingMode::SimPoints {
                    interval_ops,
                    k,
                    warmup_ops,
                })
            }
            ("learned", 2 | 3) => Ok(SamplingMode::Learned {
                interval_ops: num(fields[0]).ok_or_else(err)?,
                k: num(fields[1]).ok_or_else(err)?,
                max_features: match fields.get(2) {
                    Some(s) => num(s).ok_or_else(err)?,
                    None => 4,
                },
            }),
            _ => Err(err()),
        }
    }

    /// Canonical text form; round-trips through [`SamplingMode::parse`]
    /// and keys the result cache (a different mode is a different point).
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            SamplingMode::Exact => "exact".to_owned(),
            SamplingMode::SimPoints {
                interval_ops,
                k,
                warmup_ops,
            } => format!("simpoints:{interval_ops}:{k}:{warmup_ops}"),
            SamplingMode::Learned {
                interval_ops,
                k,
                max_features,
            } => format!("learned:{interval_ops}:{k}:{max_features}"),
        }
    }

    /// Whether this mode is the exact reference path.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        *self == SamplingMode::Exact
    }
}

static MODE: OnceLock<SamplingMode> = OnceLock::new();

/// Installs the process-wide sampling mode (first caller wins; the
/// `figures` CLI calls this once before any experiment runs). Returns
/// `false` if a mode was already installed.
pub fn set_mode(mode: SamplingMode) -> bool {
    MODE.set(mode).is_ok()
}

/// The process-wide mode if a *non-exact* one is installed. The engine
/// consults this at its single dispatch point; tests and the `sampling`
/// experiment pass modes explicitly instead, so the global stays a pure
/// CLI concern.
#[must_use]
pub fn active() -> Option<SamplingMode> {
    MODE.get().copied().filter(|m| !m.is_exact())
}

/// What sampled execution measured and how much it claims to be worth.
///
/// All fields are plain numbers (no `Option`) so the struct serializes
/// stably into the on-disk result cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingStats {
    /// The mode text ([`SamplingMode::describe`]).
    pub mode: String,
    /// Intervals the trace was partitioned into.
    pub intervals: u64,
    /// Clusters actually formed (≤ k).
    pub clusters: u64,
    /// Dynamic ops across all threads.
    pub total_ops: u64,
    /// Ops whose timing was measured directly (representative intervals).
    pub simulated_ops: u64,
    /// Ops covered only by reconstitution (`total_ops - simulated_ops`).
    pub skipped_ops: u64,
    /// Extra warmup ops fed to the simulator (delta'd out of results).
    pub warmup_ops: u64,
    /// Estimated whole-trace cycles per instruction.
    pub cpi_est: f64,
    /// Estimated whole-trace core power (W, per-cycle intensive).
    pub power_est: f64,
    /// Relative error bound claimed for `cpi_est` (fraction).
    pub cpi_bound_rel: f64,
    /// Relative error bound claimed for `power_est` (fraction).
    pub power_bound_rel: f64,
    /// Learned mode: leave-one-out CV error of the CPI predictor (%).
    pub cv_cpi_error_pct: f64,
    /// Learned mode: leave-one-out CV error of the power predictor (%).
    pub cv_power_error_pct: f64,
    /// Learned mode: intervals filled in by prediction rather than by
    /// their representative's numbers.
    pub predicted_intervals: u64,
}

/// A scenario result produced by sampled execution, with its statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampledScenario {
    /// The reconstituted whole-trace result (same shape as exact).
    pub result: ScenarioResult,
    /// What was simulated, skipped, and claimed.
    pub stats: SamplingStats,
}

/// Records the `[obs]` counters/gauge for one sampled point. The engine
/// calls this on cache hits too, so a warm run's summary still reports
/// what the cached points covered.
pub fn record_obs(stats: &SamplingStats) {
    p10_obs::counter("sim.sample.intervals", stats.intervals);
    p10_obs::counter("sim.sample.clusters", stats.clusters);
    p10_obs::counter("sim.sample.simulated_ops", stats.simulated_ops);
    p10_obs::counter("sim.sample.skipped_ops", stats.skipped_ops);
    if stats.total_ops > 0 {
        #[allow(clippy::cast_precision_loss)]
        p10_obs::gauge(
            "sim.sample.coverage",
            stats.simulated_ops as f64 / stats.total_ops as f64,
        );
    }
}

/// One interval of the partitioned run: per-thread zero-copy slices plus
/// the combined BBV.
struct Interval {
    /// Per-thread `[i*I, (i+1)*I)` windows (threads clipped individually;
    /// some may be empty near a short thread's end).
    slices: Vec<TraceView>,
    /// Ops across all thread slices.
    ops: u64,
    /// Normalized basic-block vector over all thread slices, augmented
    /// with weighted functional-warming miss rates (see [`partition`]).
    bbv: Vec<f64>,
    /// Per-op functional L1D/L2/L3 miss rates at this interval's position
    /// in the trace (from the clustering pre-pass).
    warm_miss: [f64; 3],
}

/// Partitions per-thread views into op-index-aligned intervals and
/// computes each interval's combined BBV.
///
/// The BBV is augmented with three microarchitectural features: the
/// interval's per-op L1D/L2/L3 miss rates measured by a functional
/// warming pre-pass over the whole trace. A cold-start transient (caches
/// filling for the first time) executes the *same code* as steady state
/// — identical on a pure code-signature BBV — but misses at a very
/// different rate, so these features let k-means give the transient its
/// own cluster, a representative that is measured equally cold, and a
/// visible contribution to the error bound.
fn partition(cfg: &CoreConfig, views: &[TraceView], interval_ops: usize) -> Vec<Interval> {
    let max_len = views.iter().map(TraceView::len).max().unwrap_or(0);
    let n = max_len.div_ceil(interval_ops);
    let mut warmer = FunctionalWarmer::new(cfg);
    let mut prev = Activity::default();
    (0..n)
        .map(|i| {
            let slices: Vec<TraceView> =
                views.iter().map(|v| v.interval(interval_ops, i)).collect();
            let ops: u64 = slices.iter().map(|s| s.len() as u64).sum();
            let mut bbv = vec![0.0f64; BBV_BUCKETS];
            for s in &slices {
                for op in s.ops() {
                    bbv[((op.pc >> 4) as usize) % BBV_BUCKETS] += 1.0;
                }
            }
            let norm: f64 = bbv.iter().sum();
            if norm > 0.0 {
                for x in &mut bbv {
                    *x /= norm;
                }
            }
            warmer.observe(&slices);
            let cur = *warmer.activity();
            let d = cur.delta(&prev);
            prev = cur;
            #[allow(clippy::cast_precision_loss)]
            let per_op = |misses: u64| misses as f64 / ops.max(1) as f64;
            let warm_miss = [
                per_op(d.l1d_misses),
                per_op(d.l2_misses),
                per_op(d.l3_misses),
            ];
            for m in warm_miss {
                bbv.push(m * MISS_FEATURE_WEIGHT);
            }
            // Every window below `n` holds ops from the longest thread,
            // so interval index == window index (no filtering needed).
            Interval {
                slices,
                ops,
                bbv,
                warm_miss,
            }
        })
        .collect()
}

fn bbv_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// One simulated representative interval with warmup delta'd out.
#[derive(Clone)]
struct RepMeasurement {
    /// Interval index in the partition.
    interval: usize,
    /// Counters attributable to the representative interval alone.
    activity: Activity,
    /// Cycle attribution of the same window (sums to `activity.cycles`).
    attribution: CycleAttribution,
    /// CPI of the representative.
    cpi: f64,
    /// Core power (W) of the representative window.
    power: f64,
    /// Warmup ops that were simulated and subtracted back out.
    warmup_ops: u64,
}

/// Simulates interval `idx` of the partition on `cfg`, starting from the
/// functionally-warmed `state` (caches, TLBs, predictor as of the
/// interval's position in the trace), with `warmup_ops` of detailed
/// pipeline warmup per thread, checkpoint-free: the window
/// `[start - warmup, end)` is simulated once, the warmup prefix
/// `[start - warmup, start)` once more, and the prefix's counters are
/// subtracted (saturating). The detailed prefix fills short-lived state
/// (window occupancy, miss queues, store drain) that functional warming
/// cannot; its ops are already inside `state`, and replaying them is
/// harmless because cache/predictor training is idempotent for a repeat.
fn simulate_interval(
    cfg: &CoreConfig,
    views: &[TraceView],
    interval_ops: usize,
    idx: usize,
    warmup_ops: usize,
    state: &WarmState,
) -> RepMeasurement {
    let _sp = p10_obs::event_span(&format!("interval:{idx}"));
    let run = |slices: Vec<TraceView>| -> SimResult {
        let ops: u64 = slices.iter().map(|s| s.len() as u64).sum();
        Core::with_state(cfg.clone(), state.clone()).run(slices, ops * 8 + 100_000)
    };
    let mut full = Vec::new();
    let mut warm = Vec::new();
    for v in views {
        let start = v.len().min(idx.saturating_mul(interval_ops));
        let end = v.len().min(start + interval_ops);
        let wstart = start.saturating_sub(warmup_ops);
        full.push(v.slice(wstart..end));
        warm.push(v.slice(wstart..start));
    }
    let warmup: u64 = warm.iter().map(|s| s.len() as u64).sum();
    let full = run(full.into_iter().filter(|s| !s.is_empty()).collect());
    let (activity, attribution) = if warmup == 0 {
        (full.activity, full.attribution)
    } else {
        let pre = run(warm.into_iter().filter(|s| !s.is_empty()).collect());
        let activity = full.activity.delta(&pre.activity);
        (
            activity,
            attribution_delta(&full.attribution, &pre.attribution, activity.cycles),
        )
    };
    let power = PowerModel::for_config(cfg).evaluate(&activity).core_total();
    RepMeasurement {
        interval: idx,
        cpi: activity.cpi(),
        power,
        activity,
        attribution,
        warmup_ops: warmup,
    }
}

/// Per-bucket saturating difference of two attributions, re-balanced so
/// the result still partitions exactly `cycles` (the invariant
/// `CycleAttribution::total() == Activity::cycles` that `cycleprof`
/// asserts). Rounding slack lands in `idle`; if the non-idle buckets
/// overshoot, the overshoot is shaved off the largest buckets.
fn attribution_delta(
    full: &CycleAttribution,
    pre: &CycleAttribution,
    cycles: u64,
) -> CycleAttribution {
    rebalance(
        CycleAttribution {
            active: full.active.saturating_sub(pre.active),
            mma_gated: full.mma_gated.saturating_sub(pre.mma_gated),
            issue_limited: full.issue_limited.saturating_sub(pre.issue_limited),
            memory_bound: full.memory_bound.saturating_sub(pre.memory_bound),
            dispatch_stalled: full.dispatch_stalled.saturating_sub(pre.dispatch_stalled),
            fetch_stalled: full.fetch_stalled.saturating_sub(pre.fetch_stalled),
            idle: 0,
        },
        cycles,
    )
}

/// Sets `idle` so the buckets sum to exactly `cycles`; shaves any
/// non-idle overshoot off the largest buckets first.
fn rebalance(mut a: CycleAttribution, cycles: u64) -> CycleAttribution {
    a.idle = 0;
    let mut excess = a.total().saturating_sub(cycles);
    while excess > 0 {
        let buckets = [
            &mut a.active,
            &mut a.mma_gated,
            &mut a.issue_limited,
            &mut a.memory_bound,
            &mut a.dispatch_stalled,
            &mut a.fetch_stalled,
        ];
        let largest = buckets
            .into_iter()
            .max_by_key(|b| **b)
            .expect("six buckets");
        let cut = (*largest).min(excess);
        if cut == 0 {
            break;
        }
        *largest -= cut;
        excess -= cut;
    }
    a.idle = cycles.saturating_sub(a.total());
    a
}

/// The cluster-spread error bound for one metric (CPI or power).
///
/// Sensitivity `λ` is the steepest observed metric-per-BBV-distance slope
/// between representative pairs (regularized so identical BBVs with
/// different metrics don't explode it); each cluster contributes a
/// deviation `σ_c = λ · rms(BBV distance of members to representative)`,
/// weighted by the cluster's share and combined as independent terms at
/// ~95% confidence. A fixed floor covers the error modes cluster spread
/// cannot see.
#[allow(clippy::too_many_arguments)]
fn spread_bound_rel(
    metric_of: impl Fn(&RepMeasurement) -> f64,
    estimate: f64,
    reps: &[RepMeasurement],
    sp: &WeightedSimpoints,
    ivs: &[Interval],
    measured: &[Option<RepMeasurement>],
    total_ops: u64,
) -> f64 {
    let mut lambda = 0.0f64;
    for (i, a) in reps.iter().enumerate() {
        for b in reps.iter().skip(i + 1) {
            let d = bbv_dist(&ivs[a.interval].bbv, &ivs[b.interval].bbv).max(1e-3);
            lambda = lambda.max((metric_of(a) - metric_of(b)).abs() / d);
        }
    }
    let mut var = 0.0f64;
    for (rep, members) in reps.iter().zip(sp.members.iter()) {
        let cluster_ops: f64 = members.iter().map(|&i| ivs[i].ops as f64).sum();
        if cluster_ops <= 0.0 {
            continue;
        }
        // Members with their own detailed measurement (the cold prefix
        // and the representative itself) contribute zero deviation.
        let ms: f64 = members
            .iter()
            .map(|&i| {
                if measured[i].is_some() {
                    return 0.0;
                }
                let d = bbv_dist(&ivs[i].bbv, &ivs[rep.interval].bbv);
                ivs[i].ops as f64 * d * d
            })
            .sum::<f64>()
            / cluster_ops;
        let sigma = lambda * ms.sqrt();
        let share = cluster_ops / total_ops as f64;
        var += (share * sigma) * (share * sigma);
    }
    Z_95 * var.sqrt() / estimate.abs().max(1e-12) + BOUND_FLOOR_REL
}

/// Names of the functional-trace features the learned mode predicts from.
fn feature_names() -> Vec<String> {
    [
        "load_frac",
        "store_frac",
        "branch_frac",
        "mul_div_frac",
        "vsx_frac",
        "mma_frac",
        "flops_per_op",
        "uniq_lines_per_op",
        "uniq_pages_per_op",
        "prefixed_frac",
        "warm_l1d_miss_rate",
        "warm_l2_miss_rate",
        "warm_l3_miss_rate",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect()
}

/// Fast-forward features of one interval — computable without the cycle
/// model (static trace mix plus the functional-warming miss rates),
/// which is the whole point of the learned fast-forward.
fn interval_features(iv: &Interval) -> Vec<f64> {
    let n = iv.ops.max(1) as f64;
    let mut counts = [0u64; 6]; // load store branch muldiv vsx mma
    let mut flops = 0u64;
    let mut prefixed = 0u64;
    let mut lines: HashSet<u64> = HashSet::new();
    let mut pages: HashSet<u64> = HashSet::new();
    for s in &iv.slices {
        for op in s.ops() {
            match op.class {
                OpClass::Load => counts[0] += 1,
                OpClass::Store => counts[1] += 1,
                OpClass::Branch => counts[2] += 1,
                OpClass::IntMul | OpClass::IntDiv => counts[3] += 1,
                OpClass::VsxSimple | OpClass::VsxFp => counts[4] += 1,
                OpClass::Mma(_) | OpClass::MmaMove => counts[5] += 1,
                _ => {}
            }
            flops += u64::from(op.flops);
            prefixed += u64::from(op.prefixed);
            if let Some(m) = op.mem {
                lines.insert(m.addr >> 7);
                pages.insert(m.addr >> 12);
            }
        }
    }
    let mut row: Vec<f64> = counts.iter().map(|&c| c as f64 / n).collect();
    row.push(flops as f64 / n);
    row.push(lines.len() as f64 / n);
    row.push(pages.len() as f64 / n);
    row.push(prefixed as f64 / n);
    row.extend(iv.warm_miss);
    row
}

/// Reconstitutes a whole-trace [`ScenarioResult`] from per-interval CPI /
/// power assignments plus the representatives' counter shapes.
///
/// `cpi_of(i)` / `power_of(i)` give interval `i`'s assigned values (its
/// own detailed measurement when it has one, possibly a prediction in
/// learned mode, otherwise its representative's measurement). Counters
/// other than `cycles`/`completed` are scaled per interval from its
/// measurement source — predictions only move the headline cycles/power,
/// the counter *mix* always comes from simulation.
#[allow(clippy::too_many_arguments)]
fn reconstitute(
    cfg: &CoreConfig,
    name: &str,
    views: &[TraceView],
    ivs: &[Interval],
    measured: &[Option<RepMeasurement>],
    cluster_of: &[usize],
    reps: &[RepMeasurement],
    cpi_of: &dyn Fn(usize) -> f64,
    power_of: &dyn Fn(usize) -> f64,
) -> (ScenarioResult, f64, f64) {
    let total_ops: u64 = ivs.iter().map(|iv| iv.ops).sum();
    // Whole-trace cycles: per-interval op counts times assigned CPI.
    let cycles_est: f64 = ivs
        .iter()
        .enumerate()
        .map(|(i, iv)| iv.ops as f64 * cpi_of(i))
        .sum();
    let cpi_est = cycles_est / total_ops.max(1) as f64;
    // Power is per-cycle intensive: cycle-weighted mean of assignments.
    let power_est: f64 = ivs
        .iter()
        .enumerate()
        .map(|(i, iv)| iv.ops as f64 * cpi_of(i) * power_of(i))
        .sum::<f64>()
        / cycles_est.max(1e-12);

    // Counter mix per interval: its own measurement when detailed,
    // otherwise its cluster's representative, scaled to the interval's
    // op share.
    let mut terms: Vec<(f64, Activity)> = Vec::new();
    let mut attr_terms: Vec<(f64, CycleAttribution)> = Vec::new();
    for (i, iv) in ivs.iter().enumerate() {
        let m = measured[i].as_ref().unwrap_or(&reps[cluster_of[i]]);
        let scale = iv.ops as f64 / m.activity.completed.max(1) as f64;
        terms.push((scale, m.activity));
        attr_terms.push((scale, m.attribution));
    }
    let mut activity = Activity::weighted_sum(&terms);
    // Pin the invariants exact mode guarantees: completed equals the op
    // budget, and cycles match the (possibly predicted) estimate.
    activity.completed = total_ops;
    activity.cycles = cycles_est.round().max(1.0) as u64;
    let attribution = rebalance(attribution_weighted_sum(&attr_terms), activity.cycles);

    let power = PowerModel::for_config(cfg).evaluate(&activity);
    let result = ScenarioResult {
        workload: name.to_owned(),
        config: cfg.name.clone(),
        sim: SimResult {
            config_name: cfg.name.clone(),
            threads: views.len(),
            activity,
            per_thread_completed: views.iter().map(|v| v.len() as u64).collect(),
            attribution,
        },
        power,
    };
    (result, cpi_est, power_est)
}

/// Element-wise weighted sum of attribution buckets (rounded).
fn attribution_weighted_sum(terms: &[(f64, CycleAttribution)]) -> CycleAttribution {
    let f = |get: fn(&CycleAttribution) -> u64| -> u64 {
        terms
            .iter()
            .map(|(w, a)| w * get(a) as f64)
            .sum::<f64>()
            .round()
            .max(0.0) as u64
    };
    CycleAttribution {
        active: f(|a| a.active),
        mma_gated: f(|a| a.mma_gated),
        issue_limited: f(|a| a.issue_limited),
        memory_bound: f(|a| a.memory_bound),
        dispatch_stalled: f(|a| a.dispatch_stalled),
        fetch_stalled: f(|a| a.fetch_stalled),
        idle: f(|a| a.idle),
    }
}

/// Runs pre-built per-thread views in the given sampling mode.
///
/// Exact mode delegates to [`scenario::run_traces`] (bit-identical to the
/// reference path) with trivial stats; sampled modes partition, cluster,
/// simulate representatives, and reconstitute.
///
/// # Panics
///
/// Panics if `views` contains no ops (nothing to sample).
#[must_use]
pub fn run_traces_sampled(
    cfg: &CoreConfig,
    name: &str,
    views: Vec<TraceView>,
    mode: &SamplingMode,
) -> SampledScenario {
    let total_ops: u64 = views.iter().map(|v| v.len() as u64).sum();
    assert!(total_ops > 0, "sampled run of an empty trace");
    match *mode {
        SamplingMode::Exact => {
            let result = scenario::run_traces(cfg, name, views);
            let stats = SamplingStats {
                mode: "exact".to_owned(),
                intervals: 0,
                clusters: 0,
                total_ops,
                simulated_ops: total_ops,
                skipped_ops: 0,
                warmup_ops: 0,
                cpi_est: result.sim.cpi(),
                power_est: result.core_power(),
                cpi_bound_rel: 0.0,
                power_bound_rel: 0.0,
                cv_cpi_error_pct: 0.0,
                cv_power_error_pct: 0.0,
                predicted_intervals: 0,
            };
            SampledScenario { result, stats }
        }
        SamplingMode::SimPoints {
            interval_ops,
            k,
            warmup_ops,
        } => run_simpoints(cfg, name, &views, interval_ops, k, warmup_ops, None),
        SamplingMode::Learned {
            interval_ops,
            k,
            max_features,
        } => run_simpoints(
            cfg,
            name,
            &views,
            interval_ops,
            k,
            interval_ops / 8,
            Some(max_features),
        ),
    }
}

/// The shared SimPoints machinery; `learned_features = Some(F)` layers
/// the learned fast-forward on top.
fn run_simpoints(
    cfg: &CoreConfig,
    name: &str,
    views: &[TraceView],
    interval_ops: usize,
    k: usize,
    warmup_ops: usize,
    learned_features: Option<usize>,
) -> SampledScenario {
    let ivs = partition(cfg, views, interval_ops);
    let total_ops: u64 = ivs.iter().map(|iv| iv.ops).sum();
    let bbvs: Vec<Vec<f64>> = ivs.iter().map(|iv| iv.bbv.clone()).collect();
    let weights: Vec<f64> = ivs.iter().map(|iv| iv.ops as f64).collect();
    let sp = simpoints_weighted(&bbvs, &weights, k, KMEANS_SEED);

    // Measure the representatives on a single forward pass over the
    // trace: every interval is replayed through the functional warmer
    // (timing-free cache/TLB/predictor updates), and when the pass
    // reaches a representative, the detailed simulation starts from a
    // snapshot of that warmed state. Long-warming state — a pointer
    // chase over a cache-sized footprint, a slowly-training predictor —
    // is therefore as warm as it would be in the exact run, which no
    // affordable detailed warmup prefix could achieve. (Serial: the
    // engine already parallelizes across experiment points.)
    let rep_set: HashSet<usize> = sp.selection.picks.iter().map(|&(rep, _)| rep).collect();
    let mut warmer = FunctionalWarmer::new(cfg);
    let mut measured: Vec<Option<RepMeasurement>> = (0..ivs.len()).map(|_| None).collect();
    // The cold-start transient — caches and predictor filling for the
    // very first time — has no BBV signature, so a warm representative
    // cannot stand in for the leading intervals. Detail them until two
    // consecutive measurements agree (capped at a quarter of the trace).
    let cold_cap = (ivs.len() / 4).max(1);
    let mut prev_cold_cpi: Option<f64> = None;
    let mut cold_done = false;
    for (idx, iv) in ivs.iter().enumerate() {
        let want_cold = !cold_done && idx < cold_cap;
        if want_cold || rep_set.contains(&idx) {
            measured[idx] = Some(simulate_interval(
                cfg,
                views,
                interval_ops,
                idx,
                warmup_ops,
                warmer.state(),
            ));
        }
        if want_cold {
            let cpi = measured[idx].as_ref().expect("just measured").cpi;
            if let Some(prev) = prev_cold_cpi {
                if (cpi - prev).abs() / cpi.max(1e-9) < COLD_TOL_REL {
                    cold_done = true;
                }
            }
            prev_cold_cpi = Some(cpi);
        }
        warmer.observe(&iv.slices);
    }
    let reps: Vec<RepMeasurement> = sp
        .selection
        .picks
        .iter()
        .map(|&(rep, _)| measured[rep].clone().expect("representative was measured"))
        .collect();
    let simulated_ops: u64 = measured
        .iter()
        .enumerate()
        .filter(|(_, m)| m.is_some())
        .map(|(i, _)| ivs[i].ops)
        .sum();
    let warmup_total: u64 = measured.iter().flatten().map(|r| r.warmup_ops).sum();

    // Interval -> cluster assignment for per-interval value lookup.
    let mut cluster_of = vec![0usize; ivs.len()];
    for (ci, members) in sp.members.iter().enumerate() {
        for &m in members {
            cluster_of[m] = ci;
        }
    }

    // Learned fast-forward: fit counter->CPI and counter->power models on
    // the simulated representatives, predict the skipped intervals.
    let mut cv_cpi = 0.0;
    let mut cv_power = 0.0;
    let mut predicted: Vec<Option<(f64, f64)>> = vec![None; ivs.len()];
    if let Some(max_features) = learned_features {
        // Every detailed measurement — representatives and cold-prefix
        // intervals alike — is a training row.
        let mut cpi_data = Dataset::new(feature_names());
        let mut power_data = Dataset::new(feature_names());
        for r in measured.iter().flatten() {
            let row = interval_features(&ivs[r.interval]);
            cpi_data.push(row.clone(), r.cpi);
            power_data.push(row, r.power);
        }
        let opts = FitOptions::default();
        let models = forward_select_loo(&cpi_data, max_features, opts).zip(forward_select_loo(
            &power_data,
            max_features,
            opts,
        ));
        if let Some((cpi_cv, power_cv)) = models {
            cv_cpi = cpi_cv.cv_error_pct;
            cv_power = power_cv.cv_error_pct;
            for (i, iv) in ivs.iter().enumerate() {
                if measured[i].is_none() {
                    let row = interval_features(iv);
                    // Predictions are clamped to the observed training
                    // range: extrapolating a linear model past its
                    // training hull is how learned fast-forwards go wrong.
                    let clamp = |v: f64, lo: f64, hi: f64| v.max(lo).min(hi);
                    let (cpi_lo, cpi_hi) = min_max(measured.iter().flatten().map(|r| r.cpi));
                    let (p_lo, p_hi) = min_max(measured.iter().flatten().map(|r| r.power));
                    predicted[i] = Some((
                        clamp(cpi_cv.model.predict(&row), cpi_lo, cpi_hi),
                        clamp(power_cv.model.predict(&row), p_lo, p_hi),
                    ));
                }
            }
        }
    }
    let predicted_intervals = predicted.iter().filter(|p| p.is_some()).count() as u64;

    // Per-interval resolution: an interval's own detailed measurement
    // wins; otherwise a learned prediction; otherwise its cluster's
    // representative.
    let cpi_of = |i: usize| {
        measured[i].as_ref().map_or_else(
            || predicted[i].map_or_else(|| reps[cluster_of[i]].cpi, |(cpi, _)| cpi),
            |m| m.cpi,
        )
    };
    let power_of = |i: usize| {
        measured[i].as_ref().map_or_else(
            || predicted[i].map_or_else(|| reps[cluster_of[i]].power, |(_, p)| p),
            |m| m.power,
        )
    };
    let (result, cpi_est, power_est) = reconstitute(
        cfg,
        name,
        views,
        &ivs,
        &measured,
        &cluster_of,
        &reps,
        &cpi_of,
        &power_of,
    );

    // Boundary residue: per-interval measurement can be off by a
    // roughly constant number of cycles (functional-vs-detailed state
    // gap at the window edges), which is relatively large only when
    // intervals are short and CPI is low.
    #[allow(clippy::cast_precision_loss)]
    let boundary_rel = BOUNDARY_RESIDUE_CYCLES / (interval_ops as f64 * cpi_est.max(1e-3));
    let mut cpi_bound =
        boundary_rel + spread_bound_rel(|r| r.cpi, cpi_est, &reps, &sp, &ivs, &measured, total_ops);
    let mut power_bound = boundary_rel
        + spread_bound_rel(
            |r| r.power,
            power_est,
            &reps,
            &sp,
            &ivs,
            &measured,
            total_ops,
        );
    if learned_features.is_some() {
        // The learned estimate inherits whichever is worse: cluster
        // spread or the predictor's cross-validated error (with safety).
        cpi_bound = cpi_bound.max(cv_cpi / 100.0 * CV_SAFETY + BOUND_FLOOR_REL);
        power_bound = power_bound.max(cv_power / 100.0 * CV_SAFETY + BOUND_FLOOR_REL);
    }

    let mode = if let Some(f) = learned_features {
        format!("learned:{interval_ops}:{k}:{f}")
    } else {
        format!("simpoints:{interval_ops}:{k}:{warmup_ops}")
    };
    SampledScenario {
        result,
        stats: SamplingStats {
            mode,
            intervals: ivs.len() as u64,
            clusters: sp.selection.len() as u64,
            total_ops,
            simulated_ops,
            skipped_ops: total_ops - simulated_ops,
            warmup_ops: warmup_total,
            cpi_est,
            power_est,
            cpi_bound_rel: cpi_bound,
            power_bound_rel: power_bound,
            cv_cpi_error_pct: cv_cpi,
            cv_power_error_pct: cv_power,
            predicted_intervals,
        },
    }
}

fn min_max(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    vals.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

/// [`run_traces_sampled`] over a benchmark's per-thread-seeded views —
/// the sampled twin of [`scenario::run_benchmark`].
#[must_use]
pub fn run_benchmark_sampled(
    cfg: &CoreConfig,
    bench: &Benchmark,
    seed: u64,
    max_ops: u64,
    mode: &SamplingMode,
) -> SampledScenario {
    run_traces_sampled(
        cfg,
        &bench.name,
        scenario::benchmark_views(cfg, bench, seed, max_ops),
        mode,
    )
}

/// [`run_traces_sampled`] over a single workload's staggered SMT views —
/// the sampled twin of [`scenario::run_workload`].
#[must_use]
pub fn run_workload_sampled(
    cfg: &CoreConfig,
    workload: &Workload,
    max_ops: u64,
    mode: &SamplingMode,
) -> SampledScenario {
    run_traces_sampled(
        cfg,
        &workload.name,
        scenario::staggered_views(workload, cfg.smt.threads(), max_ops),
        mode,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    fn simpoints_mode() -> SamplingMode {
        SamplingMode::SimPoints {
            interval_ops: 1_000,
            k: 4,
            warmup_ops: 125,
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        for text in ["exact", "simpoints:1000:8:125", "learned:1000:8:4"] {
            let m = SamplingMode::parse(text).expect("parses");
            assert_eq!(m.describe(), text);
        }
        // Defaults are filled in.
        assert_eq!(
            SamplingMode::parse("simpoints:800:4").expect("parses"),
            SamplingMode::SimPoints {
                interval_ops: 800,
                k: 4,
                warmup_ops: 100
            }
        );
        assert_eq!(
            SamplingMode::parse("simpoints:800:4:0").expect("parses"),
            SamplingMode::SimPoints {
                interval_ops: 800,
                k: 4,
                warmup_ops: 0
            }
        );
        assert_eq!(
            SamplingMode::parse("learned:800:4").expect("parses"),
            SamplingMode::Learned {
                interval_ops: 800,
                k: 4,
                max_features: 4
            }
        );
        for bad in [
            "",
            "simpoint",
            "simpoints",
            "simpoints:0:4",
            "simpoints:100:0",
            "simpoints:100:4:5:6",
            "learned:100",
            "exact:1",
            "simpoints:x:4",
        ] {
            assert!(SamplingMode::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn exact_mode_is_the_reference_path_with_trivial_stats() {
        let b = &specint_like()[8];
        let cfg = CoreConfig::power10();
        let s = run_benchmark_sampled(&cfg, b, 1, 4_000, &SamplingMode::Exact);
        let reference = scenario::run_benchmark(&cfg, b, 1, 4_000);
        assert_eq!(
            serde_json::to_string(&s.result).expect("json"),
            serde_json::to_string(&reference).expect("json"),
        );
        assert_eq!(s.stats.simulated_ops, s.stats.total_ops);
        assert_eq!(s.stats.skipped_ops, 0);
        assert_eq!(s.stats.cpi_bound_rel, 0.0);
    }

    #[test]
    fn sampled_run_covers_every_op_and_holds_its_invariants() {
        let b = &specint_like()[8];
        let cfg = CoreConfig::power10();
        let s = run_benchmark_sampled(&cfg, b, 1, 6_100, &simpoints_mode());
        assert_eq!(s.stats.total_ops, 6_100);
        assert_eq!(
            s.stats.simulated_ops + s.stats.skipped_ops,
            s.stats.total_ops
        );
        assert_eq!(s.stats.intervals, 7, "6100 ops @ 1000 = 6 full + tail");
        assert!(s.stats.clusters >= 1 && s.stats.clusters <= 4);
        assert!(s.stats.simulated_ops < s.stats.total_ops, "must skip work");
        // Reconstitution invariants exact results guarantee.
        assert_eq!(s.result.sim.activity.completed, 6_100);
        assert_eq!(
            s.result.sim.attribution.total(),
            s.result.sim.activity.cycles
        );
        assert_eq!(s.result.sim.total_completed(), 6_100);
        assert!(s.stats.cpi_est > 0.0 && s.stats.power_est > 0.0);
        assert!(s.stats.cpi_bound_rel >= BOUND_FLOOR_REL);
    }

    #[test]
    fn sampling_is_deterministic() {
        let b = &specint_like()[7];
        let cfg = CoreConfig::power10();
        let a = run_benchmark_sampled(&cfg, b, 3, 5_000, &simpoints_mode());
        let b2 = run_benchmark_sampled(&cfg, b, 3, 5_000, &simpoints_mode());
        assert_eq!(
            serde_json::to_string(&a).expect("json"),
            serde_json::to_string(&b2).expect("json"),
        );
    }

    #[test]
    fn rebalance_partitions_exactly() {
        let a = CycleAttribution {
            active: 50,
            memory_bound: 60,
            ..CycleAttribution::default()
        };
        // Overshoot: 110 > 100 shaves the largest bucket.
        let r = rebalance(a, 100);
        assert_eq!(r.total(), 100);
        assert_eq!(r.memory_bound, 50);
        assert_eq!(r.idle, 0);
        // Undershoot: slack lands in idle.
        let r = rebalance(a, 200);
        assert_eq!(r.total(), 200);
        assert_eq!(r.idle, 90);
        // Degenerate: fewer cycles than any bucket can absorb.
        let r = rebalance(a, 0);
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn global_mode_is_set_once_and_exact_is_not_active() {
        // `active()` must never report an exact mode; before any set_mode
        // call it is None (figures is the only setter in production).
        if MODE.get().is_none() {
            assert!(active().is_none());
        }
        set_mode(SamplingMode::Exact);
        assert!(active().is_none(), "exact must not activate sampling");
    }
}
