//! Socket-level scaling: from core results to the paper's socket claims.
//!
//! The paper composes socket-level AI speedups as: core speedup (Fig. 6)
//! × 2.5× from raising the per-socket core count from 24 to 60 × ~1.1×
//! from bandwidth/software/system improvements — reaching up to 10× for
//! FP32 and, with INT8 models, up to 21× (§II-C.2). Table I separately
//! quotes up to 3× socket-level energy efficiency on general workloads.

use crate::inference::Fig6Model;
use serde::{Deserialize, Serialize};

/// Socket-level scaling factors (paper values as defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SocketScaling {
    /// Per-socket core-count ratio (POWER10 60 vs POWER9 24 = 2.5×).
    pub core_count_ratio: f64,
    /// Bandwidth/software/system-level factor (~1.1×).
    pub system_factor: f64,
    /// INT8 throughput multiplier over FP32 on the MMA grid
    /// (`xvi8ger4pp` does twice the MACs of `xvf32gerpp` per cycle).
    pub int8_over_fp32: f64,
}

impl Default for SocketScaling {
    fn default() -> Self {
        SocketScaling {
            core_count_ratio: 60.0 / 24.0,
            system_factor: 1.1,
            int8_over_fp32: 2.0,
        }
    }
}

/// Socket-level projections for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocketProjection {
    /// Model name.
    pub model: String,
    /// Core-level MMA speedup (from Fig. 6).
    pub core_speedup: f64,
    /// Socket-level FP32 speedup (paper: up to 10×).
    pub fp32_socket_speedup: f64,
    /// Socket-level INT8 speedup (paper: up to 21×).
    pub int8_socket_speedup: f64,
}

/// Composes the socket projection from a Fig. 6 result.
///
/// The INT8 path scales only the GEMM portion of the execution by the
/// INT8 throughput multiplier (Amdahl on the GEMM instruction share).
#[must_use]
pub fn project_socket(fig6: &Fig6Model, s: &SocketScaling) -> SocketProjection {
    let core = fig6.speedup_mma();
    let fp32 = core * s.core_count_ratio * s.system_factor;
    // INT8: GEMM cycles shrink by the multiplier; approximate the GEMM
    // share of cycles by the share of compute-bound layer time, which at
    // MMA rates is close to the GEMM instruction share.
    let gemm_share = fig6.p10_mma.gemm_inst_ratio;
    let int8_core_gain = 1.0 / ((1.0 - gemm_share) + gemm_share / s.int8_over_fp32);
    let int8 = fp32 * int8_core_gain;
    SocketProjection {
        model: fig6.model.clone(),
        core_speedup: core,
        fp32_socket_speedup: fp32,
        int8_socket_speedup: int8,
    }
}

/// Socket projection using a *measured* INT8 end-to-end run instead of
/// the Amdahl approximation.
#[must_use]
pub fn project_socket_measured(
    fig6: &Fig6Model,
    int8: &crate::inference::InferenceRun,
    s: &SocketScaling,
) -> SocketProjection {
    let core_fp32 = fig6.speedup_mma();
    let core_int8 = fig6.p9.cycles / int8.cycles;
    SocketProjection {
        model: fig6.model.clone(),
        core_speedup: core_fp32,
        fp32_socket_speedup: core_fp32 * s.core_count_ratio * s.system_factor,
        int8_socket_speedup: core_int8 * s.core_count_ratio * s.system_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::InferenceRun;

    fn fake_fig6(core_speedup: f64, gemm_ratio: f64) -> Fig6Model {
        let mk = |cycles: f64| InferenceRun {
            config: "x".into(),
            instructions: 1000.0,
            cycles,
            gemm_inst_ratio: gemm_ratio,
        };
        Fig6Model {
            model: "fake".into(),
            p9: mk(core_speedup),
            p10_no_mma: mk(1.5),
            p10_mma: mk(1.0),
        }
    }

    #[test]
    fn paper_factors_reach_ten_x_fp32() {
        // A 3.6x core speedup with paper scaling factors lands near 10x.
        let p = project_socket(&fake_fig6(3.64, 0.8), &SocketScaling::default());
        assert!(
            (p.fp32_socket_speedup - 10.0).abs() < 0.5,
            "{}",
            p.fp32_socket_speedup
        );
        // INT8 grows further, toward the paper's 21x band.
        assert!(p.int8_socket_speedup > p.fp32_socket_speedup * 1.4);
        assert!(p.int8_socket_speedup < 21.5);
    }

    #[test]
    fn int8_gain_is_amdahl_limited() {
        let all_gemm = project_socket(&fake_fig6(3.6, 1.0), &SocketScaling::default());
        let half_gemm = project_socket(&fake_fig6(3.6, 0.5), &SocketScaling::default());
        assert!(all_gemm.int8_socket_speedup > half_gemm.int8_socket_speedup);
        let ratio = all_gemm.int8_socket_speedup / all_gemm.fp32_socket_speedup;
        assert!((ratio - 2.0).abs() < 1e-9, "pure GEMM doubles: {ratio}");
    }
}
