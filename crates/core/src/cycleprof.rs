//! The `figures profile` experiment: per-workload cycle attribution.
//!
//! The paper's methodology instruments the machine and reasons from the
//! counters; this module does the same for the simulator itself, using
//! the always-on [`CycleAttribution`] the pipeline maintains (no per-cycle
//! RTLSim observer required). For each configuration it runs the suite
//! through the cached engine — sharing simulation points with Table I and
//! the figure drivers — and reports where every cycle went.
//!
//! Under a sampled execution mode (`--sampling`, [`crate::sampling`])
//! the engine hands back *reconstituted* attributions — ops-weighted
//! sums of per-interval terms — but the partition invariant these rows
//! rely on survives sampling: buckets still sum exactly to the
//! (estimated) total cycles, so every `share` column still adds to 100%.

use crate::scenario::run_suite;
use p10_uarch::{CoreConfig, CycleAttribution};
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Cycle attribution of one (workload, configuration) point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileRow {
    /// Workload name.
    pub workload: String,
    /// Configuration name.
    pub config: String,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Aggregate instructions per cycle.
    pub ipc: f64,
    /// Where the cycles went (buckets sum to `cycles`).
    pub attribution: CycleAttribution,
}

impl ProfileRow {
    /// One bucket as a percentage of total cycles.
    #[must_use]
    pub fn share(&self, bucket_value: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * bucket_value as f64 / self.cycles as f64
        }
    }
}

/// Runs the suite on each configuration and collects one [`ProfileRow`]
/// per (workload, configuration) point, in suite-then-config order.
#[must_use]
pub fn run_profile(
    configs: &[CoreConfig],
    suite: &[Benchmark],
    seed: u64,
    max_ops: u64,
) -> Vec<ProfileRow> {
    let mut rows = Vec::new();
    for cfg in configs {
        let sr = run_suite(cfg, suite, seed, max_ops);
        for r in &sr.results {
            debug_assert_eq!(r.sim.attribution.total(), r.sim.activity.cycles);
            rows.push(ProfileRow {
                workload: r.workload.clone(),
                config: r.config.clone(),
                cycles: r.sim.activity.cycles,
                ipc: r.ipc(),
                attribution: r.sim.attribution,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    #[test]
    fn profile_rows_cover_suite_times_configs() {
        let suite = &specint_like()[..2];
        let configs = [CoreConfig::power9(), CoreConfig::power10()];
        let rows = run_profile(&configs, suite, 42, 4000);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(
                row.attribution.total(),
                row.cycles,
                "{} @ {}: buckets must sum to cycles",
                row.workload,
                row.config
            );
            assert!(row.cycles > 0);
            assert!(row.ipc > 0.0);
            let active_share = row.share(row.attribution.active);
            assert!((0.0..=100.0).contains(&active_share));
        }
        assert_eq!(rows[0].config, rows[1].config);
        assert_ne!(rows[0].config, rows[2].config);
    }
}
