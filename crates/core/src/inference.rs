//! The Fig. 6 experiment: end-to-end CPU inference of ResNet-50 and
//! BERT-Large on POWER9, POWER10 without MMA, and POWER10 with MMA.
//!
//! Method (mirroring the paper's §II-C.2 trace-based modeling): the GEMM
//! kernel for each machine is measured on the cycle model (flops/cycle
//! and instructions/flop, with the SGEMM panels mapped to the VSU when
//! the MMA is absent/disabled and to `xvf32gerpp` panels when enabled);
//! the model graph then composes per-layer cycles with a roofline term
//! for weight/activation streaming, and non-GEMM work runs at the
//! machine's measured vector/elementwise rates.

use crate::scenario::run_traces;
use p10_kernels::gemm::{bf16gemm_mma, int8gemm_mma, sgemm_mma, sgemm_vsu};
use p10_kernels::models::ModelGraph;
use p10_uarch::CoreConfig;
use serde::{Deserialize, Serialize};

/// Measured kernel characteristics on one machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelRates {
    /// Single-precision flops per cycle in the GEMM inner kernel.
    pub gemm_flops_per_cycle: f64,
    /// Instructions per flop in the GEMM inner kernel.
    pub gemm_inst_per_flop: f64,
}

/// Machine-level rates used by the analytic composition.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachineRates {
    /// GEMM kernel rates (measured on the cycle model).
    pub kernel: KernelRates,
    /// Elementwise (activation/normalization) flops per cycle.
    pub elementwise_flops_per_cycle: f64,
    /// Sustained streaming bandwidth, bytes per cycle.
    pub stream_bytes_per_cycle: f64,
}

/// One machine's Fig. 6 bar group (absolute values; ratios are taken
/// against the POWER9 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceRun {
    /// Configuration label.
    pub config: String,
    /// Estimated total instructions.
    pub instructions: f64,
    /// Estimated total cycles.
    pub cycles: f64,
    /// Fraction of instructions in GEMM kernels.
    pub gemm_inst_ratio: f64,
}

impl InferenceRun {
    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.cycles / self.instructions
    }
}

/// The Fig. 6 dataset for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Model {
    /// Model name.
    pub model: String,
    /// POWER9 baseline.
    pub p9: InferenceRun,
    /// POWER10 with the MMA disabled (VSU SGEMM).
    pub p10_no_mma: InferenceRun,
    /// POWER10 with the MMA enabled.
    pub p10_mma: InferenceRun,
}

impl Fig6Model {
    /// Speedup of the no-MMA POWER10 core over POWER9 (paper: 2.25×
    /// ResNet-50, 2.08× BERT-Large).
    #[must_use]
    pub fn speedup_no_mma(&self) -> f64 {
        self.p9.cycles / self.p10_no_mma.cycles
    }

    /// Speedup of the MMA-enabled POWER10 core over POWER9 (paper: 3.55×
    /// ResNet-50, 3.64× BERT-Large).
    #[must_use]
    pub fn speedup_mma(&self) -> f64 {
        self.p9.cycles / self.p10_mma.cycles
    }
}

/// Measures the SGEMM kernel on a configuration.
#[must_use]
pub fn measure_kernel(cfg: &CoreConfig, ops: u64) -> KernelRates {
    let kernel = if cfg.mma.is_some() {
        sgemm_mma(1 << 40)
    } else {
        sgemm_vsu(1 << 40)
    };
    let trace = kernel.trace_view_or_panic(ops);
    let flops = trace.total_flops() as f64;
    let insts = trace.len() as f64;
    let r = run_traces(cfg, &kernel.name, vec![trace]);
    KernelRates {
        gemm_flops_per_cycle: r.sim.activity.flops_per_cycle(),
        gemm_inst_per_flop: insts / flops,
    }
}

/// Derives the full machine rates (kernel measured, elementwise and
/// bandwidth from configuration parameters).
#[must_use]
pub fn machine_rates(cfg: &CoreConfig, ops: u64) -> MachineRates {
    MachineRates {
        kernel: measure_kernel(cfg, ops),
        // Elementwise vector code sustains ~half the SP peak of the pipes.
        elementwise_flops_per_cycle: f64::from(cfg.vsx_units) * 8.0 * 0.5,
        // Sustained streaming: about half the raw load-port bandwidth.
        stream_bytes_per_cycle: f64::from(cfg.load_ports) * f64::from(cfg.load_bytes) * 0.5,
    }
}

/// Composes the end-to-end estimate for one model on one machine.
#[must_use]
pub fn compose(model: &ModelGraph, cfg_name: &str, rates: &MachineRates) -> InferenceRun {
    let mut cycles = 0.0;
    let mut gemm_inst = 0.0;
    let mut other_inst = 0.0;
    for layer in &model.layers {
        let gemm_flops = layer.gemm.map_or(0.0, |g| g.flops() as f64);
        let ew = layer.elementwise_flops as f64;
        let moved = layer.moved_bytes as f64;
        let compute =
            gemm_flops / rates.kernel.gemm_flops_per_cycle + ew / rates.elementwise_flops_per_cycle;
        let memory = moved / rates.stream_bytes_per_cycle;
        // Roofline: compute and streaming overlap; the layer takes the max.
        cycles += compute.max(memory);
        gemm_inst += gemm_flops * rates.kernel.gemm_inst_per_flop;
        // Elementwise: ~4 flops per vector op plus a load and a store per
        // 4 elements; streaming: one 16-byte access + loop overhead.
        other_inst += ew * 0.75 + moved / 16.0 * 1.3;
    }
    let instructions = gemm_inst + other_inst;
    InferenceRun {
        config: cfg_name.to_owned(),
        instructions,
        cycles,
        gemm_inst_ratio: gemm_inst / instructions,
    }
}

/// Runs the Fig. 6 experiment for one model graph.
#[must_use]
pub fn run_fig6(model: &ModelGraph, kernel_ops: u64) -> Fig6Model {
    let p9 = CoreConfig::power9();
    let p10n = CoreConfig::power10_no_mma();
    let p10 = CoreConfig::power10();
    Fig6Model {
        model: model.name.clone(),
        p9: compose(model, &p9.name, &machine_rates(&p9, kernel_ops)),
        p10_no_mma: compose(model, &p10n.name, &machine_rates(&p10n, kernel_ops)),
        p10_mma: compose(model, &p10.name, &machine_rates(&p10, kernel_ops)),
    }
}

/// Measures the INT8 GEMM kernel (`xvi8ger4pp` panels) on a
/// configuration. Rates are in int-op equivalents per cycle (2 per MAC),
/// directly comparable with FP32 flops for the same GEMM shape.
///
/// # Panics
///
/// Panics if the configuration has no MMA.
#[must_use]
pub fn measure_kernel_int8(cfg: &CoreConfig, ops: u64) -> KernelRates {
    assert!(cfg.mma.is_some(), "INT8 GEMM requires the MMA");
    let kernel = int8gemm_mma(1 << 40);
    let trace = kernel.trace_view_or_panic(ops);
    let flops = trace.total_flops() as f64;
    let insts = trace.len() as f64;
    let r = run_traces(cfg, &kernel.name, vec![trace]);
    KernelRates {
        gemm_flops_per_cycle: r.sim.activity.flops_per_cycle(),
        gemm_inst_per_flop: insts / flops,
    }
}

/// Composes the INT8 variant of an inference run: GEMMs run at the
/// measured INT8 rate, weight/activation streaming shrinks (1-byte
/// elements), and quantize/dequantize work inflates the elementwise part.
#[must_use]
pub fn compose_int8(model: &ModelGraph, cfg: &CoreConfig, kernel_ops: u64) -> InferenceRun {
    let mut rates = machine_rates(cfg, kernel_ops);
    rates.kernel = measure_kernel_int8(cfg, kernel_ops);
    // The i32 accumulator tiles must be requantized to i8 in the kernel
    // epilogue (saturating downconversion + scale), which the raw
    // inner-loop measurement does not include; it costs roughly 30% of
    // the sustained rate in production INT8 GEMMs.
    rates.kernel.gemm_flops_per_cycle *= 0.7;
    let mut quantized = model.clone();
    for layer in &mut quantized.layers {
        // Quantize/dequantize and re-scale work around every GEMM: a
        // substantial elementwise inflation (this is why production INT8
        // lands near 2x over FP32 rather than the raw 4x grid rate);
        // INT8 tensors stream at under half the FP32 bytes.
        layer.elementwise_flops = (layer.elementwise_flops as f64 * 3.0) as u64;
        layer.moved_bytes = (layer.moved_bytes as f64 * 0.4) as u64;
    }
    compose(&quantized, &format!("{}-INT8", cfg.name), &rates)
}

/// Measures the BF16 GEMM kernel (`xvbf16ger2pp` panels). Rates are in
/// f32-accumulated flops per cycle, directly comparable with FP32 flops
/// for the same GEMM shape.
///
/// # Panics
///
/// Panics if the configuration has no MMA.
#[must_use]
pub fn measure_kernel_bf16(cfg: &CoreConfig, ops: u64) -> KernelRates {
    assert!(cfg.mma.is_some(), "BF16 GEMM requires the MMA");
    let kernel = bf16gemm_mma(1 << 40);
    let trace = kernel.trace_view_or_panic(ops);
    let flops = trace.total_flops() as f64;
    let insts = trace.len() as f64;
    let r = run_traces(cfg, &kernel.name, vec![trace]);
    KernelRates {
        gemm_flops_per_cycle: r.sim.activity.flops_per_cycle(),
        gemm_inst_per_flop: insts / flops,
    }
}

/// Composes the BF16 variant of an inference run: GEMMs run at the
/// measured BF16 rate, tensors stream at 2 bytes per element, and the
/// elementwise part grows only mildly (f32↔bf16 converts around each
/// GEMM — no quantization scales, which is BF16's deployment advantage
/// over INT8).
#[must_use]
pub fn compose_bf16(model: &ModelGraph, cfg: &CoreConfig, kernel_ops: u64) -> InferenceRun {
    let mut rates = machine_rates(cfg, kernel_ops);
    rates.kernel = measure_kernel_bf16(cfg, kernel_ops);
    // Epilogue: the f32 accumulator tiles are narrowed to bf16 on store —
    // a light cost next to INT8's saturating requantization.
    rates.kernel.gemm_flops_per_cycle *= 0.9;
    let mut halved = model.clone();
    for layer in &mut halved.layers {
        layer.elementwise_flops = (layer.elementwise_flops as f64 * 1.3) as u64;
        layer.moved_bytes = (layer.moved_bytes as f64 * 0.55) as u64;
    }
    compose(&halved, &format!("{}-BF16", cfg.name), &rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_kernels::models::{bert_large, resnet50};

    #[test]
    fn kernel_rates_sane() {
        let p9 = measure_kernel(&CoreConfig::power9(), 20_000);
        let p10 = measure_kernel(&CoreConfig::power10(), 20_000);
        assert!(p9.gemm_flops_per_cycle > 2.0);
        assert!(p10.gemm_flops_per_cycle > p9.gemm_flops_per_cycle * 2.0);
        // MMA does far more flops per instruction.
        assert!(p10.gemm_inst_per_flop < p9.gemm_inst_per_flop / 2.0);
    }

    #[test]
    fn fig6_shape_matches_paper() {
        let resnet = run_fig6(&resnet50(100), 20_000);
        let bert = run_fig6(&bert_large(8, 384), 20_000);
        // MMA speedups in the 3-5x band (paper 3.55/3.64), larger than the
        // no-MMA speedups (paper 2.25/2.08).
        for f in [&resnet, &bert] {
            assert!(
                f.speedup_mma() > f.speedup_no_mma(),
                "{}: MMA {} vs no-MMA {}",
                f.model,
                f.speedup_mma(),
                f.speedup_no_mma()
            );
            assert!(f.speedup_mma() > 2.5 && f.speedup_mma() < 6.0);
            assert!(f.speedup_no_mma() > 1.4 && f.speedup_no_mma() < 3.2);
            // MMA slashes total instructions.
            assert!(f.p10_mma.instructions < f.p9.instructions * 0.7);
            // CPI rises with MMA (fewer, denser instructions).
            assert!(f.p10_mma.cpi() > f.p10_no_mma.cpi());
        }
        // Paper: BERT's no-MMA speedup is lower than ResNet's...
        assert!(bert.speedup_no_mma() < resnet.speedup_no_mma());
    }

    #[test]
    fn int8_outruns_fp32_mma() {
        let model = resnet50(100);
        let cfg = CoreConfig::power10();
        let fp32 = run_fig6(&model, 20_000);
        let int8 = compose_int8(&model, &cfg, 20_000);
        let ratio = fp32.p10_mma.cycles / int8.cycles;
        // INT8 runs the grid at up to 2x the MAC rate with 4-deep dots;
        // end-to-end the paper projects roughly 2x over FP32 (21x vs 10x
        // at socket level). Amdahl keeps it under the raw grid ratio.
        assert!(
            ratio > 1.4 && ratio < 4.0,
            "INT8/FP32 end-to-end ratio {ratio}"
        );
    }

    #[test]
    fn bf16_lands_between_fp32_and_int8() {
        let model = resnet50(100);
        let cfg = CoreConfig::power10();
        let fp32 = run_fig6(&model, 20_000);
        let bf16 = compose_bf16(&model, &cfg, 20_000);
        let int8 = compose_int8(&model, &cfg, 20_000);
        // The precision ladder: each halving of element width buys
        // throughput, with BF16 strictly between FP32 and INT8.
        assert!(
            bf16.cycles < fp32.p10_mma.cycles,
            "BF16 {} vs FP32 {}",
            bf16.cycles,
            fp32.p10_mma.cycles
        );
        assert!(
            bf16.cycles > int8.cycles,
            "BF16 {} vs INT8 {}",
            bf16.cycles,
            int8.cycles
        );
        // End-to-end gain over FP32-MMA is meaningful but sub-2x (Amdahl
        // on the elementwise and streaming parts).
        let gain = fp32.p10_mma.cycles / bf16.cycles;
        assert!(gain > 1.15 && gain < 2.2, "BF16/FP32 gain {gain}");
    }
}
