//! The Fig. 4 experiment: performance effect of each POWER9→POWER10
//! design-change group, for ST and SMT4 ("SMT8" at the full-core level),
//! averaged over the SPECint-like suite, with maximum gains across the
//! extended workload groups (the stars in Fig. 4).
//!
//! Paper averages for SMT8 SPECint: branch ≈4%, latency+BW ≈10%,
//! L2 ≈9%, decode+double-VSX ≈5%, queues ≈4%; ML/analytics workloads gain
//! close to 2× from the doubled VSX units alone.

use crate::runner;
use crate::scenario::geomean;
use p10_uarch::{AblationGroup, CoreConfig, SmtMode};
use p10_workloads::suite::extended_groups;
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Per-group result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// The design-change group label (Fig. 4 x-axis).
    pub group: String,
    /// Mean ST gain over the SPECint-like suite (fraction, e.g. 0.04).
    pub st_gain: f64,
    /// Mean SMT4 gain over the suite.
    pub smt_gain: f64,
    /// Maximum gain observed across all workload groups (the star).
    pub max_gain: f64,
    /// Which workload produced the maximum gain.
    pub max_workload: String,
}

/// The full Fig. 4 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// One row per design-change group, in Fig. 4 order.
    pub rows: Vec<AblationRow>,
}

fn suite_perf(cfg: &CoreConfig, suite: &[Benchmark], seed: u64, ops: u64) -> Vec<(String, f64)> {
    runner::run_jobs_par(suite, |_, b| {
        (
            b.name.clone(),
            runner::run_benchmark_cached(cfg, b, seed, ops).ipc(),
        )
    })
}

/// Runs the Fig. 4 ablation: groups applied cumulatively in Fig. 4 order,
/// measuring each group's incremental gain.
#[must_use]
pub fn run_fig4(suite: &[Benchmark], seed: u64, ops: u64) -> Fig4 {
    let extended = extended_groups();
    let modes = [SmtMode::St, SmtMode::Smt4];

    // perf[mode][step][bench] for suite, ext_perf likewise for extended.
    let mut rows = Vec::new();
    let mut prev_cfgs: Vec<CoreConfig> = modes
        .iter()
        .map(|&m| {
            let mut c = CoreConfig::power9();
            c.smt = m;
            c
        })
        .collect();
    let mut prev_suite: Vec<Vec<(String, f64)>> = prev_cfgs
        .iter()
        .map(|c| suite_perf(c, suite, seed, ops))
        .collect();
    let mut prev_ext: Vec<(String, f64)> = suite_perf(&prev_cfgs[1], &extended, seed, ops);

    for group in AblationGroup::ALL {
        let mut st_gain = 0.0;
        let mut smt_gain = 0.0;
        let mut max_gain = f64::MIN;
        let mut max_workload = String::new();
        for (mi, _) in modes.iter().enumerate() {
            let mut cfg = prev_cfgs[mi].clone();
            cfg.apply(group);
            cfg.name = format!("{}+{:?}", prev_cfgs[mi].name, group);
            let cur = suite_perf(&cfg, suite, seed, ops);
            let gain = geomean(
                cur.iter()
                    .zip(prev_suite[mi].iter())
                    .map(|((_, new), (_, old))| new / old.max(1e-12)),
            ) - 1.0;
            if mi == 0 {
                st_gain = gain;
            } else {
                smt_gain = gain;
                // Stars: max per-workload gain across suite + extended
                // groups in the SMT mode.
                let cur_ext = suite_perf(&cfg, &extended, seed, ops);
                for ((name, new), (_, old)) in cur
                    .iter()
                    .chain(cur_ext.iter())
                    .zip(prev_suite[mi].iter().chain(prev_ext.iter()))
                {
                    let g = new / old.max(1e-12) - 1.0;
                    if g > max_gain {
                        max_gain = g;
                        max_workload = name.clone();
                    }
                }
                prev_ext = cur_ext;
            }
            prev_cfgs[mi] = cfg;
            prev_suite[mi] = cur;
        }
        rows.push(AblationRow {
            group: group.label().to_owned(),
            st_gain,
            smt_gain,
            max_gain,
            max_workload,
        });
    }
    Fig4 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    #[test]
    fn fig4_has_five_positive_aggregate_rows() {
        // Small op budget keeps the test quick; shape only.
        let suite = specint_like();
        let f = run_fig4(&suite[..4], 7, 12_000);
        assert_eq!(f.rows.len(), 5);
        let total: f64 = f.rows.iter().map(|r| (1.0 + r.smt_gain).ln()).sum();
        assert!(
            total.exp() > 1.1,
            "cumulative SMT gain must be substantial, got {}",
            total.exp()
        );
        for r in &f.rows {
            assert!(r.max_gain >= r.smt_gain - 1e-9);
            assert!(!r.max_workload.is_empty());
        }
    }
}
