//! Table I: chip features and the headline efficiency projections.

use crate::scenario::{run_suite, SuiteComparison};
use p10_uarch::{CoreConfig, SmtMode};
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// The measured Table I quantities (features come straight from the
/// configuration; efficiency rows are measured on the suite).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// SMT ways per core (the full SMT8 core = 2 modeled halves).
    pub smt_per_core: u32,
    /// L2 per SMT8 core, MiB.
    pub l2_per_core_mib: f64,
    /// TLB entries relative to POWER9 (paper: 4×).
    pub mmu_ratio: f64,
    /// Core performance/watt ratio vs POWER9 (paper: 2.6×).
    pub perf_per_watt_core: f64,
    /// Socket energy-efficiency ratio vs POWER9 (paper: up to 3×): the
    /// core ratio compounded by SMT scaling headroom.
    pub socket_efficiency: f64,
    /// Underlying perf and power ratios.
    pub perf_ratio: f64,
    /// Mean core-power ratio (new / baseline).
    pub power_ratio: f64,
}

/// Measures Table I on the suite. ST rows capture the core-level 2.6×;
/// the socket row additionally runs SMT4 (the throughput configuration
/// dense sockets actually ship).
#[must_use]
pub fn run_table1(suite: &[Benchmark], seed: u64, ops: u64) -> Table1 {
    let p9 = CoreConfig::power9();
    let p10 = CoreConfig::power10();
    let st = SuiteComparison::between(
        &run_suite(&p9, suite, seed, ops),
        &run_suite(&p10, suite, seed, ops),
    );
    // Socket view: SMT4 halves (SMT8 cores), where POWER10's deeper
    // queues and bandwidth stretch further.
    let mut p9s = p9.clone();
    p9s.smt = SmtMode::Smt2;
    let mut p10s = p10.clone();
    p10s.smt = SmtMode::Smt2;
    let smt = SuiteComparison::between(
        &run_suite(&p9s, suite, seed, ops / 2),
        &run_suite(&p10s, suite, seed, ops / 2),
    );
    Table1 {
        smt_per_core: 8,
        l2_per_core_mib: 2.0 * p10.l2.size_bytes as f64 / (1 << 20) as f64,
        mmu_ratio: f64::from(p10.tlb_entries) / f64::from(p9.tlb_entries),
        perf_per_watt_core: st.efficiency_ratio,
        socket_efficiency: smt.efficiency_ratio,
        perf_ratio: st.perf_ratio,
        power_ratio: st.power_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    #[test]
    fn table1_headline_bands() {
        let suite = specint_like();
        let t = run_table1(&suite[..6], 42, 20_000);
        assert_eq!(t.smt_per_core, 8);
        assert!((t.l2_per_core_mib - 2.0).abs() < 1e-9);
        assert!((t.mmu_ratio - 4.0).abs() < 1e-9);
        // Core perf/W near the paper's 2.6x (shape band).
        assert!(
            t.perf_per_watt_core > 1.8 && t.perf_per_watt_core < 3.5,
            "core efficiency {}",
            t.perf_per_watt_core
        );
        assert!(t.perf_ratio > 1.1);
        assert!(t.power_ratio < 0.75);
    }
}
