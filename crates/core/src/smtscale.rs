//! SMT throughput scaling: how aggregate throughput grows from ST to
//! SMT4 on each half-core, POWER9 vs POWER10.
//!
//! Table I's "SMT per core: 8-way" and the paper's SMT8 result rows rest
//! on the machine actually scaling with threads; POWER10's deeper
//! instruction window, larger queues and doubled load/store bandwidth
//! are what keep extra threads fed.

use crate::runner;
use p10_uarch::{CoreConfig, SmtMode};
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// One (machine, SMT level) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmtPoint {
    /// Configuration name.
    pub config: String,
    /// Hardware threads.
    pub threads: usize,
    /// Suite-mean aggregate IPC.
    pub aggregate_ipc: f64,
    /// Throughput relative to the same machine at ST.
    pub scaling: f64,
}

/// The SMT scaling dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmtScaling {
    /// Points for both machines at ST/SMT2/SMT4.
    pub points: Vec<SmtPoint>,
}

impl SmtScaling {
    /// The scaling factor for a machine at a thread count.
    #[must_use]
    pub fn scaling_of(&self, config: &str, threads: usize) -> f64 {
        self.points
            .iter()
            .find(|p| p.config == config && p.threads == threads)
            .map_or(0.0, |p| p.scaling)
    }
}

/// Runs the SMT scaling study over a suite subset.
#[must_use]
pub fn run_smt_scaling(suite: &[Benchmark], seed: u64, ops: u64) -> SmtScaling {
    let mut points = Vec::new();
    for base in [CoreConfig::power9(), CoreConfig::power10()] {
        let mut st_ipc = 0.0;
        for smt in [SmtMode::St, SmtMode::Smt2, SmtMode::Smt4] {
            let mut cfg = base.clone();
            cfg.smt = smt;
            let mean_ipc: f64 = runner::run_suite_par(&cfg, suite, seed, ops)
                .results
                .iter()
                .map(crate::scenario::ScenarioResult::ipc)
                .sum::<f64>()
                / suite.len().max(1) as f64;
            if smt == SmtMode::St {
                st_ipc = mean_ipc;
            }
            points.push(SmtPoint {
                config: base.name.clone(),
                threads: smt.threads(),
                aggregate_ipc: mean_ipc,
                scaling: mean_ipc / st_ipc.max(1e-12),
            });
        }
    }
    SmtScaling { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    #[test]
    fn smt_scaling_shape() {
        let suite = specint_like();
        // A mixed subset: one compute-bound, one memory-bound, one middle.
        let sel: Vec<_> = [8usize, 2, 7].iter().map(|&i| suite[i].clone()).collect();
        let s = run_smt_scaling(&sel, 42, 8_000);
        assert_eq!(s.points.len(), 6);
        for cfg in ["POWER9", "POWER10"] {
            // More threads never reduce aggregate throughput.
            let s1 = s.scaling_of(cfg, 1);
            let s2 = s.scaling_of(cfg, 2);
            let s4 = s.scaling_of(cfg, 4);
            assert!((s1 - 1.0).abs() < 1e-9);
            assert!(s2 >= 1.0, "{cfg} SMT2 scaling {s2}");
            assert!(s4 >= s2 * 0.95, "{cfg} SMT4 scaling {s4} vs SMT2 {s2}");
            // And scaling is sub-linear (shared resources).
            assert!(s4 < 4.0);
        }
        // POWER10's deeper machine sustains SMT at least as well as
        // POWER9.
        assert!(
            s.scaling_of("POWER10", 4) >= s.scaling_of("POWER9", 4) * 0.9,
            "P10 SMT4 {} vs P9 {}",
            s.scaling_of("POWER10", 4),
            s.scaling_of("POWER9", 4)
        );
    }
}
