//! Parallel experiment-execution engine with a content-addressed result
//! cache.
//!
//! Every figure driver ultimately fans out `(CoreConfig, Benchmark, seed,
//! max_ops)` simulation points; this module runs those points across a
//! [`std::thread::scope`] worker pool (std-only — no external thread-pool
//! dependency) while keeping results bit-identical to the serial path and
//! output ordering stable.
//!
//! Two cache layers sit in front of the simulator:
//!
//! * an **in-process memo** so one `figures all` run never simulates the
//!   same point twice (e.g. the Fig. 12 bottom-up study re-reads the same
//!   windowed runs for all 39 component targets), and
//! * an optional **on-disk JSON cache** so a warm re-run (including the
//!   `--out` artifact child process) skips already-simulated points.
//!
//! Keys are content hashes of the full serialized configuration plus the
//! workload identity, seed, and op budget — a config tweak, new seed, or
//! different budget is a different point. Per-job wall-clock timing and a
//! progress line (on stderr, so `--json` stdout stays parseable) make
//! long runs observable.

use crate::scenario::{run_benchmark, ScenarioResult, SuiteResult};
use p10_uarch::CoreConfig;
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How an [`Engine`] should run jobs and cache results.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Directory for the on-disk JSON cache; `None` disables it (the
    /// in-process memo is always on).
    pub disk_cache: Option<PathBuf>,
    /// Print a per-job progress/timing line to stderr.
    pub progress: bool,
}

/// Snapshot of an [`Engine`]'s cache-layer activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounts {
    /// In-process memo hits.
    pub memo_hits: u64,
    /// On-disk cache hits.
    pub disk_hits: u64,
    /// Points actually simulated (both caches missed).
    pub computes: u64,
    /// Disk entries that existed but failed to deserialize (corrupt or
    /// stale format) and were recomputed.
    pub disk_decode_errors: u64,
}

#[derive(Default)]
struct CacheStats {
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    computes: AtomicU64,
    disk_decode_errors: AtomicU64,
}

/// The execution engine: a worker-pool runner plus the two cache layers.
pub struct Engine {
    jobs: usize,
    disk_cache: Option<PathBuf>,
    progress: bool,
    memo: Mutex<HashMap<String, Box<dyn Any + Send + Sync>>>,
    stats: CacheStats,
}

/// Parses a `P10SIM_JOBS`-style value: a positive worker count, or `None`
/// for anything absent or unparseable.
fn jobs_from_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

impl Engine {
    /// Builds an engine from a configuration. A `jobs` of `0` defers to
    /// the `P10SIM_JOBS` environment variable, then to one worker per
    /// available CPU.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let jobs = if config.jobs == 0 {
            jobs_from_env(std::env::var("P10SIM_JOBS").ok().as_deref()).unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
        } else {
            config.jobs
        };
        Engine {
            jobs,
            disk_cache: config.disk_cache,
            progress: config.progress,
            memo: Mutex::new(HashMap::new()),
            stats: CacheStats::default(),
        }
    }

    /// The worker-pool width this engine runs with.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The effective configuration this engine was built with (`jobs`
    /// already resolved to a concrete worker count).
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        EngineConfig {
            jobs: self.jobs,
            disk_cache: self.disk_cache.clone(),
            progress: self.progress,
        }
    }

    /// Cache-layer activity so far.
    #[must_use]
    pub fn cache_counts(&self) -> CacheCounts {
        CacheCounts {
            memo_hits: self.stats.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            computes: self.stats.computes.load(Ordering::Relaxed),
            disk_decode_errors: self.stats.disk_decode_errors.load(Ordering::Relaxed),
        }
    }

    /// Order-preserving parallel map: applies `f` to every item on a
    /// scoped worker pool and returns results in item order.
    ///
    /// With one worker (or one item) this degenerates to a plain serial
    /// map, so results are bit-identical either way; `f` only ever sees
    /// `(index, item)` and must not depend on execution order.
    pub fn run_jobs_par<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            let start = Instant::now();
            let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            if n > 0 {
                p10_obs::counter("engine.worker00.jobs", n as u64);
                p10_obs::counter(
                    "engine.worker00.busy_us",
                    (start.elapsed().as_secs_f64() * 1e6) as u64,
                );
            }
            return out;
        }
        let pool_start = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let (next, slots, f) = (&next, &slots, &f);
                s.spawn(move || {
                    p10_obs::set_thread_name(&format!("worker{w:02}"));
                    let mut done = 0u64;
                    let mut busy_us = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // How long the job sat queued before a worker
                        // picked it up (all jobs enqueue at pool start).
                        p10_obs::observe("runner.queue_wait", pool_start.elapsed().as_secs_f64());
                        let job_start = Instant::now();
                        let r = f(i, &items[i]);
                        busy_us += (job_start.elapsed().as_secs_f64() * 1e6) as u64;
                        *slots[i].lock().expect("result slot poisoned") = Some(r);
                        done += 1;
                    }
                    p10_obs::counter(&format!("engine.worker{w:02}.jobs"), done);
                    p10_obs::counter(&format!("engine.worker{w:02}.busy_us"), busy_us);
                });
            }
        });
        slots
            .into_iter()
            .map(|c| {
                c.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker completed every claimed job")
            })
            .collect()
    }

    /// Memoized computation: returns the cached value for `key` if any
    /// layer holds it, otherwise runs `compute`, stores the result in
    /// both layers, and returns it.
    ///
    /// `label` is only for the progress line. Results must be
    /// deterministic functions of the key — the engine trusts the caller
    /// that equal keys mean equal results.
    pub fn cached<T, F>(&self, label: &str, key: &str, compute: F) -> T
    where
        T: Clone + Serialize + Deserialize + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let key = format!("{:016x}", fnv1a64(key.as_bytes()));
        if let Some(hit) = self.memo_get::<T>(&key) {
            self.stats.memo_hits.fetch_add(1, Ordering::Relaxed);
            p10_obs::counter("cache.memo_hits", 1);
            self.progress_line(label, "memo hit");
            return hit;
        }
        if let Some(hit) = self.disk_get::<T>(&key) {
            self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            p10_obs::counter("cache.disk_hits", 1);
            self.memo_put(&key, hit.clone());
            self.progress_line(label, "disk hit");
            return hit;
        }
        let start = Instant::now();
        let sp = p10_obs::event_span(&format!("job:{label}"));
        let value = compute();
        sp.finish();
        let secs = start.elapsed().as_secs_f64();
        self.stats.computes.fetch_add(1, Ordering::Relaxed);
        p10_obs::counter("cache.computes", 1);
        p10_obs::observe("engine.compute_s", secs);
        self.progress_line(label, &format!("{secs:.2}s"));
        self.disk_put(&key, &value);
        self.memo_put(&key, value.clone());
        value
    }

    /// Runs `f`, printing a per-job timing line (subject to the progress
    /// setting) — for expensive steps that are not cacheable points.
    pub fn timed<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.progress_line(label, &format!("{:.2}s", start.elapsed().as_secs_f64()));
        r
    }

    /// One (config, benchmark, seed, ops) simulation point through the
    /// cache.
    ///
    /// This is the single dispatch point for sampled execution: when a
    /// non-exact [`crate::sampling`] mode is active (installed once by
    /// the `figures` CLI), the point is simulated sampled and cached as a
    /// [`crate::sampling::SampledScenario`] under a key extended with the
    /// mode text — sampled and exact results never collide, and the
    /// sampling `[obs]` counters are recorded even on cache hits.
    #[must_use]
    pub fn run_benchmark(
        &self,
        cfg: &CoreConfig,
        bench: &Benchmark,
        seed: u64,
        max_ops: u64,
    ) -> ScenarioResult {
        let label = format!(
            "{} @ {} x{} seed={seed} ops={max_ops}",
            bench.name,
            cfg.name,
            cfg.smt.threads()
        );
        if let Some(mode) = crate::sampling::active() {
            let key = format!(
                "{}|{}",
                point_key(cfg, bench, seed, max_ops),
                mode.describe()
            );
            let sampled: crate::sampling::SampledScenario =
                self.cached(&format!("{label} [{}]", mode.describe()), &key, || {
                    crate::sampling::run_benchmark_sampled(cfg, bench, seed, max_ops, &mode)
                });
            crate::sampling::record_obs(&sampled.stats);
            return sampled.result;
        }
        self.cached(&label, &point_key(cfg, bench, seed, max_ops), || {
            run_benchmark(cfg, bench, seed, max_ops)
        })
    }

    /// Runs a whole suite on one configuration across the worker pool,
    /// result order matching the suite order (same as the serial path).
    #[must_use]
    pub fn run_suite(
        &self,
        cfg: &CoreConfig,
        suite: &[Benchmark],
        seed: u64,
        max_ops: u64,
    ) -> SuiteResult {
        SuiteResult {
            config: cfg.name.clone(),
            results: self.run_jobs_par(suite, |_, b| self.run_benchmark(cfg, b, seed, max_ops)),
        }
    }

    fn memo_get<T: Clone + 'static>(&self, key: &str) -> Option<T> {
        self.memo
            .lock()
            .expect("memo poisoned")
            .get(key)
            .and_then(|v| v.downcast_ref::<T>())
            .cloned()
    }

    fn memo_put<T: Send + Sync + 'static>(&self, key: &str, value: T) {
        self.memo
            .lock()
            .expect("memo poisoned")
            .insert(key.to_owned(), Box::new(value));
    }

    fn disk_get<T: Deserialize>(&self, key: &str) -> Option<T> {
        let path = self.disk_cache.as_ref()?.join(format!("{key}.json"));
        let text = std::fs::read_to_string(&path).ok()?;
        // A corrupt or stale entry is recomputed like a miss, but counted
        // so a damaged cache directory shows up in the run summary
        // instead of silently costing a full re-simulation.
        match serde_json::from_str(&text) {
            Ok(v) => Some(v),
            Err(_) => {
                self.stats
                    .disk_decode_errors
                    .fetch_add(1, Ordering::Relaxed);
                p10_obs::counter("cache.disk_decode_errors", 1);
                p10_obs::mark("cache.disk_decode_error", &path.display().to_string());
                None
            }
        }
    }

    fn disk_put<T: Serialize>(&self, key: &str, value: &T) {
        let Some(dir) = &self.disk_cache else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return; // cache is best-effort; simulation results still stand
        }
        let Ok(text) = serde_json::to_string(value) else {
            return;
        };
        // Write-then-rename so concurrent workers never observe a torn
        // entry; collisions on the same key write identical bytes anyway.
        let tmp = dir.join(format!("{key}.tmp.{}", std::process::id()));
        let final_path = dir.join(format!("{key}.json"));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &final_path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn progress_line(&self, label: &str, outcome: &str) {
        if self.progress {
            p10_obs::progress(label, outcome);
        } else {
            p10_obs::mark(label, outcome);
        }
    }
}

/// Stable content key for one simulation point: the full serialized
/// configuration and benchmark, plus seed and op budget.
#[must_use]
pub fn point_key(cfg: &CoreConfig, bench: &Benchmark, seed: u64, max_ops: u64) -> String {
    format!(
        "scenario|{}|{}|{seed}|{max_ops}",
        serde_json::to_string(cfg).expect("config serializes"),
        serde_json::to_string(bench).expect("benchmark serializes"),
    )
}

/// 64-bit FNV-1a — deterministic across runs and Rust versions, which the
/// on-disk cache requires (`DefaultHasher` makes no such promise).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

static GLOBAL: OnceLock<Engine> = OnceLock::new();

/// Installs the process-wide engine. Returns `false` if one was already
/// installed (first caller wins); call before any experiment runs.
pub fn configure(config: EngineConfig) -> bool {
    GLOBAL.set(Engine::new(config)).is_ok()
}

/// The process-wide engine, defaulting to all CPUs, memo-only caching,
/// and no progress output if [`configure`] was never called.
pub fn engine() -> &'static Engine {
    GLOBAL.get_or_init(|| Engine::new(EngineConfig::default()))
}

/// The process-wide engine if one has been installed (via [`configure`]
/// or first use), without creating one as a side effect. Use
/// [`Engine::config`] and [`Engine::cache_counts`] on the result to read
/// back the active settings and cache activity.
#[must_use]
pub fn current() -> Option<&'static Engine> {
    GLOBAL.get()
}

/// The default on-disk cache location honoring `P10SIM_CACHE_DIR`.
#[must_use]
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("P10SIM_CACHE_DIR")
        .map_or_else(|| Path::new("target").join("p10sim-cache"), PathBuf::from)
}

/// [`Engine::run_jobs_par`] on the process-wide engine.
pub fn run_jobs_par<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    engine().run_jobs_par(items, f)
}

/// [`Engine::run_benchmark`] on the process-wide engine.
#[must_use]
pub fn run_benchmark_cached(
    cfg: &CoreConfig,
    bench: &Benchmark,
    seed: u64,
    max_ops: u64,
) -> ScenarioResult {
    engine().run_benchmark(cfg, bench, seed, max_ops)
}

/// [`Engine::run_suite`] on the process-wide engine.
#[must_use]
pub fn run_suite_par(
    cfg: &CoreConfig,
    suite: &[Benchmark],
    seed: u64,
    max_ops: u64,
) -> SuiteResult {
    engine().run_suite(cfg, suite, seed, max_ops)
}

/// [`Engine::cached`] on the process-wide engine.
pub fn cached<T, F>(label: &str, key: &str, compute: F) -> T
where
    T: Clone + Serialize + Deserialize + Send + Sync + 'static,
    F: FnOnce() -> T,
{
    engine().cached(label, key, compute)
}

/// [`Engine::timed`] on the process-wide engine.
pub fn timed<R>(label: &str, f: impl FnOnce() -> R) -> R {
    engine().timed(label, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn scratch_dir(tag: &str) -> PathBuf {
        static UNIQ: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "p10sim-runner-{tag}-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn parallel_map_preserves_order() {
        let eng = Engine::new(EngineConfig {
            jobs: 4,
            ..EngineConfig::default()
        });
        let items: Vec<u64> = (0..100).collect();
        let out = eng.run_jobs_par(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn memo_skips_recompute() {
        let eng = Engine::new(EngineConfig::default());
        let calls = AtomicU32::new(0);
        for _ in 0..3 {
            let v: u64 = eng.cached("memo-test", "k", || {
                calls.fetch_add(1, Ordering::Relaxed);
                7
            });
            assert_eq!(v, 7);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disk_cache_survives_a_fresh_engine() {
        let dir = scratch_dir("disk");
        let mk = || {
            Engine::new(EngineConfig {
                disk_cache: Some(dir.clone()),
                ..EngineConfig::default()
            })
        };
        let cold: Vec<f64> = mk().cached("cold", "point", || vec![1.5, 2.0, -3.25]);
        let warm: Vec<f64> = mk().cached("warm", "point", || panic!("must hit the disk cache"));
        assert_eq!(cold, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vector for FNV-1a 64: hash of empty input is the
        // offset basis; "a" is a published test value.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn cache_counts_track_each_layer() {
        let dir = scratch_dir("counts");
        let eng = Engine::new(EngineConfig {
            disk_cache: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let _: u64 = eng.cached("a", "k1", || 1); // compute
        let _: u64 = eng.cached("b", "k1", || panic!("memo must hit")); // memo
        let fresh = Engine::new(EngineConfig {
            disk_cache: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let _: u64 = fresh.cached("c", "k1", || panic!("disk must hit")); // disk
        assert_eq!(
            eng.cache_counts(),
            CacheCounts {
                memo_hits: 1,
                computes: 1,
                ..CacheCounts::default()
            }
        );
        assert_eq!(fresh.cache_counts().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_counted_and_recomputed() {
        let dir = scratch_dir("corrupt");
        let eng = Engine::new(EngineConfig {
            disk_cache: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let cold: Vec<u64> = eng.cached("plant", "point", || vec![4, 5, 6]);
        assert_eq!(cold, vec![4, 5, 6]);
        // Truncate the planted entry to simulate a torn/corrupted file.
        let key = format!("{:016x}", fnv1a64(b"point"));
        let path = dir.join(format!("{key}.json"));
        let text = std::fs::read_to_string(&path).expect("entry written");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

        let fresh = Engine::new(EngineConfig {
            disk_cache: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let calls = AtomicU32::new(0);
        let warm: Vec<u64> = fresh.cached("reread", "point", || {
            calls.fetch_add(1, Ordering::Relaxed);
            vec![4, 5, 6]
        });
        assert_eq!(warm, cold, "corrupt entry must fall back to recompute");
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let counts = fresh.cache_counts();
        assert_eq!(counts.disk_decode_errors, 1);
        assert_eq!(counts.disk_hits, 0);
        assert_eq!(counts.computes, 1);
        // The recompute rewrote the entry, so a third engine disk-hits.
        let third = Engine::new(EngineConfig {
            disk_cache: Some(dir.clone()),
            ..EngineConfig::default()
        });
        let _: Vec<u64> = third.cached("healed", "point", || panic!("entry must be healed"));
        assert_eq!(third.cache_counts().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_readback_reports_resolved_settings() {
        let dir = scratch_dir("readback");
        let eng = Engine::new(EngineConfig {
            jobs: 3,
            disk_cache: Some(dir.clone()),
            progress: true,
        });
        let cfg = eng.config();
        assert_eq!(cfg.jobs, 3);
        assert_eq!(cfg.disk_cache.as_deref(), Some(dir.as_path()));
        assert!(cfg.progress);
        // jobs: 0 resolves to a concrete count.
        assert!(Engine::new(EngineConfig::default()).config().jobs >= 1);
    }

    #[test]
    fn jobs_env_parsing() {
        assert_eq!(jobs_from_env(Some("4")), Some(4));
        assert_eq!(jobs_from_env(Some(" 2 ")), Some(2));
        assert_eq!(jobs_from_env(Some("0")), None, "zero means unset");
        assert_eq!(jobs_from_env(Some("many")), None);
        assert_eq!(jobs_from_env(None), None);
    }
}
