//! Parallel experiment-execution engine with a content-addressed result
//! cache.
//!
//! Every figure driver ultimately fans out `(CoreConfig, Benchmark, seed,
//! max_ops)` simulation points; this module runs those points across a
//! [`std::thread::scope`] worker pool (std-only — no external thread-pool
//! dependency) while keeping results bit-identical to the serial path and
//! output ordering stable.
//!
//! Two cache layers sit in front of the simulator:
//!
//! * an **in-process memo** so one `figures all` run never simulates the
//!   same point twice (e.g. the Fig. 12 bottom-up study re-reads the same
//!   windowed runs for all 39 component targets), and
//! * an optional **on-disk JSON cache** so a warm re-run (including the
//!   `--out` artifact child process) skips already-simulated points.
//!
//! Keys are content hashes of the full serialized configuration plus the
//! workload identity, seed, and op budget — a config tweak, new seed, or
//! different budget is a different point. Per-job wall-clock timing and a
//! progress line (on stderr, so `--json` stdout stays parseable) make
//! long runs observable.

use crate::scenario::{run_benchmark, ScenarioResult, SuiteResult};
use p10_uarch::CoreConfig;
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How an [`Engine`] should run jobs and cache results.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Directory for the on-disk JSON cache; `None` disables it (the
    /// in-process memo is always on).
    pub disk_cache: Option<PathBuf>,
    /// Print a per-job progress/timing line to stderr.
    pub progress: bool,
}

/// The execution engine: a worker-pool runner plus the two cache layers.
pub struct Engine {
    jobs: usize,
    disk_cache: Option<PathBuf>,
    progress: bool,
    memo: Mutex<HashMap<String, Box<dyn Any + Send + Sync>>>,
    job_counter: AtomicUsize,
}

impl Engine {
    /// Builds an engine from a configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let jobs = if config.jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.jobs
        };
        Engine {
            jobs,
            disk_cache: config.disk_cache,
            progress: config.progress,
            memo: Mutex::new(HashMap::new()),
            job_counter: AtomicUsize::new(0),
        }
    }

    /// The worker-pool width this engine runs with.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Order-preserving parallel map: applies `f` to every item on a
    /// scoped worker pool and returns results in item order.
    ///
    /// With one worker (or one item) this degenerates to a plain serial
    /// map, so results are bit-identical either way; `f` only ever sees
    /// `(index, item)` and must not depend on execution order.
    pub fn run_jobs_par<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|c| {
                c.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker completed every claimed job")
            })
            .collect()
    }

    /// Memoized computation: returns the cached value for `key` if any
    /// layer holds it, otherwise runs `compute`, stores the result in
    /// both layers, and returns it.
    ///
    /// `label` is only for the progress line. Results must be
    /// deterministic functions of the key — the engine trusts the caller
    /// that equal keys mean equal results.
    pub fn cached<T, F>(&self, label: &str, key: &str, compute: F) -> T
    where
        T: Clone + Serialize + Deserialize + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let key = format!("{:016x}", fnv1a64(key.as_bytes()));
        if let Some(hit) = self.memo_get::<T>(&key) {
            self.progress_line(label, "memo hit");
            return hit;
        }
        if let Some(hit) = self.disk_get::<T>(&key) {
            self.memo_put(&key, hit.clone());
            self.progress_line(label, "disk hit");
            return hit;
        }
        let start = Instant::now();
        let value = compute();
        self.progress_line(label, &format!("{:.2}s", start.elapsed().as_secs_f64()));
        self.disk_put(&key, &value);
        self.memo_put(&key, value.clone());
        value
    }

    /// Runs `f`, printing a per-job timing line (subject to the progress
    /// setting) — for expensive steps that are not cacheable points.
    pub fn timed<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.progress_line(label, &format!("{:.2}s", start.elapsed().as_secs_f64()));
        r
    }

    /// One (config, benchmark, seed, ops) simulation point through the
    /// cache.
    #[must_use]
    pub fn run_benchmark(
        &self,
        cfg: &CoreConfig,
        bench: &Benchmark,
        seed: u64,
        max_ops: u64,
    ) -> ScenarioResult {
        let label = format!(
            "{} @ {} x{} seed={seed} ops={max_ops}",
            bench.name,
            cfg.name,
            cfg.smt.threads()
        );
        self.cached(&label, &point_key(cfg, bench, seed, max_ops), || {
            run_benchmark(cfg, bench, seed, max_ops)
        })
    }

    /// Runs a whole suite on one configuration across the worker pool,
    /// result order matching the suite order (same as the serial path).
    #[must_use]
    pub fn run_suite(
        &self,
        cfg: &CoreConfig,
        suite: &[Benchmark],
        seed: u64,
        max_ops: u64,
    ) -> SuiteResult {
        SuiteResult {
            config: cfg.name.clone(),
            results: self.run_jobs_par(suite, |_, b| self.run_benchmark(cfg, b, seed, max_ops)),
        }
    }

    fn memo_get<T: Clone + 'static>(&self, key: &str) -> Option<T> {
        self.memo
            .lock()
            .expect("memo poisoned")
            .get(key)
            .and_then(|v| v.downcast_ref::<T>())
            .cloned()
    }

    fn memo_put<T: Send + Sync + 'static>(&self, key: &str, value: T) {
        self.memo
            .lock()
            .expect("memo poisoned")
            .insert(key.to_owned(), Box::new(value));
    }

    fn disk_get<T: Deserialize>(&self, key: &str) -> Option<T> {
        let path = self.disk_cache.as_ref()?.join(format!("{key}.json"));
        let text = std::fs::read_to_string(path).ok()?;
        // A corrupt or stale entry is a miss, not an error.
        serde_json::from_str(&text).ok()
    }

    fn disk_put<T: Serialize>(&self, key: &str, value: &T) {
        let Some(dir) = &self.disk_cache else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return; // cache is best-effort; simulation results still stand
        }
        let Ok(text) = serde_json::to_string(value) else {
            return;
        };
        // Write-then-rename so concurrent workers never observe a torn
        // entry; collisions on the same key write identical bytes anyway.
        let tmp = dir.join(format!("{key}.tmp.{}", std::process::id()));
        let final_path = dir.join(format!("{key}.json"));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &final_path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn progress_line(&self, label: &str, outcome: &str) {
        if self.progress {
            let n = self.job_counter.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!("[runner #{n}] {label}: {outcome}");
        }
    }
}

/// Stable content key for one simulation point: the full serialized
/// configuration and benchmark, plus seed and op budget.
#[must_use]
pub fn point_key(cfg: &CoreConfig, bench: &Benchmark, seed: u64, max_ops: u64) -> String {
    format!(
        "scenario|{}|{}|{seed}|{max_ops}",
        serde_json::to_string(cfg).expect("config serializes"),
        serde_json::to_string(bench).expect("benchmark serializes"),
    )
}

/// 64-bit FNV-1a — deterministic across runs and Rust versions, which the
/// on-disk cache requires (`DefaultHasher` makes no such promise).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

static GLOBAL: OnceLock<Engine> = OnceLock::new();

/// Installs the process-wide engine. Returns `false` if one was already
/// installed (first caller wins); call before any experiment runs.
pub fn configure(config: EngineConfig) -> bool {
    GLOBAL.set(Engine::new(config)).is_ok()
}

/// The process-wide engine, defaulting to all CPUs, memo-only caching,
/// and no progress output if [`configure`] was never called.
pub fn engine() -> &'static Engine {
    GLOBAL.get_or_init(|| Engine::new(EngineConfig::default()))
}

/// The default on-disk cache location honoring `P10SIM_CACHE_DIR`.
#[must_use]
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("P10SIM_CACHE_DIR")
        .map_or_else(|| Path::new("target").join("p10sim-cache"), PathBuf::from)
}

/// [`Engine::run_jobs_par`] on the process-wide engine.
pub fn run_jobs_par<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    engine().run_jobs_par(items, f)
}

/// [`Engine::run_benchmark`] on the process-wide engine.
#[must_use]
pub fn run_benchmark_cached(
    cfg: &CoreConfig,
    bench: &Benchmark,
    seed: u64,
    max_ops: u64,
) -> ScenarioResult {
    engine().run_benchmark(cfg, bench, seed, max_ops)
}

/// [`Engine::run_suite`] on the process-wide engine.
#[must_use]
pub fn run_suite_par(
    cfg: &CoreConfig,
    suite: &[Benchmark],
    seed: u64,
    max_ops: u64,
) -> SuiteResult {
    engine().run_suite(cfg, suite, seed, max_ops)
}

/// [`Engine::cached`] on the process-wide engine.
pub fn cached<T, F>(label: &str, key: &str, compute: F) -> T
where
    T: Clone + Serialize + Deserialize + Send + Sync + 'static,
    F: FnOnce() -> T,
{
    engine().cached(label, key, compute)
}

/// [`Engine::timed`] on the process-wide engine.
pub fn timed<R>(label: &str, f: impl FnOnce() -> R) -> R {
    engine().timed(label, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn scratch_dir(tag: &str) -> PathBuf {
        static UNIQ: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "p10sim-runner-{tag}-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn parallel_map_preserves_order() {
        let eng = Engine::new(EngineConfig {
            jobs: 4,
            ..EngineConfig::default()
        });
        let items: Vec<u64> = (0..100).collect();
        let out = eng.run_jobs_par(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn memo_skips_recompute() {
        let eng = Engine::new(EngineConfig::default());
        let calls = AtomicU32::new(0);
        for _ in 0..3 {
            let v: u64 = eng.cached("memo-test", "k", || {
                calls.fetch_add(1, Ordering::Relaxed);
                7
            });
            assert_eq!(v, 7);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disk_cache_survives_a_fresh_engine() {
        let dir = scratch_dir("disk");
        let mk = || {
            Engine::new(EngineConfig {
                disk_cache: Some(dir.clone()),
                ..EngineConfig::default()
            })
        };
        let cold: Vec<f64> = mk().cached("cold", "point", || vec![1.5, 2.0, -3.25]);
        let warm: Vec<f64> = mk().cached("warm", "point", || panic!("must hit the disk cache"));
        assert_eq!(cold, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vector for FNV-1a 64: hash of empty input is the
        // offset basis; "a" is a published test value.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
