//! A runnable workload: program, pre-initialized memory, and metadata.

use p10_isa::{ExecError, Machine, Program, Trace};
use serde::{Deserialize, Serialize};

/// A named span of instructions forming a "function" of the workload
/// (used by the Chopstix-style proxy extractor).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionSpan {
    /// Function name.
    pub name: String,
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
}

impl FunctionSpan {
    /// Whether an instruction index falls inside this function.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        (self.start..self.end).contains(&idx)
    }
}

/// A fully prepared workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (e.g. `"mcfish"`).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The machine with memory pre-initialized (registers reset).
    pub machine: Machine,
    /// Function spans for hot-function analysis (may be empty).
    pub functions: Vec<FunctionSpan>,
}

impl Workload {
    /// Functionally executes the workload for up to `max_ops` dynamic
    /// instructions and returns the trace.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors (which indicate a bug in the
    /// workload generator).
    pub fn trace(&self, max_ops: u64) -> Result<Trace, ExecError> {
        let mut m = self.machine.clone();
        m.run(&self.program, max_ops)
    }

    /// Like [`Workload::trace`] but panics on error, for generator code
    /// paths where failure is a bug.
    ///
    /// # Panics
    ///
    /// Panics if functional execution fails.
    #[must_use]
    pub fn trace_or_panic(&self, max_ops: u64) -> Trace {
        self.trace(max_ops)
            .unwrap_or_else(|e| panic!("workload {} failed to execute: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_isa::{ProgramBuilder, Reg};

    #[test]
    fn function_span_contains() {
        let f = FunctionSpan {
            name: "f".into(),
            start: 4,
            end: 8,
        };
        assert!(!f.contains(3));
        assert!(f.contains(4));
        assert!(f.contains(7));
        assert!(!f.contains(8));
    }

    #[test]
    fn trace_replays_from_pristine_machine() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(3), 1);
        b.addi(Reg::gpr(3), Reg::gpr(3), 2);
        let w = Workload {
            name: "t".into(),
            program: b.build(),
            machine: Machine::new(),
            functions: vec![],
        };
        let t1 = w.trace(100).unwrap();
        let t2 = w.trace(100).unwrap();
        assert_eq!(t1.len(), 2);
        assert_eq!(t1.ops, t2.ops, "tracing must be repeatable");
    }
}
