//! A runnable workload: program, pre-initialized memory, and metadata.

use p10_isa::{ExecError, Fnv1aHasher, Machine, Program, Trace, TraceView};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// A named span of instructions forming a "function" of the workload
/// (used by the Chopstix-style proxy extractor).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionSpan {
    /// Function name.
    pub name: String,
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
}

impl FunctionSpan {
    /// Whether an instruction index falls inside this function.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        (self.start..self.end).contains(&idx)
    }
}

/// A fully prepared workload.
///
/// Workloads are immutable once built: trace synthesis is memoized
/// process-wide behind [`Workload::content_hash`] (see [`crate::arena`]),
/// so mutating the program or machine after the first trace request is
/// unsupported.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (e.g. `"mcfish"`).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The machine with memory pre-initialized (registers reset).
    pub machine: Machine,
    /// Function spans for hot-function analysis (may be empty).
    pub functions: Vec<FunctionSpan>,
    /// Lazily computed content hash (the arena key).
    fingerprint: OnceLock<u64>,
}

impl Workload {
    /// Assembles a workload from its parts.
    #[must_use]
    pub fn new(
        name: String,
        program: Program,
        machine: Machine,
        functions: Vec<FunctionSpan>,
    ) -> Self {
        Workload {
            name,
            program,
            machine,
            functions,
            fingerprint: OnceLock::new(),
        }
    }

    /// A stable FNV-1a digest of the full workload content — name,
    /// program, pre-initialized machine state (including the memory
    /// image), and function spans. Two workloads with equal hashes
    /// produce identical traces; this keys the process-wide trace arena.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = Fnv1aHasher::new();
            self.name.hash(&mut h);
            self.program.hash(&mut h);
            self.machine.hash(&mut h);
            for f in &self.functions {
                f.name.hash(&mut h);
                f.start.hash(&mut h);
                f.end.hash(&mut h);
            }
            h.finish()
        })
    }

    /// Functionally executes the workload for up to `max_ops` dynamic
    /// instructions and returns an owned trace.
    ///
    /// Routed through the process-wide trace arena (when enabled), so
    /// repeated requests re-use one synthesis; the returned `Trace` is a
    /// private copy — prefer [`Workload::trace_view`] to stay zero-copy.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors (which indicate a bug in the
    /// workload generator).
    pub fn trace(&self, max_ops: u64) -> Result<Trace, ExecError> {
        if crate::arena::enabled() {
            Ok(self.trace_view(max_ops)?.to_trace())
        } else {
            self.trace_uncached(max_ops)
        }
    }

    /// Functionally executes the workload, bypassing the arena — the
    /// legacy synthesize-per-call path (`--no-trace-arena`).
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors.
    pub fn trace_uncached(&self, max_ops: u64) -> Result<Trace, ExecError> {
        let mut m = self.machine.clone();
        m.run(&self.program, max_ops)
    }

    /// A zero-copy view of the first `max_ops` executed ops, served from
    /// the process-wide trace arena: the first request for this workload
    /// synthesizes, every later request (equal, shorter, or stagger-offset
    /// slices of it) is range arithmetic on the shared buffer. When the
    /// arena is disabled this synthesizes privately, preserving the exact
    /// legacy op stream.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors.
    pub fn trace_view(&self, max_ops: u64) -> Result<TraceView, ExecError> {
        if crate::arena::enabled() {
            crate::arena::global()
                .view_or_synth(self.content_hash(), max_ops, |cap| self.trace_uncached(cap))
        } else {
            Ok(self.trace_uncached(max_ops)?.into())
        }
    }

    /// Like [`Workload::trace_view`] but panics on error.
    ///
    /// # Panics
    ///
    /// Panics if functional execution fails.
    #[must_use]
    pub fn trace_view_or_panic(&self, max_ops: u64) -> TraceView {
        self.trace_view(max_ops)
            .unwrap_or_else(|e| panic!("workload {} failed to execute: {e}", self.name))
    }

    /// Like [`Workload::trace`] but panics on error, for generator code
    /// paths where failure is a bug.
    ///
    /// # Panics
    ///
    /// Panics if functional execution fails.
    #[must_use]
    pub fn trace_or_panic(&self, max_ops: u64) -> Trace {
        self.trace(max_ops)
            .unwrap_or_else(|e| panic!("workload {} failed to execute: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_isa::{ProgramBuilder, Reg};

    #[test]
    fn function_span_contains() {
        let f = FunctionSpan {
            name: "f".into(),
            start: 4,
            end: 8,
        };
        assert!(!f.contains(3));
        assert!(f.contains(4));
        assert!(f.contains(7));
        assert!(!f.contains(8));
    }

    #[test]
    fn trace_replays_from_pristine_machine() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(3), 1);
        b.addi(Reg::gpr(3), Reg::gpr(3), 2);
        let w = Workload::new("t".into(), b.build(), Machine::new(), vec![]);
        let t1 = w.trace(100).unwrap();
        let t2 = w.trace(100).unwrap();
        assert_eq!(t1.len(), 2);
        assert_eq!(t1.ops, t2.ops, "tracing must be repeatable");
    }

    #[test]
    fn content_hash_keys_on_every_part() {
        let build = |imm: i64, name: &str, mem_val: Option<u64>| {
            let mut b = ProgramBuilder::new();
            b.li(Reg::gpr(3), imm);
            let mut m = Machine::new();
            if let Some(v) = mem_val {
                m.mem.write_u64(0x1000, v);
            }
            Workload::new(name.into(), b.build(), m, vec![])
        };
        let base = build(1, "w", None);
        assert_eq!(base.content_hash(), build(1, "w", None).content_hash());
        assert_ne!(base.content_hash(), build(2, "w", None).content_hash());
        assert_ne!(base.content_hash(), build(1, "x", None).content_hash());
        assert_ne!(base.content_hash(), build(1, "w", Some(7)).content_hash());
        // Function spans are part of the key too.
        let mut spanned = build(1, "w", None);
        spanned.functions.push(FunctionSpan {
            name: "f".into(),
            start: 0,
            end: 1,
        });
        let spanned = Workload::new(
            spanned.name.clone(),
            spanned.program.clone(),
            spanned.machine.clone(),
            spanned.functions.clone(),
        );
        assert_ne!(base.content_hash(), spanned.content_hash());
    }

    #[test]
    fn trace_view_matches_trace_with_and_without_arena() {
        let w = crate::specint_like()[8].workload(31_337);
        let direct = w.trace_uncached(1_500).unwrap();
        let view = w.trace_view(1_500).unwrap();
        assert_eq!(
            view.ops(),
            &direct.ops[..],
            "arena view must be bit-identical"
        );
        let owned = w.trace(1_500).unwrap();
        assert_eq!(owned.ops, direct.ops);
    }
}
