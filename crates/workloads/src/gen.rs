//! Workload synthesis building blocks.
//!
//! [`WorkloadBuilder`] wraps a program builder plus deferred memory
//! initialization (including *label fixups* so jump tables in data memory
//! can hold code addresses resolved at build time). [`synthesize`] turns a
//! behavioural [`Signature`] into a runnable [`Workload`] — every
//! benchmark in [`crate::suite`] is one signature.

use crate::workload::{FunctionSpan, Workload};
use p10_isa::{Cond, Inst, Label, Machine, ProgramBuilder, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Data-segment base address for synthesized workloads.
pub const DATA_BASE: u64 = 0x100_0000;

/// Behavioural signature of a synthetic benchmark.
///
/// Each field is a knob over one micro-architectural behaviour; the suite
/// in [`crate::suite`] documents which real-benchmark trait each setting
/// mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Signature {
    /// Number of indirect-dispatch handlers ("hot functions"); 0 disables
    /// the dispatch block.
    pub handlers: usize,
    /// Zipf skew of handler weights (higher = more concentrated).
    pub zipf_alpha: f64,
    /// Fraction of conditional branches whose outcome is data-random
    /// (0.0 = fully predictable periodic patterns, 1.0 = coin flips).
    pub branch_entropy: f64,
    /// Data footprint in KiB (streamed loads sweep this).
    pub footprint_kb: u64,
    /// Pointer-chase loads per iteration (dependent, cache-hostile when
    /// the ring exceeds the caches).
    pub chase_loads: u32,
    /// Strided loads per iteration.
    pub stride_loads: u32,
    /// Stores per iteration (emitted in adjacent pairs when >= 2, making
    /// them fusable/gatherable).
    pub stores: u32,
    /// Dependent integer ALU chain length per iteration.
    pub int_chain: u32,
    /// Independent integer ALU ops per iteration.
    pub int_parallel: u32,
    /// Integer multiplies per iteration.
    pub muls: u32,
    /// VSX double-precision FMAs per iteration.
    pub vsx_fmas: u32,
    /// Conditional branches per iteration.
    pub branches: u32,
    /// Leaf functions called (bl/blr) per iteration — exercises the
    /// return stack.
    pub calls: u32,
    /// Extra padding blocks per handler, to spread code and pressure the
    /// L1I.
    pub code_padding: u32,
}

impl std::hash::Hash for Signature {
    /// Hashes every knob (floats by bit pattern) — with the generator
    /// seed, this identifies the exact workload a signature synthesizes,
    /// keying the process-wide workload memo.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.handlers.hash(state);
        self.zipf_alpha.to_bits().hash(state);
        self.branch_entropy.to_bits().hash(state);
        self.footprint_kb.hash(state);
        self.chase_loads.hash(state);
        self.stride_loads.hash(state);
        self.stores.hash(state);
        self.int_chain.hash(state);
        self.int_parallel.hash(state);
        self.muls.hash(state);
        self.vsx_fmas.hash(state);
        self.branches.hash(state);
        self.calls.hash(state);
        self.code_padding.hash(state);
    }
}

impl Default for Signature {
    fn default() -> Self {
        Signature {
            handlers: 0,
            zipf_alpha: 1.0,
            branch_entropy: 0.3,
            footprint_kb: 64,
            chase_loads: 0,
            stride_loads: 4,
            stores: 2,
            int_chain: 4,
            int_parallel: 6,
            muls: 1,
            vsx_fmas: 0,
            branches: 3,
            calls: 1,
            code_padding: 0,
        }
    }
}

/// Builder pairing a program with deferred memory initialization.
#[derive(Debug)]
pub struct WorkloadBuilder {
    /// The underlying program builder.
    pub b: ProgramBuilder,
    mem_words: Vec<(u64, u64)>,
    fixups: Vec<(u64, Label)>,
    functions: Vec<FunctionSpan>,
    rng: SmallRng,
}

impl WorkloadBuilder {
    /// Creates a builder with a deterministic RNG.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WorkloadBuilder {
            b: ProgramBuilder::new(),
            mem_words: Vec::new(),
            fixups: Vec::new(),
            functions: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Schedules a 64-bit memory write applied before execution.
    pub fn init_word(&mut self, addr: u64, value: u64) {
        self.mem_words.push((addr, value));
    }

    /// Schedules writing the *code address* of `label` at `addr`.
    pub fn init_code_ptr(&mut self, addr: u64, label: Label) {
        self.fixups.push((addr, label));
    }

    /// Records that instructions `[start, end)` form a named function.
    pub fn record_function(&mut self, name: &str, start: usize, end: usize) {
        self.functions.push(FunctionSpan {
            name: name.to_owned(),
            start,
            end,
        });
    }

    /// Access to the deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Finalizes into a [`Workload`].
    #[must_use]
    pub fn finish(self, name: &str) -> Workload {
        let program = self.b.build();
        let mut machine = Machine::new();
        for (addr, val) in self.mem_words {
            machine.mem.write_u64(addr, val);
        }
        for (addr, label) in self.fixups {
            machine.mem.write_u64(addr, program.resolve_addr(label));
        }
        Workload::new(name.to_owned(), program, machine, self.functions)
    }
}

// Register conventions inside synthesized loops:
//   r1  = streaming data pointer      r2  = xorshift state
//   r3  = pointer-chase cursor        r5  = scratch
//   r6  = periodic counter            r7  = accumulator
//   r8  = jump-table base             r9..r27 = ALU working set
//   r28 = footprint base              r29 = footprint limit

/// Emits a xorshift step on `r2` (3 dependent ALU ops).
fn emit_scramble(b: &mut ProgramBuilder) {
    b.push(Inst::Srdi {
        rt: Reg::gpr(5),
        ra: Reg::gpr(2),
        sh: 7,
    });
    b.push(Inst::Xor {
        rt: Reg::gpr(2),
        ra: Reg::gpr(2),
        rb: Reg::gpr(5),
    });
    b.push(Inst::Sldi {
        rt: Reg::gpr(5),
        ra: Reg::gpr(2),
        sh: 9,
    });
    b.push(Inst::Xor {
        rt: Reg::gpr(2),
        ra: Reg::gpr(2),
        rb: Reg::gpr(5),
    });
}

/// Synthesizes a workload from a behavioural signature.
///
/// The program layout is: prologue (constants, counter), main loop
/// (scramble → dispatch → calls → loads → stores → compute → branches),
/// with handlers and leaf functions after the main loop. The loop runs
/// `iterations` times (use a large value and bound execution with
/// `max_ops` instead — the paper's proxies are endless loops).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn synthesize(name: &str, sig: &Signature, seed: u64, iterations: i64) -> Workload {
    let mut w = WorkloadBuilder::new(seed ^ 0x5eed);
    let footprint = sig.footprint_kb.max(1) * 1024;
    let table_base = DATA_BASE + footprint + 4096;
    let ring_base = table_base + 8 * 64;

    // ---- prologue ----
    {
        let b = &mut w.b;
        b.li(Reg::gpr(1), DATA_BASE as i64);
        b.li(Reg::gpr(28), DATA_BASE as i64);
        b.li(Reg::gpr(29), (DATA_BASE + footprint) as i64);
        b.li(Reg::gpr(2), 0x9e37_79b9_7f4a_i64 ^ (seed as i64 & 0xffff));
        b.li(Reg::gpr(3), ring_base as i64);
        b.li(Reg::gpr(6), 0);
        b.li(Reg::gpr(7), 0);
        b.li(Reg::gpr(8), table_base as i64);
        for r in 9..28 {
            b.li(Reg::gpr(r), i64::from(r) * 3 + 1);
        }
        b.li(Reg::gpr(26), 11); // dispatch-walk stride (coprime with 64)
        b.li(Reg::gpr(30), iterations);
        b.mtctr(Reg::gpr(30));
    }

    // Labels we need before emitting the loop body.
    let join = w.b.label();
    let handler_labels: Vec<Label> = (0..sig.handlers).map(|_| w.b.label()).collect();
    let leaf_labels: Vec<Label> = (0..sig.calls.max(1) as usize)
        .map(|_| w.b.label())
        .collect();

    // Zipf-weighted jump table (64 slots).
    if sig.handlers > 0 {
        let weights: Vec<f64> = (0..sig.handlers)
            .map(|r| 1.0 / ((r + 1) as f64).powf(sig.zipf_alpha))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut slots = Vec::with_capacity(64);
        for (h, wgt) in weights.iter().enumerate() {
            let n = ((wgt / total) * 64.0).round().max(1.0) as usize;
            for _ in 0..n {
                slots.push(h);
            }
        }
        slots.truncate(64);
        while slots.len() < 64 {
            slots.push(0);
        }
        for (i, h) in slots.iter().enumerate() {
            w.init_code_ptr(table_base + 8 * i as u64, handler_labels[*h]);
        }
    }

    // ---- main loop ----
    let top = w.b.bind_label();
    let loop_start = w.b.len();
    {
        let b = &mut w.b;
        emit_scramble(b);

        // Periodic counter.
        b.addi(Reg::gpr(6), Reg::gpr(6), 1);

        // Indirect dispatch through the jump table. Real dispatch streams
        // (interpreters, virtual calls) are mostly repeating with rare
        // excursions, so the slot index follows a deterministic walk and,
        // with probability 2^-gate_bits (scaled by the entropy knob),
        // jumps to a fully random slot. A long-context indirect predictor
        // learns the walk; a short-context one cannot disambiguate it.
        if sig.handlers > 0 {
            let gate_bits = (4.0 - sig.branch_entropy * 4.0).round().clamp(1.0, 4.0) as u8;
            // t = (r2 >> 29) & ((1 << gate_bits) - 1)
            b.push(Inst::Srdi {
                rt: Reg::gpr(4),
                ra: Reg::gpr(2),
                sh: 29,
            });
            b.push(Inst::Sldi {
                rt: Reg::gpr(4),
                ra: Reg::gpr(4),
                sh: 64 - gate_bits,
            });
            b.push(Inst::Srdi {
                rt: Reg::gpr(4),
                ra: Reg::gpr(4),
                sh: 64 - gate_bits,
            });
            // v = (t != 0) as mask source: (t | -t) >> 63
            b.push(Inst::Neg {
                rt: Reg::gpr(5),
                ra: Reg::gpr(4),
            });
            b.push(Inst::Or {
                rt: Reg::gpr(5),
                ra: Reg::gpr(5),
                rb: Reg::gpr(4),
            });
            b.push(Inst::Srdi {
                rt: Reg::gpr(5),
                ra: Reg::gpr(5),
                sh: 63,
            });
            // r5 = 63 * (1 - v): all-ones 6-bit mask iff t == 0
            b.li(Reg::gpr(4), 1);
            b.sub(Reg::gpr(4), Reg::gpr(4), Reg::gpr(5));
            b.push(Inst::Sldi {
                rt: Reg::gpr(5),
                ra: Reg::gpr(4),
                sh: 6,
            });
            b.sub(Reg::gpr(5), Reg::gpr(5), Reg::gpr(4));
            // rand6 = (r2 >> 13) & 63, gated by the mask
            b.push(Inst::Srdi {
                rt: Reg::gpr(4),
                ra: Reg::gpr(2),
                sh: 13,
            });
            b.push(Inst::Sldi {
                rt: Reg::gpr(4),
                ra: Reg::gpr(4),
                sh: 58,
            });
            b.push(Inst::Srdi {
                rt: Reg::gpr(4),
                ra: Reg::gpr(4),
                sh: 58,
            });
            b.push(Inst::And {
                rt: Reg::gpr(4),
                ra: Reg::gpr(4),
                rb: Reg::gpr(5),
            });
            // slot = ((11 * iter) ^ gated_rand) & 63, times 8
            b.mulld(Reg::gpr(5), Reg::gpr(6), Reg::gpr(26)); // r26 = 11
            b.push(Inst::Xor {
                rt: Reg::gpr(5),
                ra: Reg::gpr(5),
                rb: Reg::gpr(4),
            });
            b.push(Inst::Sldi {
                rt: Reg::gpr(5),
                ra: Reg::gpr(5),
                sh: 58,
            });
            b.push(Inst::Srdi {
                rt: Reg::gpr(5),
                ra: Reg::gpr(5),
                sh: 55,
            });
            b.push(Inst::Ldx {
                rt: Reg::gpr(4),
                ra: Reg::gpr(8),
                rb: Reg::gpr(5),
            });
            b.push(Inst::Mtctr { ra: Reg::gpr(4) });
            b.push(Inst::Bctr);
        }
    }
    // Dispatch lands back here.
    if sig.handlers > 0 {
        w.b.bind(join);
    } else {
        // keep the label bound to satisfy the builder
        w.b.bind(join);
    }

    {
        let b = &mut w.b;
        // Leaf calls (predictable alternation).
        for k in 0..sig.calls as usize {
            b.bl(leaf_labels[k % leaf_labels.len()]);
        }

        // Pointer chase (dependent loads through the ring).
        for _ in 0..sig.chase_loads {
            b.ld(Reg::gpr(3), Reg::gpr(3), 0);
        }

        // Strided loads sweeping the footprint: one cache line per load,
        // advancing by the full group each iteration, so the working set
        // is re-visited once the sweep wraps (this is what makes L2
        // capacity matter).
        for k in 0..sig.stride_loads {
            b.ld(
                Reg::gpr(9 + (k % 4) as u16),
                Reg::gpr(1),
                i64::from(k) * 128,
            );
        }
        if sig.stride_loads > 0 {
            b.addi(Reg::gpr(1), Reg::gpr(1), i64::from(sig.stride_loads) * 128);
        }

        // Wrap the streaming pointer at the footprint limit.
        // cmp r1, r29 ; blt nowrap ; mr r1, r28
        let bb = &mut *w.b.push(Inst::Cmp {
            bf: Reg::cr(2),
            ra: Reg::gpr(1),
            rb: Reg::gpr(29),
        });
        let nowrap = bb.label();
        bb.bc(Cond::Lt, Reg::cr(2), nowrap);
        bb.addi(Reg::gpr(1), Reg::gpr(28), 0);
        bb.bind(nowrap);

        // Stores (adjacent pairs are fusable / gatherable).
        for k in 0..sig.stores {
            bb.std(Reg::gpr(7), Reg::gpr(28), 512 + i64::from(k) * 8);
        }

        // Dependent integer chain.
        for _ in 0..sig.int_chain {
            bb.addi(Reg::gpr(7), Reg::gpr(7), 1);
        }
        // Independent integer ops (r9..r15; r16..r19 are reserved for the
        // periodic branch counters).
        for k in 0..sig.int_parallel {
            let r = 9 + (k % 7) as u16;
            bb.addi(Reg::gpr(r), Reg::gpr(r), 3);
        }
        for _ in 0..sig.muls {
            bb.mulld(Reg::gpr(24), Reg::gpr(24), Reg::gpr(25));
        }

        // VSX block.
        for k in 0..sig.vsx_fmas {
            let xt = 40 + (k % 8) as u16;
            bb.push(Inst::Xvmaddadp {
                xt: Reg::vsr(xt),
                xa: Reg::vsr(32),
                xb: Reg::vsr(33),
            });
        }
    }

    // Conditional branches with controlled entropy.
    let random_branches = (f64::from(sig.branches) * sig.branch_entropy).round() as u32;
    for k in 0..sig.branches {
        let b = &mut w.b;
        if k < random_branches {
            // Data-random but biased: test two scrambled bits, branch
            // taken ~75% of the time (real data-dependent branches are
            // biased, not coin flips; predictors get them wrong on the
            // ~25% minority outcomes).
            b.push(Inst::Srdi {
                rt: Reg::gpr(5),
                ra: Reg::gpr(2),
                sh: (13 + k * 3) as u8 & 63,
            });
            b.push(Inst::Sldi {
                rt: Reg::gpr(5),
                ra: Reg::gpr(5),
                sh: 62,
            });
            b.cmpi(Reg::cr(0), Reg::gpr(5), 0);
            let skip = b.label();
            b.bc(Cond::Eq, Reg::cr(0), skip);
            b.addi(Reg::gpr(7), Reg::gpr(7), 5);
            b.bind(skip);
        } else {
            // Periodic: a private mod-P counter; the branch is taken P-1
            // out of P times. Short periods are learnable by any history
            // predictor; long periods (24+) exceed the base predictor's
            // history window and reward POWER10's long-history component.
            let periods = [5i64, 24, 12, 7, 48, 9];
            let pk = (k - random_branches) as usize;
            let reg = Reg::gpr(16 + (pk % 4) as u16);
            let period = periods[pk % periods.len()];
            b.addi(reg, reg, 1);
            b.cmpi(Reg::cr(0), reg, period);
            let wrap = b.label();
            b.bc(Cond::Lt, Reg::cr(0), wrap); // taken P-1 of P times
            b.li(reg, 0);
            b.addi(Reg::gpr(7), Reg::gpr(7), 5);
            b.bind(wrap);
        }
    }

    w.b.bdnz(top);
    let after_loop = w.b.label();
    w.b.b(after_loop);
    let loop_end = w.b.len();
    w.record_function("main_loop", loop_start, loop_end);

    // ---- handlers ----
    for (h, label) in handler_labels.iter().enumerate() {
        let start = w.b.len();
        w.b.bind(*label);
        // Handler body: a few ops, heavier for low-ranked (rare) handlers,
        // plus code padding for icache pressure.
        let body = 4 + (h % 5) as u32 + sig.code_padding * 8;
        for k in 0..body {
            let r = 9 + (k % 7) as u16;
            w.b.addi(Reg::gpr(r), Reg::gpr(r), i64::from(h as u32 + 1));
        }
        w.b.b(join);
        let end = w.b.len();
        w.record_function(&format!("handler_{h}"), start, end);
    }

    // ---- leaf functions ----
    for (i, label) in leaf_labels.iter().enumerate() {
        let start = w.b.len();
        w.b.bind(*label);
        for k in 0..3 {
            let r = 20 + ((i + k) % 6) as u16;
            w.b.addi(Reg::gpr(r), Reg::gpr(r), 7);
        }
        w.b.blr();
        let end = w.b.len();
        w.record_function(&format!("leaf_{i}"), start, end);
    }

    w.b.bind(after_loop);
    w.b.nop();

    // ---- memory initialization ----
    // Pointer-chase ring: shuffled permutation over the footprint.
    if sig.chase_loads > 0 {
        let nodes = ((sig.footprint_kb * 1024) / 128).clamp(16, 65_536) as usize;
        let mut order: Vec<u64> = (0..nodes as u64).collect();
        // Fisher-Yates with the builder's RNG.
        for i in (1..order.len()).rev() {
            let j = w.rng().gen_range(0..=i);
            order.swap(i, j);
        }
        for i in 0..nodes {
            let from = ring_base + order[i] * 128;
            let to = ring_base + order[(i + 1) % nodes] * 128;
            w.init_word(from, to);
        }
    }
    // Streamed data: fill with values.
    for k in 0..(footprint / 8).min(4096) {
        let v = k.wrapping_mul(0x2545_f491_4f6c_dd1d);
        w.init_word(DATA_BASE + k * 8, v);
    }

    w.finish(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_workload_executes() {
        let sig = Signature::default();
        let w = synthesize("basic", &sig, 42, 1 << 40);
        let t = w.trace(20_000).expect("must execute");
        assert_eq!(t.len(), 20_000, "endless loop bounded by max_ops");
    }

    #[test]
    fn deterministic_given_seed() {
        let sig = Signature {
            handlers: 4,
            chase_loads: 2,
            ..Signature::default()
        };
        let a = synthesize("d", &sig, 7, 1 << 40).trace_or_panic(5_000);
        let b = synthesize("d", &sig, 7, 1 << 40).trace_or_panic(5_000);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn different_seeds_differ() {
        let sig = Signature {
            handlers: 4,
            branch_entropy: 0.8,
            ..Signature::default()
        };
        let a = synthesize("d", &sig, 1, 1 << 40).trace_or_panic(5_000);
        let b = synthesize("d", &sig, 2, 1 << 40).trace_or_panic(5_000);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn dispatch_produces_indirect_branches() {
        let sig = Signature {
            handlers: 8,
            ..Signature::default()
        };
        let w = synthesize("ind", &sig, 3, 1 << 40);
        let t = w.trace_or_panic(10_000);
        let indirect = t
            .ops
            .iter()
            .filter(|o| {
                o.branch
                    .is_some_and(|bi| bi.kind == p10_isa::BranchKind::Indirect)
            })
            .count();
        assert!(indirect > 50, "dispatch must emit bctr, got {indirect}");
    }

    #[test]
    fn calls_produce_call_return_pairs() {
        let sig = Signature {
            calls: 2,
            ..Signature::default()
        };
        let t = synthesize("c", &sig, 3, 1 << 40).trace_or_panic(10_000);
        let calls = t
            .ops
            .iter()
            .filter(|o| {
                o.branch
                    .is_some_and(|bi| bi.kind == p10_isa::BranchKind::Call)
            })
            .count();
        let rets = t
            .ops
            .iter()
            .filter(|o| {
                o.branch
                    .is_some_and(|bi| bi.kind == p10_isa::BranchKind::Return)
            })
            .count();
        assert!(calls > 100);
        assert!((calls as i64 - rets as i64).abs() <= 2);
    }

    #[test]
    fn chase_loads_follow_the_ring() {
        let sig = Signature {
            chase_loads: 2,
            footprint_kb: 256,
            ..Signature::default()
        };
        let t = synthesize("chase", &sig, 5, 1 << 40).trace_or_panic(20_000);
        // Chase loads must produce loads at non-monotonic addresses.
        let mut chase_addrs: Vec<u64> = t
            .ops
            .iter()
            .filter(|o| o.is_load())
            .filter_map(|o| o.mem)
            .map(|m| m.addr)
            .collect();
        assert!(chase_addrs.len() > 100);
        chase_addrs.dedup();
        assert!(chase_addrs.len() > 50);
    }

    #[test]
    fn functions_recorded_with_spans() {
        let sig = Signature {
            handlers: 6,
            calls: 2,
            ..Signature::default()
        };
        let w = synthesize("fs", &sig, 9, 1 << 40);
        assert!(w.functions.iter().any(|f| f.name == "main_loop"));
        assert_eq!(
            w.functions
                .iter()
                .filter(|f| f.name.starts_with("handler_"))
                .count(),
            6
        );
        for f in &w.functions {
            assert!(f.start < f.end, "span {f:?} must be non-empty");
            assert!(f.end <= w.program.len());
        }
    }

    #[test]
    fn branch_entropy_controls_predictability() {
        // More entropy => more distinct branch-direction randomness. We
        // check via the functional trace: the fraction of taken outcomes
        // of random branches hovers near 50%.
        let sig = Signature {
            branches: 4,
            branch_entropy: 1.0,
            ..Signature::default()
        };
        let t = synthesize("e", &sig, 11, 1 << 40).trace_or_panic(30_000);
        let cond: Vec<bool> = t
            .ops
            .iter()
            .filter_map(|o| o.branch)
            .filter(|bi| bi.kind == p10_isa::BranchKind::Conditional)
            .map(|bi| bi.taken)
            .collect();
        let taken = cond.iter().filter(|&&x| x).count() as f64 / cond.len() as f64;
        assert!(
            taken > 0.25 && taken < 0.75,
            "random branches should be balanced-ish, got {taken}"
        );
    }
}
