//! The process-wide, content-keyed trace arena.
//!
//! Every experiment in the matrix replays the same workloads: ablation,
//! sensitivity, and SMT-scaling sweeps all ask for the same (workload,
//! max-ops) traces, once per config × per SMT thread × per run. Before
//! the arena, each request re-interpreted the program through
//! `p10_isa::exec` from scratch. The arena memoizes synthesis behind a
//! content key (FNV-1a over the workload's name, program, machine image,
//! and function spans), so each distinct trace is synthesized **once per
//! process** and every later request — including shorter-`max_ops`
//! requests and SMT stagger offsets — is served as a zero-copy
//! [`TraceView`] into the shared `Arc<[DynOp]>` buffer.
//!
//! ## Longest-prefix reuse
//!
//! Functional execution is deterministic, so the trace capped at `n` ops
//! is a strict prefix of the trace capped at `m >= n` ops. A cached
//! 60 060-op buffer therefore serves *every* shorter request as
//! `view.slice(0..n)`. If the program halted before its cap (the entry is
//! *exhausted*), the buffer is the complete trace and serves requests of
//! any length. Only a longer-than-cached request on a non-exhausted entry
//! re-synthesizes (at the new, larger cap, replacing the entry) — so for
//! a given key the synthesized cap strictly increases, and each
//! (workload, max-ops) pair is synthesized at most once per process.
//!
//! ## Concurrency
//!
//! The map is striped across [`STRIPES`] mutexes keyed by content hash.
//! A stripe's lock is held *across* synthesis, so concurrent requests for
//! the same key from the experiment worker pool dedup: exactly one
//! synthesizes, the rest hit. With equal `max_ops`, hit/miss counts are
//! therefore deterministic regardless of thread interleaving.
//!
//! The process-global arena is published as an `Arc` via [`global`];
//! `[obs]` counters `trace.arena.hits` / `.misses` / `.bytes` make the
//! win visible in every run's summary. `P10SIM_TRACE_ARENA=0` (or
//! [`set_enabled`]`(false)`, wired to `figures --no-trace-arena`) forces
//! the legacy synthesize-per-call path for A/B debugging.

use p10_isa::{DynOp, ExecError, Trace, TraceView};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of lock stripes in the arena map.
pub const STRIPES: usize = 16;

/// One memoized trace buffer.
#[derive(Debug, Clone)]
struct Entry {
    /// The synthesized ops (shared with every view handed out).
    ops: Arc<[DynOp]>,
    /// The `max_ops` cap the buffer was synthesized under.
    cap: u64,
    /// How many times this key has been synthesized (1 + grows).
    synths: u32,
}

impl Entry {
    /// Whether the program halted before its cap — the buffer is the
    /// complete trace and serves requests of any length.
    fn exhausted(&self) -> bool {
        (self.ops.len() as u64) < self.cap
    }
}

/// Aggregate arena counters (monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served from a cached buffer.
    pub hits: u64,
    /// Requests that synthesized (first request for a key, or a grow).
    pub misses: u64,
    /// Total bytes of op storage synthesized into the arena.
    pub bytes: u64,
}

/// A content-keyed, lock-striped memo of synthesized traces.
#[derive(Debug, Default)]
pub struct TraceArena {
    stripes: [Mutex<HashMap<u64, Entry>>; STRIPES],
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

impl TraceArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        TraceArena::default()
    }

    /// Returns a zero-copy view of the first `min(max_ops, trace len)`
    /// ops of the trace identified by `key`, synthesizing through
    /// `synth(cap)` only when no cached buffer can serve the request.
    ///
    /// `synth` must be deterministic in `cap` and satisfy the prefix
    /// property (`synth(a)` is a prefix of `synth(b)` for `a <= b`) —
    /// both hold for functional execution of a fixed workload.
    ///
    /// # Errors
    ///
    /// Propagates a synthesis error; nothing is cached in that case.
    pub fn view_or_synth(
        &self,
        key: u64,
        max_ops: u64,
        synth: impl FnOnce(u64) -> Result<Trace, ExecError>,
    ) -> Result<TraceView, ExecError> {
        let stripe = &self.stripes[(key as usize) % STRIPES];
        let mut map = stripe.lock().expect("arena stripe poisoned");
        let prior = match map.get(&key) {
            Some(e) if e.cap >= max_ops || e.exhausted() => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                p10_obs::counter("trace.arena.hits", 1);
                let view = TraceView::new(Arc::clone(&e.ops));
                let take = (max_ops as usize).min(view.len());
                return Ok(view.slice(0..take));
            }
            Some(e) => e.synths,
            None => 0,
        };
        // Miss (first request) or grow (longer request than the cached
        // cap on a non-exhausted buffer): synthesize under the stripe
        // lock so concurrent requests for this key dedup.
        let sp = p10_obs::event_span(&format!("synth:{key:016x} cap={max_ops}"));
        let trace = synth(max_ops)?;
        sp.finish();
        self.misses.fetch_add(1, Ordering::Relaxed);
        p10_obs::counter("trace.arena.misses", 1);
        let synthesized_bytes = (trace.ops.len() * std::mem::size_of::<DynOp>()) as u64;
        self.bytes.fetch_add(synthesized_bytes, Ordering::Relaxed);
        p10_obs::counter("trace.arena.bytes", synthesized_bytes);
        let entry = Entry {
            ops: trace.ops.into(),
            cap: max_ops,
            synths: prior + 1,
        };
        let view = TraceView::new(Arc::clone(&entry.ops));
        map.insert(key, entry);
        let take = (max_ops as usize).min(view.len());
        Ok(view.slice(0..take))
    }

    /// Aggregate hit/miss/bytes counters.
    #[must_use]
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Per-entry accounting for a key: `(cap, trace len, synth count)`.
    #[must_use]
    pub fn entry_stats(&self, key: u64) -> Option<(u64, usize, u32)> {
        let map = self.stripes[(key as usize) % STRIPES]
            .lock()
            .expect("arena stripe poisoned");
        map.get(&key).map(|e| (e.cap, e.ops.len(), e.synths))
    }

    /// Number of distinct keys resident in the arena.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("arena stripe poisoned").len())
            .sum()
    }
}

/// The process-global arena, shared by every worker-pool job.
#[must_use]
pub fn global() -> Arc<TraceArena> {
    static GLOBAL: OnceLock<Arc<TraceArena>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(TraceArena::new())))
}

/// Process-wide memo of *constructed* workloads, keyed by generator
/// identity (benchmark name, signature, seed).
///
/// Re-synthesizing a trace was only half the per-job waste: constructing
/// the workload itself (program generation plus writing the memory
/// image — ~11 ms for a cache-hostile footprint) repeated per config ×
/// per SMT thread too, and the *content* hash can only be computed from a
/// constructed workload. Sharing one `Arc<Workload>` per generator key
/// amortizes construction, the lazily computed content fingerprint, and
/// (through it) the trace arena lookup across the whole sweep.
///
/// Disabled together with the arena (`--no-trace-arena` /
/// `P10SIM_TRACE_ARENA=0`): the legacy path constructs privately.
/// Construction is deterministic, so sharing is observationally identical.
pub fn memoized_workload(
    key: u64,
    build: impl FnOnce() -> crate::Workload,
) -> Arc<crate::Workload> {
    if !enabled() {
        return Arc::new(build());
    }
    type MemoStripe = Mutex<HashMap<u64, Arc<crate::Workload>>>;
    static MEMO: OnceLock<[MemoStripe; STRIPES]> = OnceLock::new();
    let stripes = MEMO.get_or_init(Default::default);
    let mut map = stripes[(key as usize) % STRIPES]
        .lock()
        .expect("workload memo stripe poisoned");
    if let Some(w) = map.get(&key) {
        p10_obs::counter("trace.arena.workload_hits", 1);
        return Arc::clone(w);
    }
    p10_obs::counter("trace.arena.workload_misses", 1);
    let w = Arc::new(build());
    map.insert(key, Arc::clone(&w));
    w
}

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let disabled = std::env::var("P10SIM_TRACE_ARENA").is_ok_and(|v| v == "0");
        AtomicBool::new(!disabled)
    })
}

/// Whether trace requests route through the arena (default yes; off when
/// `P10SIM_TRACE_ARENA=0` or after [`set_enabled`]`(false)`).
#[must_use]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Forces the arena on or off for the rest of the process — the hook
/// behind `figures --no-trace-arena`.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specint_like;
    use std::sync::atomic::AtomicU32;

    fn short_workload() -> Arc<crate::Workload> {
        specint_like()[8].workload(777)
    }

    #[test]
    fn memoizes_one_synthesis_per_key() {
        let arena = TraceArena::new();
        let w = short_workload();
        let synths = AtomicU32::new(0);
        let mut views = Vec::new();
        for _ in 0..4 {
            let v = arena
                .view_or_synth(1, 500, |cap| {
                    synths.fetch_add(1, Ordering::Relaxed);
                    w.trace(cap)
                })
                .unwrap();
            views.push(v);
        }
        assert_eq!(synths.load(Ordering::Relaxed), 1);
        assert_eq!(arena.stats().hits, 3);
        assert_eq!(arena.stats().misses, 1);
        assert_eq!(arena.entry_stats(1), Some((500, 500, 1)));
        for v in &views[1..] {
            assert_eq!(v, &views[0]);
            assert!(v.shares_storage(&views[0]), "hits must share storage");
        }
    }

    #[test]
    fn longest_prefix_serves_shorter_requests() {
        let arena = TraceArena::new();
        let w = short_workload();
        let long = arena.view_or_synth(9, 2_000, |cap| w.trace(cap)).unwrap();
        let short = arena
            .view_or_synth(9, 700, |_| panic!("must not re-synthesize"))
            .unwrap();
        assert_eq!(short.len(), 700);
        assert!(short.shares_storage(&long));
        assert_eq!(short.ops(), &long.ops()[..700]);
        assert_eq!(
            arena.stats(),
            ArenaStats {
                hits: 1,
                misses: 1,
                bytes: (2_000 * std::mem::size_of::<DynOp>()) as u64,
            }
        );
    }

    #[test]
    fn staggered_thread_views_cost_one_buffer_of_bytes() {
        // SMT stagger shape: one deep synthesis, then per-thread offset
        // windows. The byte counter must record exactly one buffer —
        // per-thread clones would have multiplied it by the thread count.
        let arena = TraceArena::new();
        let w = short_workload();
        let max_ops = 400usize;
        let deepest = (max_ops + 7 * 997) as u64;
        let views: Vec<TraceView> = (0..4)
            .map(|t| {
                let full = arena
                    .view_or_synth(11, deepest, |cap| w.trace(cap))
                    .unwrap();
                let skip = t * 997;
                let end = full.len().min(skip + max_ops);
                full.slice(skip.min(end)..end)
            })
            .collect();
        let one_buffer = (deepest as usize * std::mem::size_of::<DynOp>()) as u64;
        assert_eq!(
            arena.stats().bytes,
            one_buffer,
            "4 thread streams must allocate exactly one shared buffer"
        );
        assert_eq!(arena.stats().misses, 1);
        for v in &views[1..] {
            assert!(v.shares_storage(&views[0]));
        }
    }

    #[test]
    fn grow_replaces_entry_and_prefix_is_stable() {
        let arena = TraceArena::new();
        let w = short_workload();
        let short = arena.view_or_synth(3, 300, |cap| w.trace(cap)).unwrap();
        let long = arena.view_or_synth(3, 1_200, |cap| w.trace(cap)).unwrap();
        assert_eq!(long.len(), 1_200);
        assert_eq!(&long.ops()[..300], short.ops(), "prefix property");
        assert_eq!(arena.entry_stats(3), Some((1_200, 1_200, 2)));
        // The grown buffer now serves the original request as a hit.
        let again = arena
            .view_or_synth(3, 300, |_| panic!("must not re-synthesize"))
            .unwrap();
        assert!(again.shares_storage(&long));
    }

    #[test]
    fn exhausted_entry_serves_any_length() {
        let arena = TraceArena::new();
        // A tiny two-op program: cap 50 exhausts it.
        let mut b = p10_isa::ProgramBuilder::new();
        b.li(p10_isa::Reg::gpr(3), 1);
        b.addi(p10_isa::Reg::gpr(3), p10_isa::Reg::gpr(3), 2);
        let w = crate::Workload::new("tiny".into(), b.build(), p10_isa::Machine::new(), vec![]);
        let v = arena.view_or_synth(4, 50, |cap| w.trace(cap)).unwrap();
        assert_eq!(v.len(), 2);
        // A *longer* request must not re-synthesize: the buffer is the
        // whole program.
        let v2 = arena
            .view_or_synth(4, 5_000, |_| panic!("must not re-synthesize"))
            .unwrap();
        assert_eq!(v2.len(), 2);
        assert!(v2.shares_storage(&v));
    }

    #[test]
    fn synthesis_error_caches_nothing() {
        let arena = TraceArena::new();
        let err = arena.view_or_synth(5, 10, |_| {
            Err(ExecError::InvalidBranchTarget { pc: 0, target: 0 })
        });
        assert!(err.is_err());
        assert_eq!(arena.entries(), 0);
        // The next request synthesizes normally.
        let w = short_workload();
        let v = arena.view_or_synth(5, 10, |cap| w.trace(cap)).unwrap();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn concurrent_same_key_requests_dedup_deterministically() {
        let arena = Arc::new(TraceArena::new());
        let w = Arc::new(short_workload());
        let synths = Arc::new(AtomicU32::new(0));
        const N: usize = 8;
        let views: Vec<TraceView> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    let (arena, w, synths) =
                        (Arc::clone(&arena), Arc::clone(&w), Arc::clone(&synths));
                    scope.spawn(move || {
                        arena
                            .view_or_synth(42, 800, |cap| {
                                synths.fetch_add(1, Ordering::Relaxed);
                                w.trace(cap)
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one synthesis regardless of interleaving; every other
        // request is a hit on the same shared buffer.
        assert_eq!(synths.load(Ordering::Relaxed), 1);
        let stats = arena.stats();
        assert_eq!((stats.hits, stats.misses), ((N - 1) as u64, 1));
        assert_eq!(stats.bytes, (800 * std::mem::size_of::<DynOp>()) as u64);
        for v in &views[1..] {
            assert!(v.shares_storage(&views[0]));
            assert_eq!(v, &views[0]);
        }
    }
}
