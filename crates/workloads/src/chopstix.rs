//! Chopstix-style proxy extraction.
//!
//! The paper (§III-A) generates SPECint proxy workloads by extracting the
//! top-10 most-executed functions of each benchmark and turning each into
//! an L1-contained, endless loop runnable on RTLSim in real mode, with
//! coverage between 41% (gcc) and 99% (xz). This module reproduces the
//! pipeline against the synthetic suite:
//!
//! 1. functionally trace the workload,
//! 2. attribute dynamic instructions to the workload's function spans,
//! 3. take the top-N functions and report coverage,
//! 4. package each function body as a self-looping proxy program
//!    (out-of-span control flow is neutralized, the body is wrapped in an
//!    endless counted loop, and the original memory image is carried
//!    along — the "code and data state captured from memory").

use crate::workload::Workload;
use p10_isa::{Inst, Label, Machine, Program, ProgramBuilder, Reg, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One extracted proxy workload.
#[derive(Debug, Clone)]
pub struct Proxy {
    /// `"<workload>/<function>"`.
    pub name: String,
    /// The L1-contained endless-loop program.
    pub program: Program,
    /// The memory image to run it against.
    pub machine: Machine,
    /// Fraction of the application's dynamic instructions this function
    /// accounted for (its weight in suite-level projections).
    pub weight: f64,
    /// Dynamic instructions observed in this function during tracing.
    pub dynamic_ops: u64,
}

impl Proxy {
    /// Traces the proxy for `max_ops` dynamic instructions.
    ///
    /// # Panics
    ///
    /// Panics if the proxy fails to execute (a bug in extraction).
    #[must_use]
    pub fn trace(&self, max_ops: u64) -> Trace {
        let mut m = self.machine.clone();
        m.run(&self.program, max_ops)
            .unwrap_or_else(|e| panic!("proxy {} failed: {e}", self.name))
    }
}

/// The result of proxy extraction for one workload.
#[derive(Debug, Clone)]
pub struct ProxySet {
    /// Extracted proxies, hottest first.
    pub proxies: Vec<Proxy>,
    /// Fraction of dynamic instructions covered by the extracted set.
    pub coverage: f64,
    /// Total dynamic instructions traced.
    pub total_dynamic: u64,
}

/// Summary row for coverage reporting (the paper's 41%–99% table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Workload name.
    pub workload: String,
    /// Number of proxies extracted.
    pub proxies: usize,
    /// Dynamic coverage in [0, 1].
    pub coverage: f64,
}

/// Extracts the top-`top_n` hottest functions of `workload` as proxies,
/// tracing `trace_ops` dynamic instructions to rank them.
#[must_use]
pub fn extract(workload: &Workload, trace_ops: u64, top_n: usize) -> ProxySet {
    let trace = workload.trace_or_panic(trace_ops);
    let total = trace.len() as u64;

    // Attribute dynamic ops to function spans by instruction index.
    let mut counts: HashMap<usize, u64> = HashMap::new();
    for op in &trace.ops {
        if let Some(idx) = workload.program.index_of(op.pc) {
            if let Some(fi) = workload.functions.iter().position(|f| f.contains(idx)) {
                *counts.entry(fi).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(usize, u64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(top_n);

    let covered: u64 = ranked.iter().map(|(_, c)| c).sum();
    let proxies = ranked
        .iter()
        .map(|&(fi, ops)| {
            let f = &workload.functions[fi];
            Proxy {
                name: format!("{}/{}", workload.name, f.name),
                program: loopify(&workload.program, f.start, f.end),
                machine: workload.machine.clone(),
                weight: if total == 0 {
                    0.0
                } else {
                    ops as f64 / total as f64
                },
                dynamic_ops: ops,
            }
        })
        .collect();

    ProxySet {
        proxies,
        coverage: if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        },
        total_dynamic: total,
    }
}

/// Copies instructions `[start, end)` of `program` into a fresh program
/// wrapped in an endless counted loop. Control flow that leaves the span
/// (calls, returns, indirect branches, out-of-span targets) is
/// neutralized to `nop`; in-span direct branches are re-targeted.
fn loopify(program: &Program, start: usize, end: usize) -> Program {
    let mut b = ProgramBuilder::new();
    // Endless outer loop (the proxy runs until the measurement window
    // closes).
    b.li(Reg::gpr(31), i64::MAX / 2);
    b.mtctr(Reg::gpr(31));
    let top = b.bind_label();

    // Map in-span branch-target indices to fresh labels.
    let mut target_labels: HashMap<usize, Label> = HashMap::new();
    for idx in start..end {
        if let Some(t) = direct_target(program, program.insts()[idx]) {
            if (start..end).contains(&t) {
                target_labels.entry(t).or_insert_with(|| b.label());
            }
        }
    }

    for idx in start..end {
        if let Some(&l) = target_labels.get(&idx) {
            b.bind(l);
        }
        let inst = program.insts()[idx];
        let rewritten = match inst {
            Inst::B { target } | Inst::Bc { target, .. } => {
                let t = program.resolve(target);
                if let Some(&l) = target_labels.get(&t) {
                    match inst {
                        Inst::B { .. } => Inst::B { target: l },
                        Inst::Bc { cond, bf, .. } => Inst::Bc {
                            cond,
                            bf,
                            target: l,
                        },
                        _ => unreachable!(),
                    }
                } else {
                    Inst::Nop
                }
            }
            // The proxy owns CTR for its outer loop; counted/indirect
            // control flow and call/return leave the span semantics.
            Inst::Bdnz { .. } | Inst::Bctr | Inst::Bl { .. } | Inst::Blr | Inst::Mtctr { .. } => {
                Inst::Nop
            }
            other => other,
        };
        b.push(rewritten);
    }

    b.bdnz(top);
    b.build()
}

fn direct_target(program: &Program, inst: Inst) -> Option<usize> {
    match inst {
        Inst::B { target } | Inst::Bc { target, .. } | Inst::Bdnz { target } => {
            Some(program.resolve(target))
        }
        _ => None,
    }
}

/// Runs extraction over a list of workloads and reports the coverage
/// table (the paper's §III-A numbers).
#[must_use]
pub fn coverage_table(
    workloads: &[impl std::borrow::Borrow<Workload>],
    trace_ops: u64,
    top_n: usize,
) -> Vec<CoverageRow> {
    workloads
        .iter()
        .map(|w| {
            let w = w.borrow();
            let set = extract(w, trace_ops, top_n);
            CoverageRow {
                workload: w.name.clone(),
                proxies: set.proxies.len(),
                coverage: set.coverage,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::specint_like;

    fn workload(name: &str) -> std::sync::Arc<Workload> {
        specint_like()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap()
            .workload(23)
    }

    #[test]
    fn extraction_finds_hot_functions_and_reports_coverage() {
        let w = workload("perlish");
        let set = extract(&w, 40_000, 10);
        assert!(!set.proxies.is_empty());
        assert!(set.proxies.len() <= 10);
        assert!(set.coverage > 0.5 && set.coverage <= 1.0);
        // Hottest first.
        for pair in set.proxies.windows(2) {
            assert!(pair[0].dynamic_ops >= pair[1].dynamic_ops);
        }
    }

    #[test]
    fn proxies_execute_endlessly() {
        let w = workload("xzish");
        let set = extract(&w, 30_000, 5);
        for p in &set.proxies {
            let t = p.trace(5_000);
            assert_eq!(t.len(), 5_000, "proxy {} must loop endlessly", p.name);
        }
    }

    #[test]
    fn concentrated_workload_covers_more_than_spread_one() {
        // The paper: xz ~99% (concentrated) vs gcc ~41% (spread).
        let xz = extract(&workload("xzish"), 40_000, 10);
        let gcc = extract(&workload("gccish"), 40_000, 10);
        assert!(
            xz.coverage > gcc.coverage,
            "xzish {} must exceed gccish {}",
            xz.coverage,
            gcc.coverage
        );
        assert!(xz.coverage > 0.9, "xzish coverage {}", xz.coverage);
        assert!(gcc.coverage < 0.75, "gccish coverage {}", gcc.coverage);
    }

    #[test]
    fn proxy_op_mix_resembles_source_function() {
        let w = workload("x264ish");
        let set = extract(&w, 40_000, 3);
        let p = &set.proxies[0];
        let t = p.trace(10_000);
        // The proxy should still do real work, not just nops.
        let nop_frac = t.fraction(|o| o.class == p10_isa::OpClass::Nop);
        assert!(nop_frac < 0.5, "proxy mostly nops: {nop_frac}");
    }

    #[test]
    fn coverage_table_has_one_row_per_workload() {
        let ws: Vec<std::sync::Arc<Workload>> = ["xzish", "exchangeish"]
            .iter()
            .map(|n| workload(n))
            .collect();
        let rows = coverage_table(&ws, 20_000, 10);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.coverage > 0.0));
    }
}

#[cfg(test)]
mod weight_tests {
    use super::*;
    use crate::suite::specint_like;

    #[test]
    fn proxy_weights_equal_coverage() {
        let w = specint_like()[9].workload(23); // xzish
        let set = extract(&w, 30_000, 10);
        let weight_sum: f64 = set.proxies.iter().map(|p| p.weight).sum();
        assert!(
            (weight_sum - set.coverage).abs() < 1e-9,
            "weights {weight_sum} must sum to coverage {}",
            set.coverage
        );
    }

    #[test]
    fn more_proxies_never_reduce_coverage() {
        let w = specint_like()[1].workload(23); // gccish: spread
        let small = extract(&w, 30_000, 3);
        let big = extract(&w, 30_000, 10);
        assert!(big.coverage >= small.coverage - 1e-12);
        assert!(big.proxies.len() >= small.proxies.len());
    }

    #[test]
    fn suite_weighted_projection_from_proxies() {
        // The paper's use: project suite-level numbers from proxy traces
        // weighted by their application share. Verify the plumbing: a
        // weighted mix of per-proxy IPC-proxy metrics is finite and
        // bounded by the per-proxy extremes.
        let w = specint_like()[0].workload(23);
        let set = extract(&w, 30_000, 8);
        let metrics: Vec<f64> = set
            .proxies
            .iter()
            .map(|p| {
                let t = p.trace(4_000);
                t.fraction(|o| o.is_load())
            })
            .collect();
        let total_w: f64 = set.proxies.iter().map(|p| p.weight).sum();
        let proj: f64 = set
            .proxies
            .iter()
            .zip(metrics.iter())
            .map(|(p, m)| p.weight / total_w * m)
            .sum();
        let lo = metrics.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = metrics.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(proj >= lo - 1e-12 && proj <= hi + 1e-12);
    }
}
