//! # p10-workloads
//!
//! Synthetic workloads standing in for the paper's benchmark suites.
//!
//! The paper's methodology is driven by SPECint CPU2017, commercial,
//! Python/interpreted and ISV workload groups, reduced to RTL-runnable
//! *proxies* via the Chopstix tool, plus Microprobe-generated synthetic
//! microbenchmarks (§III-A, §III-E). None of those inputs are
//! redistributable, so this crate builds the closest synthetic
//! equivalents:
//!
//! * [`suite::specint_like`] — ten benchmark generators with distinct,
//!   documented behavioural signatures (branchy interpreters,
//!   pointer-chasers, tight integer loops...), mirroring the *spread* of
//!   behaviours in SPECint. Each produces a real [`Workload`]: a program
//!   plus initialized memory, functionally executable into a trace.
//! * [`chopstix`] — hot-function extraction: finds the top-N most executed
//!   functions of a workload and packages each as an L1-contained endless
//!   loop (the paper's proxy workloads), reporting dynamic coverage.
//! * [`microbench`] — Microprobe-style parametric kernels (dependency
//!   distance, data initialization, op mix) used for power-model training
//!   corpora and SERMiner derating studies.
//!
//! Workload generation is fully deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod chopstix;
pub mod gen;
pub mod microbench;
pub mod suite;
mod workload;

pub use gen::{synthesize, Signature, WorkloadBuilder};
pub use suite::{specint_like, Benchmark, WorkloadGroup};
pub use workload::{FunctionSpan, Workload};
