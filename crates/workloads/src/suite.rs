//! The synthetic benchmark suite.
//!
//! Ten SPECint-like benchmarks plus interpreted/analytics and ML/HPC
//! groups. Each benchmark is a behavioural [`Signature`] chosen to mirror
//! a documented trait of its namesake (e.g. `mcfish` is a pointer-chaser
//! with a cache-hostile footprint; `xzish` concentrates execution in a
//! couple of hot functions the way xz does — the paper cites xz at 99%
//! proxy coverage and gcc at 41%).

use crate::gen::{synthesize, Signature};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Workload groups the paper reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadGroup {
    /// SPECint-CPU2017-like general-purpose integer code.
    SpecIntLike,
    /// Interpreted languages (Python-like dispatch loops).
    Interpreted,
    /// Business analytics (branchy, data-dependent).
    Analytics,
    /// Commercial / transaction-processing-like mixes.
    Commercial,
    /// Machine-learning / SIMD-heavy compute.
    MlCompute,
    /// HPC floating-point kernels.
    Hpc,
}

/// A named benchmark generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Benchmark name.
    pub name: String,
    /// Which group it belongs to.
    pub group: WorkloadGroup,
    /// Weight in suite-level aggregates.
    pub weight: f64,
    /// The behavioural signature.
    pub signature: Signature,
}

impl Benchmark {
    /// Instantiates the benchmark as a runnable workload.
    ///
    /// Synthesis is deterministic in `(name, signature, seed)`, so the
    /// result is shared through the process-wide workload memo (see
    /// [`crate::arena::memoized_workload`]): a config sweep constructs
    /// each workload once, and every job reuses the same `Arc` — along
    /// with its cached content fingerprint and arena-resident traces.
    #[must_use]
    pub fn workload(&self, seed: u64) -> Arc<Workload> {
        let mut h = p10_isa::Fnv1aHasher::new();
        self.name.hash(&mut h);
        self.signature.hash(&mut h);
        seed.hash(&mut h);
        crate::arena::memoized_workload(h.finish(), || {
            synthesize(&self.name, &self.signature, seed, 1 << 40)
        })
    }
}

fn bench(name: &str, group: WorkloadGroup, sig: Signature) -> Benchmark {
    Benchmark {
        name: name.to_owned(),
        group,
        weight: 1.0,
        signature: sig,
    }
}

/// The ten SPECint-like benchmarks.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn specint_like() -> Vec<Benchmark> {
    use WorkloadGroup::SpecIntLike as G;
    vec![
        // perlbench-like: interpreter dispatch, branchy, moderate memory.
        bench(
            "perlish",
            G,
            Signature {
                handlers: 32,
                zipf_alpha: 0.9,
                branch_entropy: 0.25,
                footprint_kb: 512,
                chase_loads: 0,
                stride_loads: 3,
                stores: 2,
                int_chain: 5,
                int_parallel: 5,
                muls: 1,
                vsx_fmas: 0,
                branches: 5,
                calls: 2,
                code_padding: 1,
            },
        ),
        // gcc-like: execution spread over many functions, big code.
        bench(
            "gccish",
            G,
            Signature {
                handlers: 80,
                zipf_alpha: 0.3,
                branch_entropy: 0.2,
                footprint_kb: 1024,
                chase_loads: 0,
                stride_loads: 1,
                stores: 1,
                int_chain: 2,
                int_parallel: 2,
                muls: 0,
                vsx_fmas: 0,
                branches: 2,
                calls: 1,
                code_padding: 4,
            },
        ),
        // mcf-like: pointer chasing over a huge footprint.
        bench(
            "mcfish",
            G,
            Signature {
                handlers: 0,
                zipf_alpha: 1.0,
                branch_entropy: 0.18,
                footprint_kb: 4096,
                chase_loads: 2,
                stride_loads: 2,
                stores: 1,
                int_chain: 3,
                int_parallel: 3,
                muls: 0,
                vsx_fmas: 0,
                branches: 3,
                calls: 0,
                code_padding: 0,
            },
        ),
        // omnetpp-like: event simulation, memory plus branches.
        bench(
            "omnetish",
            G,
            Signature {
                handlers: 6,
                zipf_alpha: 0.7,
                branch_entropy: 0.25,
                footprint_kb: 320,
                chase_loads: 4,
                stride_loads: 2,
                stores: 2,
                int_chain: 3,
                int_parallel: 3,
                muls: 0,
                vsx_fmas: 0,
                branches: 2,
                calls: 0,
                code_padding: 1,
            },
        ),
        // xalancbmk-like: virtual dispatch heavy.
        bench(
            "xalanish",
            G,
            Signature {
                handlers: 10,
                zipf_alpha: 1.1,
                branch_entropy: 0.22,
                footprint_kb: 384,
                chase_loads: 4,
                stride_loads: 2,
                stores: 2,
                int_chain: 3,
                int_parallel: 4,
                muls: 0,
                vsx_fmas: 0,
                branches: 3,
                calls: 1,
                code_padding: 1,
            },
        ),
        // x264-like: predictable compute with SIMD.
        bench(
            "x264ish",
            G,
            Signature {
                handlers: 4,
                zipf_alpha: 1.5,
                branch_entropy: 0.08,
                footprint_kb: 192,
                chase_loads: 0,
                stride_loads: 6,
                stores: 3,
                int_chain: 3,
                int_parallel: 8,
                muls: 2,
                vsx_fmas: 4,
                branches: 3,
                calls: 1,
                code_padding: 0,
            },
        ),
        // deepsjeng-like: search with hard branches and recursion.
        bench(
            "deepsjengish",
            G,
            Signature {
                handlers: 8,
                zipf_alpha: 1.0,
                branch_entropy: 0.35,
                footprint_kb: 512,
                chase_loads: 0,
                stride_loads: 3,
                stores: 2,
                int_chain: 5,
                int_parallel: 5,
                muls: 1,
                vsx_fmas: 0,
                branches: 6,
                calls: 3,
                code_padding: 0,
            },
        ),
        // leela-like: mixed compute and memory.
        bench(
            "leelaish",
            G,
            Signature {
                handlers: 4,
                zipf_alpha: 1.0,
                branch_entropy: 0.22,
                footprint_kb: 288,
                chase_loads: 3,
                stride_loads: 2,
                stores: 2,
                int_chain: 3,
                int_parallel: 4,
                muls: 1,
                vsx_fmas: 0,
                branches: 3,
                calls: 1,
                code_padding: 0,
            },
        ),
        // exchange2-like: tight, extremely predictable integer loops.
        bench(
            "exchangeish",
            G,
            Signature {
                handlers: 0,
                zipf_alpha: 1.0,
                branch_entropy: 0.25,
                footprint_kb: 24,
                chase_loads: 0,
                stride_loads: 2,
                stores: 2,
                int_chain: 6,
                int_parallel: 8,
                muls: 1,
                vsx_fmas: 0,
                branches: 4,
                calls: 1,
                code_padding: 0,
            },
        ),
        // xz-like: execution concentrated in a couple of hot loops.
        bench(
            "xzish",
            G,
            Signature {
                handlers: 2,
                zipf_alpha: 2.0,
                branch_entropy: 0.15,
                footprint_kb: 1024,
                chase_loads: 0,
                stride_loads: 4,
                stores: 2,
                int_chain: 5,
                int_parallel: 6,
                muls: 1,
                vsx_fmas: 0,
                branches: 4,
                calls: 0,
                code_padding: 2,
            },
        ),
    ]
}

/// The extra workload groups the paper references: interpreted languages
/// and business analytics (which see a 38% flush reduction), and ML /
/// HPC compute (which gain ~2x from the doubled VSX units).
#[must_use]
pub fn extended_groups() -> Vec<Benchmark> {
    vec![
        bench(
            "pythonish",
            WorkloadGroup::Interpreted,
            Signature {
                handlers: 48,
                zipf_alpha: 0.9,
                branch_entropy: 0.25,
                footprint_kb: 1024,
                chase_loads: 1,
                stride_loads: 2,
                stores: 2,
                int_chain: 4,
                int_parallel: 3,
                muls: 0,
                vsx_fmas: 0,
                branches: 6,
                calls: 2,
                code_padding: 1,
            },
        ),
        bench(
            "analyticsish",
            WorkloadGroup::Analytics,
            Signature {
                handlers: 32,
                zipf_alpha: 0.8,
                branch_entropy: 0.22,
                footprint_kb: 4096,
                chase_loads: 2,
                stride_loads: 4,
                stores: 2,
                int_chain: 3,
                int_parallel: 4,
                muls: 1,
                vsx_fmas: 0,
                branches: 6,
                calls: 1,
                code_padding: 1,
            },
        ),
        bench(
            "commercialish",
            WorkloadGroup::Commercial,
            Signature {
                handlers: 24,
                zipf_alpha: 0.9,
                branch_entropy: 0.3,
                footprint_kb: 2048,
                chase_loads: 2,
                stride_loads: 3,
                stores: 4,
                int_chain: 3,
                int_parallel: 4,
                muls: 1,
                vsx_fmas: 0,
                branches: 5,
                calls: 2,
                code_padding: 2,
            },
        ),
        bench(
            "mlish",
            WorkloadGroup::MlCompute,
            Signature {
                handlers: 0,
                zipf_alpha: 1.0,
                branch_entropy: 0.05,
                footprint_kb: 2048,
                chase_loads: 0,
                stride_loads: 6,
                stores: 2,
                int_chain: 2,
                int_parallel: 3,
                muls: 0,
                vsx_fmas: 12,
                branches: 1,
                calls: 0,
                code_padding: 0,
            },
        ),
        bench(
            "hpcish",
            WorkloadGroup::Hpc,
            Signature {
                handlers: 0,
                zipf_alpha: 1.0,
                branch_entropy: 0.05,
                footprint_kb: 8192,
                chase_loads: 0,
                stride_loads: 8,
                stores: 4,
                int_chain: 2,
                int_parallel: 2,
                muls: 0,
                vsx_fmas: 8,
                branches: 1,
                calls: 0,
                code_padding: 0,
            },
        ),
    ]
}

/// The classic `daxpy` kernel (`y[i] += a * x[i]`), the well-known code
/// kernel the paper names among its early proxy set.
#[must_use]
pub fn daxpy(n_elements: u32) -> Workload {
    use p10_isa::{Inst, Reg};
    let mut w = crate::gen::WorkloadBuilder::new(1);
    let x_base = crate::gen::DATA_BASE;
    let y_base = crate::gen::DATA_BASE + u64::from(n_elements) * 8 + 1024;
    {
        let b = &mut w.b;
        b.li(Reg::gpr(1), x_base as i64);
        b.li(Reg::gpr(2), y_base as i64);
        b.li(Reg::gpr(3), i64::from(n_elements / 2)); // 2 elems per vector op
        b.mtctr(Reg::gpr(3));
        b.push(Inst::Lxvdsx {
            xt: Reg::vsr(32),
            ra: Reg::gpr(1),
            rb: Reg::gpr(0),
        }); // splat a = x[0]
        let top = b.bind_label();
        b.lxv(Reg::vsr(33), Reg::gpr(1), 0);
        b.lxv(Reg::vsr(34), Reg::gpr(2), 0);
        b.push(Inst::Xvmaddadp {
            xt: Reg::vsr(34),
            xa: Reg::vsr(32),
            xb: Reg::vsr(33),
        });
        b.stxv(Reg::vsr(34), Reg::gpr(2), 0);
        b.addi(Reg::gpr(1), Reg::gpr(1), 16);
        b.addi(Reg::gpr(2), Reg::gpr(2), 16);
        b.bdnz(top);
    }
    for i in 0..u64::from(n_elements) {
        w.init_word(x_base + i * 8, f64::to_bits(i as f64 * 0.5));
        w.init_word(y_base + i * 8, f64::to_bits(1.0));
    }
    w.finish("daxpy")
}

/// A *phased* pointer-chase workload: the same code alternates between an
/// L1-resident ring region and a scattered, cache-hostile region purely
/// through the pointer data — so Basic Block Vectors are identical across
/// phases while performance swings heavily. This is the adversarial case
/// for Simpoint-style BBV clustering that the paper's Tracepoints
/// methodology handles (§III-A).
#[must_use]
pub fn phased_pointer_chase(phase_nodes: u64) -> Workload {
    use p10_isa::Reg;
    let mut w = crate::gen::WorkloadBuilder::new(77);
    let ring_base = crate::gen::DATA_BASE;
    {
        let b = &mut w.b;
        b.li(Reg::gpr(3), ring_base as i64);
        b.li(Reg::gpr(30), i64::MAX / 2);
        b.mtctr(Reg::gpr(30));
        let top = b.bind_label();
        // One chase load plus a little compute: identical code forever.
        b.ld(Reg::gpr(3), Reg::gpr(3), 0);
        b.addi(Reg::gpr(7), Reg::gpr(7), 1);
        b.add(Reg::gpr(8), Reg::gpr(8), Reg::gpr(7));
        b.bdnz(top);
    }
    // Phase A: `phase_nodes` hops inside a dense 8 KiB region (L1 hits).
    // Phase B: `phase_nodes` hops spread over 16 MiB (misses). The last
    // node of each phase links to the first node of the next; B links
    // back to A, forming one big ring.
    let dense_stride = 128u64;
    let sparse_stride = 1 << 16; // 64 KiB jumps: TLB + cache hostile
    let a0 = ring_base;
    let b0 = ring_base + (1 << 22);
    for i in 0..phase_nodes {
        let cur = a0 + (i % 64) * dense_stride + (i / 64) * 8;
        let next = if i + 1 < phase_nodes {
            a0 + ((i + 1) % 64) * dense_stride + ((i + 1) / 64) * 8
        } else {
            b0
        };
        w.init_word(cur, next);
    }
    for i in 0..phase_nodes {
        let cur = b0 + i * sparse_stride;
        let next = if i + 1 < phase_nodes {
            b0 + (i + 1) * sparse_stride
        } else {
            a0
        };
        w.init_word(cur, next);
    }
    w.finish("phased_chase")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_distinct_benchmarks() {
        let s = specint_like();
        assert_eq!(s.len(), 10);
        let mut names: Vec<_> = s.iter().map(|b| b.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn all_benchmarks_execute() {
        for b in specint_like().iter().chain(extended_groups().iter()) {
            let w = b.workload(17);
            let t = w
                .trace(5_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            assert_eq!(t.len(), 5_000, "{} must run endlessly", b.name);
        }
    }

    #[test]
    fn signatures_differ_across_suite() {
        let s = specint_like();
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                assert_ne!(
                    s[i].signature, s[j].signature,
                    "{} and {} share a signature",
                    s[i].name, s[j].name
                );
            }
        }
    }

    #[test]
    fn mcfish_is_memory_hostile_and_exchangeish_is_not() {
        let s = specint_like();
        let mcf = s.iter().find(|b| b.name == "mcfish").unwrap();
        let exch = s.iter().find(|b| b.name == "exchangeish").unwrap();
        assert!(mcf.signature.footprint_kb > 64 * exch.signature.footprint_kb / 2);
        assert!(mcf.signature.chase_loads > 0);
        assert_eq!(exch.signature.chase_loads, 0);
    }

    #[test]
    fn daxpy_computes_axpy() {
        let w = daxpy(64);
        let mut m = w.machine.clone();
        m.run(&w.program, 100_000).unwrap();
        // y[i] = 1.0 + a * x[i], a = x[0] = 0.0 -> y unchanged = 1.0
        assert_eq!(
            m.mem.read_f64(crate::gen::DATA_BASE + 64 * 8 + 1024 + 8),
            1.0
        );
    }

    #[test]
    fn mlish_is_vsx_heavy() {
        let b = extended_groups()
            .into_iter()
            .find(|b| b.name == "mlish")
            .unwrap();
        let t = b.workload(5).trace_or_panic(10_000);
        let vsx_frac = t.fraction(|o| o.class == p10_isa::OpClass::VsxFp);
        assert!(vsx_frac > 0.2, "mlish vsx fraction {vsx_frac}");
    }
}
