//! A stable FNV-1a 64-bit [`std::hash::Hasher`].
//!
//! `DefaultHasher` is randomly seeded per process, so it cannot key
//! anything that must be reproducible across runs (content-addressed
//! caches, trace-arena keys). FNV-1a is the workspace's standing choice
//! for such keys (the experiment engine keys its disk cache with the
//! byte-level equivalent); this wraps it in the `Hasher` trait so any
//! `#[derive(Hash)]` type can feed it.
//!
//! Note: `Hash` impls for integers write native-endian bytes, so digests
//! are stable per platform, which is all the in-process arena needs.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a 64-bit hasher state.
#[derive(Debug, Clone)]
pub struct Fnv1aHasher(u64);

impl Fnv1aHasher {
    /// A hasher at the standard FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1aHasher(FNV_OFFSET)
    }
}

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Fnv1aHasher::new()
    }
}

impl Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    /// Folds 8 bytes per multiply on long inputs (hashing a workload's
    /// 4 KiB memory pages byte-at-a-time would cost as much as trace
    /// synthesis itself); the trailing `len % 8` bytes use the byte-exact
    /// FNV-1a step. Each step is `state = (state ^ chunk) * prime` with
    /// an odd prime, a bijection in the chunk, so content differences
    /// never cancel within a step.
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.0 ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors (all sub-word, so they pin the
        // byte-exact tail path).
        let digest = |s: &str| {
            let mut h = Fnv1aHasher::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn long_inputs_discriminate_and_are_stable() {
        let digest = |bytes: &[u8]| {
            let mut h = Fnv1aHasher::new();
            h.write(bytes);
            h.finish()
        };
        let page = vec![0xa5u8; 4096];
        assert_eq!(digest(&page), digest(&page));
        let mut flipped = page.clone();
        flipped[4095] ^= 1; // last byte of the last word
        assert_ne!(digest(&page), digest(&flipped));
        let mut early = page.clone();
        early[0] ^= 0x80; // high bit of the first word
        assert_ne!(digest(&page), digest(&early));
        // Split writes hash like one contiguous write only when chunk
        // boundaries align; the arena always hashes whole pages, and
        // word-aligned splits stay consistent.
        let mut h = Fnv1aHasher::new();
        h.write(&page[..2048]);
        h.write(&page[2048..]);
        assert_eq!(h.finish(), digest(&page));
    }

    #[test]
    fn hash_trait_integration_is_deterministic() {
        let digest = |v: &(u64, &str)| {
            let mut h = Fnv1aHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        let a = digest(&(42, "trace"));
        let b = digest(&(42, "trace"));
        assert_eq!(a, b);
        assert_ne!(a, digest(&(43, "trace")));
    }
}
