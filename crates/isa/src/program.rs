//! Programs and the builder used to assemble them.
//!
//! A [`Program`] is a sequence of [`Inst`] plus a resolved label table.
//! Instruction addresses are modeled as `base + 4*index` (prefixed
//! instructions are *architecturally* 8 bytes, but the model keeps a uniform
//! 4-byte layout and accounts for prefixed fetch cost in the pipeline —
//! a documented simplification that does not affect any paper metric).

use crate::inst::Inst;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default code base address for programs.
pub const CODE_BASE: u64 = 0x1_0000;

/// A branch target label, resolved at [`ProgramBuilder::build`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(pub(crate) u32);

/// Errors from program assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was created but never bound to a position.
    UnboundLabel(Label),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A fully assembled program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Program {
    insts: Vec<Inst>,
    /// label id -> instruction index
    label_targets: Vec<u32>,
    base: u64,
}

impl Program {
    /// The instructions in program order.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The code base address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The address of the instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()` (one-past-the-end is allowed as the "fell
    /// off the end" address).
    #[must_use]
    pub fn addr_of(&self, index: usize) -> u64 {
        assert!(index <= self.insts.len());
        self.base + 4 * index as u64
    }

    /// The instruction index for a code address, if it lies within the
    /// program.
    #[must_use]
    pub fn index_of(&self, addr: u64) -> Option<usize> {
        if addr < self.base || !(addr - self.base).is_multiple_of(4) {
            return None;
        }
        let idx = ((addr - self.base) / 4) as usize;
        (idx < self.insts.len()).then_some(idx)
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this program.
    #[must_use]
    pub fn resolve(&self, label: Label) -> usize {
        self.label_targets[label.0 as usize] as usize
    }

    /// Resolves a label to its code address.
    #[must_use]
    pub fn resolve_addr(&self, label: Label) -> u64 {
        self.addr_of(self.resolve(label))
    }
}

/// Incremental assembler for [`Program`]s.
///
/// Provides a `push` primitive plus mnemonic convenience methods for the
/// most common instructions, so kernels read close to Power assembly:
///
/// ```
/// use p10_isa::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::gpr(5), 42);
/// b.add(Reg::gpr(3), Reg::gpr(5), Reg::gpr(5));
/// let p = b.build();
/// assert_eq!(p.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    /// label id -> Some(instruction index) once bound
    labels: Vec<Option<u32>>,
    base: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder at the default code base.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder {
            insts: Vec::new(),
            labels: Vec::new(),
            base: CODE_BASE,
        }
    }

    /// Sets the code base address.
    pub fn base(&mut self, base: u64) -> &mut Self {
        self.base = base;
        self
    }

    /// Creates a fresh, not-yet-bound label (for forward branches).
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label((self.labels.len() - 1) as u32)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len() as u32);
    }

    /// Creates a label bound to the current position (for backward
    /// branches).
    pub fn bind_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Number of instructions appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if any created label was never bound; use [`try_build`] for a
    /// fallible version.
    ///
    /// [`try_build`]: ProgramBuilder::try_build
    #[must_use]
    pub fn build(self) -> Program {
        self.try_build().expect("all labels must be bound")
    }

    /// Finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if a label was created but
    /// never bound.
    pub fn try_build(self) -> Result<Program, ProgramError> {
        let mut targets = Vec::with_capacity(self.labels.len());
        for (i, l) in self.labels.iter().enumerate() {
            match l {
                Some(t) => targets.push(*t),
                None => return Err(ProgramError::UnboundLabel(Label(i as u32))),
            }
        }
        Ok(Program {
            insts: self.insts,
            label_targets: targets,
            base: self.base,
        })
    }
}

/// Mnemonic convenience methods (each appends one instruction).
#[allow(missing_docs)]
impl ProgramBuilder {
    pub fn li(&mut self, rt: crate::Reg, imm: i64) -> &mut Self {
        self.push(Inst::Li { rt, imm })
    }
    pub fn addi(&mut self, rt: crate::Reg, ra: crate::Reg, imm: i64) -> &mut Self {
        self.push(Inst::Addi { rt, ra, imm })
    }
    pub fn add(&mut self, rt: crate::Reg, ra: crate::Reg, rb: crate::Reg) -> &mut Self {
        self.push(Inst::Add { rt, ra, rb })
    }
    pub fn sub(&mut self, rt: crate::Reg, ra: crate::Reg, rb: crate::Reg) -> &mut Self {
        self.push(Inst::Sub { rt, ra, rb })
    }
    pub fn mulld(&mut self, rt: crate::Reg, ra: crate::Reg, rb: crate::Reg) -> &mut Self {
        self.push(Inst::Mulld { rt, ra, rb })
    }
    pub fn cmpi(&mut self, bf: crate::Reg, ra: crate::Reg, imm: i64) -> &mut Self {
        self.push(Inst::Cmpi { bf, ra, imm })
    }
    pub fn ld(&mut self, rt: crate::Reg, ra: crate::Reg, disp: i64) -> &mut Self {
        self.push(Inst::Ld { rt, ra, disp })
    }
    pub fn std(&mut self, rs: crate::Reg, ra: crate::Reg, disp: i64) -> &mut Self {
        self.push(Inst::Std { rs, ra, disp })
    }
    pub fn lxv(&mut self, xt: crate::Reg, ra: crate::Reg, disp: i64) -> &mut Self {
        self.push(Inst::Lxv { xt, ra, disp })
    }
    pub fn stxv(&mut self, xs: crate::Reg, ra: crate::Reg, disp: i64) -> &mut Self {
        self.push(Inst::Stxv { xs, ra, disp })
    }
    pub fn mtctr(&mut self, ra: crate::Reg) -> &mut Self {
        self.push(Inst::Mtctr { ra })
    }
    pub fn bdnz(&mut self, target: Label) -> &mut Self {
        self.push(Inst::Bdnz { target })
    }
    pub fn b(&mut self, target: Label) -> &mut Self {
        self.push(Inst::B { target })
    }
    pub fn bc(&mut self, cond: crate::Cond, bf: crate::Reg, target: Label) -> &mut Self {
        self.push(Inst::Bc { cond, bf, target })
    }
    pub fn blr(&mut self) -> &mut Self {
        self.push(Inst::Blr)
    }
    pub fn bl(&mut self, target: Label) -> &mut Self {
        self.push(Inst::Bl { target })
    }
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_resolves_backward_label() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let top = b.bind_label();
        b.nop();
        b.bdnz(top);
        let p = b.build();
        assert_eq!(p.resolve(top), 1);
        assert_eq!(p.resolve_addr(top), CODE_BASE + 4);
    }

    #[test]
    fn build_resolves_forward_label() {
        let mut b = ProgramBuilder::new();
        let out = b.label();
        b.b(out);
        b.nop();
        b.bind(out);
        b.nop();
        let p = b.build();
        assert_eq!(p.resolve(out), 2);
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.b(l);
        assert!(matches!(b.try_build(), Err(ProgramError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn addr_index_roundtrip() {
        let mut b = ProgramBuilder::new();
        for _ in 0..10 {
            b.nop();
        }
        let p = b.build();
        for i in 0..10 {
            assert_eq!(p.index_of(p.addr_of(i)), Some(i));
        }
        assert_eq!(p.index_of(p.base() + 4 * 10), None); // one past end
        assert_eq!(p.index_of(p.base() + 2), None); // misaligned
        assert_eq!(p.index_of(p.base().wrapping_sub(4)), None); // below base
    }

    #[test]
    fn custom_base() {
        let mut b = ProgramBuilder::new();
        b.base(0x4000);
        b.nop();
        let p = b.build();
        assert_eq!(p.base(), 0x4000);
        assert_eq!(p.addr_of(0), 0x4000);
    }
}
