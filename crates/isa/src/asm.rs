//! Textual assembler and disassembler.
//!
//! [`assemble`] parses a Power-style assembly listing into a [`Program`];
//! [`disassemble`] renders a program back to text with generated `L<n>:`
//! labels at branch targets. The two round-trip:
//!
//! ```
//! use p10_isa::asm::{assemble, disassemble};
//!
//! let src = "
//!     li r4, 10
//!     mtctr r4
//! L0:
//!     addi r3, r3, 1
//!     bdnz L0
//! ";
//! let p = assemble(src).unwrap();
//! let text = disassemble(&p);
//! let p2 = assemble(&text).unwrap();
//! assert_eq!(p.insts(), p2.insts());
//! ```

use crate::inst::{Cond, Inst};
use crate::program::{Label, Program, ProgramBuilder};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// Errors from assembling text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    let parse_idx = |s: &str| -> Result<u16, AsmError> {
        s.parse()
            .map_err(|_| err(line, format!("bad register index in '{tok}'")))
    };
    if let Some(n) = tok.strip_prefix("vs") {
        return Ok(Reg::vsr(parse_idx(n)?));
    }
    if let Some(n) = tok.strip_prefix("acc") {
        return Ok(Reg::acc(parse_idx(n)?));
    }
    if let Some(n) = tok.strip_prefix("cr") {
        return Ok(Reg::cr(parse_idx(n)?));
    }
    if let Some(n) = tok.strip_prefix('r') {
        return Ok(Reg::gpr(parse_idx(n)?));
    }
    Err(err(line, format!("unknown register '{tok}'")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad immediate '{tok}'")))?;
    Ok(if neg { -v } else { v })
}

/// Parses `disp(reg)` into `(disp, reg)`.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let tok = tok.trim();
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected disp(reg), got '{tok}'")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing ')' in '{tok}'")))?;
    let disp = parse_imm(&tok[..open], line)?;
    let reg = parse_reg(&tok[open + 1..close], line)?;
    Ok((disp, reg))
}

fn parse_cond(tok: &str, line: usize) -> Result<Cond, AsmError> {
    match tok.trim() {
        "lt" => Ok(Cond::Lt),
        "gt" => Ok(Cond::Gt),
        "eq" => Ok(Cond::Eq),
        "ge" => Ok(Cond::Ge),
        "le" => Ok(Cond::Le),
        "ne" => Ok(Cond::Ne),
        other => Err(err(line, format!("unknown condition '{other}'"))),
    }
}

/// Assembles a textual listing.
///
/// Syntax: one instruction per line; `name:` defines a label; `#` or `;`
/// start comments; operands are comma-separated; memory operands are
/// `disp(reg)`.
///
/// # Errors
///
/// Returns the first syntax error with its line number, or an error for
/// undefined/duplicate labels.
#[allow(clippy::too_many_lines)]
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut defined: HashMap<String, usize> = HashMap::new();

    let mut get_label = |b: &mut ProgramBuilder, name: &str| -> Label {
        *labels.entry(name.to_owned()).or_insert_with(|| b.label())
    };

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split(['#', ';']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // Label definition (possibly followed by an instruction).
        let text = if let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label '{name}'")));
            }
            if defined.insert(name.to_owned(), line).is_some() {
                return Err(err(line, format!("label '{name}' defined twice")));
            }
            let l = get_label(&mut b, name);
            b.bind(l);
            rest[1..].trim()
        } else {
            text
        };
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let ops: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("{mnemonic} expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        macro_rules! rrr {
            ($variant:ident) => {{
                want(3)?;
                Inst::$variant {
                    rt: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                    rb: parse_reg(ops[2], line)?,
                }
            }};
        }
        macro_rules! xxx {
            ($variant:ident) => {{
                want(3)?;
                Inst::$variant {
                    xt: parse_reg(ops[0], line)?,
                    xa: parse_reg(ops[1], line)?,
                    xb: parse_reg(ops[2], line)?,
                }
            }};
        }
        macro_rules! ger {
            ($variant:ident) => {{
                want(3)?;
                Inst::$variant {
                    at: parse_reg(ops[0], line)?,
                    xa: parse_reg(ops[1], line)?,
                    xb: parse_reg(ops[2], line)?,
                }
            }};
        }
        macro_rules! load {
            ($variant:ident, $t:ident) => {{
                want(2)?;
                let (disp, ra) = parse_mem(ops[1], line)?;
                Inst::$variant {
                    $t: parse_reg(ops[0], line)?,
                    ra,
                    disp,
                }
            }};
        }

        let inst = match mnemonic {
            "li" => {
                want(2)?;
                Inst::Li {
                    rt: parse_reg(ops[0], line)?,
                    imm: parse_imm(ops[1], line)?,
                }
            }
            "addi" => {
                want(3)?;
                Inst::Addi {
                    rt: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                    imm: parse_imm(ops[2], line)?,
                }
            }
            "add" => rrr!(Add),
            "sub" => rrr!(Sub),
            "and" => rrr!(And),
            "or" => rrr!(Or),
            "xor" => rrr!(Xor),
            "mulld" => rrr!(Mulld),
            "divd" => rrr!(Divd),
            "neg" => {
                want(2)?;
                Inst::Neg {
                    rt: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                }
            }
            "sldi" | "srdi" => {
                want(3)?;
                let rt = parse_reg(ops[0], line)?;
                let ra = parse_reg(ops[1], line)?;
                let sh = parse_imm(ops[2], line)? as u8;
                if mnemonic == "sldi" {
                    Inst::Sldi { rt, ra, sh }
                } else {
                    Inst::Srdi { rt, ra, sh }
                }
            }
            "cmpd" => {
                want(3)?;
                Inst::Cmp {
                    bf: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                    rb: parse_reg(ops[2], line)?,
                }
            }
            "cmpdi" => {
                want(3)?;
                Inst::Cmpi {
                    bf: parse_reg(ops[0], line)?,
                    ra: parse_reg(ops[1], line)?,
                    imm: parse_imm(ops[2], line)?,
                }
            }
            "lbz" => load!(Lbz, rt),
            "lwz" => load!(Lwz, rt),
            "ld" => load!(Ld, rt),
            "ldx" => rrr!(Ldx),
            "stb" => load!(Stb, rs),
            "stw" => load!(Stw, rs),
            "std" => load!(Std, rs),
            "stdu" => load!(Stdu, rs),
            "lxv" => load!(Lxv, xt),
            "lxvp" => load!(Lxvp, xt),
            "stxv" => load!(Stxv, xs),
            "stxvp" => load!(Stxvp, xs),
            "lxvx" => xxx_idx(&ops, line, true)?,
            "lxvdsx" => xxx_idx(&ops, line, false)?,
            "xvadddp" => xxx!(Xvadddp),
            "xvmuldp" => xxx!(Xvmuldp),
            "xvmaddadp" => xxx!(Xvmaddadp),
            "xvmaddasp" => xxx!(Xvmaddasp),
            "xxlxor" => xxx!(Xxlxor),
            "xxspltd" => {
                want(3)?;
                Inst::Xxspltd {
                    xt: parse_reg(ops[0], line)?,
                    xa: parse_reg(ops[1], line)?,
                    uim: parse_imm(ops[2], line)? as u8,
                }
            }
            "xxsetaccz" => {
                want(1)?;
                Inst::Xxsetaccz {
                    at: parse_reg(ops[0], line)?,
                }
            }
            "xvf64gerpp" => ger!(Xvf64gerpp),
            "xvf64gernp" => ger!(Xvf64gernp),
            "xvf32gerpp" => ger!(Xvf32gerpp),
            "xvbf16ger2pp" => ger!(Xvbf16ger2pp),
            "xvi8ger4pp" => ger!(Xvi8ger4pp),
            "xxmfacc" => {
                want(1)?;
                Inst::Xxmfacc {
                    at: parse_reg(ops[0], line)?,
                }
            }
            "xxmtacc" => {
                want(1)?;
                Inst::Xxmtacc {
                    at: parse_reg(ops[0], line)?,
                }
            }
            "b" => {
                want(1)?;
                Inst::B {
                    target: get_label(&mut b, ops[0]),
                }
            }
            "bc" => {
                want(3)?;
                Inst::Bc {
                    cond: parse_cond(ops[0], line)?,
                    bf: parse_reg(ops[1], line)?,
                    target: get_label(&mut b, ops[2]),
                }
            }
            "bdnz" => {
                want(1)?;
                Inst::Bdnz {
                    target: get_label(&mut b, ops[0]),
                }
            }
            "bctr" => {
                want(0)?;
                Inst::Bctr
            }
            "bl" => {
                want(1)?;
                Inst::Bl {
                    target: get_label(&mut b, ops[0]),
                }
            }
            "blr" => {
                want(0)?;
                Inst::Blr
            }
            "mtctr" => {
                want(1)?;
                Inst::Mtctr {
                    ra: parse_reg(ops[0], line)?,
                }
            }
            "mtlr" => {
                want(1)?;
                Inst::Mtlr {
                    ra: parse_reg(ops[0], line)?,
                }
            }
            "mflr" => {
                want(1)?;
                Inst::Mflr {
                    rt: parse_reg(ops[0], line)?,
                }
            }
            "nop" => {
                want(0)?;
                Inst::Nop
            }
            "mma_wake_hint" => {
                want(0)?;
                Inst::MmaWakeHint
            }
            other => return Err(err(line, format!("unknown mnemonic '{other}'"))),
        };
        b.push(inst);
    }

    for (name, _) in labels.iter().map(|(n, l)| (n, *l)) {
        if !defined.contains_key(name) {
            return Err(err(0, format!("label '{name}' used but never defined")));
        }
    }
    b.try_build()
        .map_err(|e| err(0, format!("link error: {e}")))
}

fn xxx_idx(ops: &[&str], line: usize, plain: bool) -> Result<Inst, AsmError> {
    if ops.len() != 3 {
        return Err(err(line, "indexed load expects 3 operands"));
    }
    let xt = parse_reg(ops[0], line)?;
    let ra = parse_reg(ops[1], line)?;
    let rb = parse_reg(ops[2], line)?;
    Ok(if plain {
        Inst::Lxvx { xt, ra, rb }
    } else {
        Inst::Lxvdsx { xt, ra, rb }
    })
}

/// Disassembles a program to re-assemblable text with generated labels.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    // Collect branch-target indices and name them L0, L1, ... in order.
    let mut targets: Vec<usize> = program
        .insts()
        .iter()
        .filter_map(|i| match i {
            Inst::B { target }
            | Inst::Bc { target, .. }
            | Inst::Bdnz { target }
            | Inst::Bl { target } => Some(program.resolve(*target)),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let name_of: HashMap<usize, String> = targets
        .iter()
        .enumerate()
        .map(|(n, &idx)| (idx, format!("L{n}")))
        .collect();

    let mut out = String::new();
    for (idx, inst) in program.insts().iter().enumerate() {
        if let Some(name) = name_of.get(&idx) {
            out.push_str(name);
            out.push_str(":\n");
        }
        let line = match inst {
            Inst::B { target } => format!("b {}", name_of[&program.resolve(*target)]),
            Inst::Bc { cond, bf, target } => format!(
                "bc {}, {bf}, {}",
                cond_name(*cond),
                name_of[&program.resolve(*target)]
            ),
            Inst::Bdnz { target } => {
                format!("bdnz {}", name_of[&program.resolve(*target)])
            }
            Inst::Bl { target } => format!("bl {}", name_of[&program.resolve(*target)]),
            other => other.to_string(),
        };
        out.push_str("    ");
        out.push_str(&line);
        out.push('\n');
    }
    // A trailing label (branch to one-past-the-end is not representable;
    // the builder never produces it).
    out
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Lt => "lt",
        Cond::Gt => "gt",
        Cond::Eq => "eq",
        Cond::Ge => "ge",
        Cond::Le => "le",
        Cond::Ne => "ne",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn assemble_and_run_a_loop() {
        let p = assemble(
            "
            # sum 1..=10
            li r3, 0
            li r4, 10
            mtctr r4
            top:
                add r3, r3, r4
                addi r4, r4, -1
                bdnz top
            ",
        )
        .unwrap();
        let mut m = Machine::new();
        m.run(&p, 1000).unwrap();
        assert_eq!(m.gpr(3), 55);
    }

    #[test]
    fn memory_operands_and_vectors() {
        let p = assemble(
            "
            li r1, 0x8000
            std r1, 16(r1)
            ld r2, 16(r1)
            lxv vs34, 0(r1)
            xvmaddadp vs36, vs34, vs35
            xxsetaccz acc0
            xvf64gerpp acc0, vs34, vs36
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 7);
        let mut m = Machine::new();
        m.run(&p, 100).unwrap();
        assert_eq!(m.gpr(2), 0x8000);
    }

    #[test]
    fn forward_labels_work() {
        let p = assemble(
            "
            b end
            addi r3, r3, 1
            end:
            nop
            ",
        )
        .unwrap();
        let mut m = Machine::new();
        m.run(&p, 100).unwrap();
        assert_eq!(m.gpr(3), 0, "the addi must be skipped");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("addi r3, r3\n").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));

        let e = assemble("b nowhere\n").unwrap_err();
        assert!(e.message.contains("never defined"));

        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn disassemble_roundtrip_program_builder_output() {
        use crate::{ProgramBuilder, Reg};
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), 100);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.addi(Reg::gpr(3), Reg::gpr(3), 2);
        b.cmpi(Reg::cr(0), Reg::gpr(3), 50);
        let skip = b.label();
        b.bc(crate::Cond::Lt, Reg::cr(0), skip);
        b.addi(Reg::gpr(5), Reg::gpr(5), 1);
        b.bind(skip);
        b.bdnz(top);
        let p = b.build();

        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.insts(), p2.insts());

        // Same architectural behaviour.
        let mut m1 = Machine::new();
        m1.run(&p, 10_000).unwrap();
        let mut m2 = Machine::new();
        m2.run(&p2, 10_000).unwrap();
        assert_eq!(m1.gpr(3), m2.gpr(3));
        assert_eq!(m1.gpr(5), m2.gpr(5));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("li r1, 0x10\nli r2, -0x10\naddi r3, r1, -5\n").unwrap();
        let mut m = Machine::new();
        m.run(&p, 10).unwrap();
        assert_eq!(m.gpr(1), 16);
        assert_eq!(m.gpr(2) as i64, -16);
        assert_eq!(m.gpr(3), 11);
    }
}
