//! Zero-copy trace views over shared op storage.
//!
//! A [`TraceView`] is an `(Arc<[DynOp]>, offset, len)` triple: many views
//! share one immutable op buffer, so slicing a trace — SMT stagger
//! offsets, chopstix/simpoint windows, shorter-`max_ops` reuse — is range
//! arithmetic instead of a clone plus an O(n) `drain`. The timing model
//! ([`Core::run`](../p10_uarch) and friends) consumes views; a plain
//! [`Trace`] converts losslessly via `From`, so existing call sites keep
//! working and pay one buffer move, never a copy.
//!
//! Views compare equal iff they denote the same op sequence, regardless
//! of which buffer backs them; [`TraceView::shares_storage`] is the
//! identity test used by allocation-regression tests.

use crate::dynop::{DynOp, Trace};
use std::ops::{Index, Range};
use std::sync::Arc;

/// A borrowed-by-refcount window into an immutable dynamic-op buffer.
#[derive(Debug, Clone)]
pub struct TraceView {
    storage: Arc<[DynOp]>,
    offset: usize,
    len: usize,
}

impl TraceView {
    /// A view of an entire shared buffer.
    #[must_use]
    pub fn new(storage: Arc<[DynOp]>) -> Self {
        let len = storage.len();
        TraceView {
            storage,
            offset: 0,
            len,
        }
    }

    /// The ops in this view, in program (retirement) order.
    #[must_use]
    pub fn ops(&self) -> &[DynOp] {
        &self.storage[self.offset..self.offset + self.len]
    }

    /// Number of dynamic operations in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `range` (relative to this view), sharing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or extends past `len()`.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> TraceView {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds for view of length {}",
            self.len
        );
        TraceView {
            storage: Arc::clone(&self.storage),
            offset: self.offset + range.start,
            len: range.end - range.start,
        }
    }

    /// Whether two views are windows into the same underlying buffer
    /// (regardless of range). This is the test that stagger offsets and
    /// prefix reuse are zero-copy: derived views must share storage with
    /// their parent, not own a private clone.
    #[must_use]
    pub fn shares_storage(&self, other: &TraceView) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// Materializes the view into an owned [`Trace`] (copies the ops).
    #[must_use]
    pub fn to_trace(&self) -> Trace {
        Trace {
            ops: self.ops().to_vec(),
        }
    }

    /// Total flops (and int-MAC-equivalents) in the view.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.ops().iter().map(|o| u64::from(o.flops)).sum()
    }

    /// Splits the view into consecutive `interval_ops`-sized windows,
    /// each sharing this view's storage (pure range arithmetic — this is
    /// what makes sampled execution's interval partitioning free on the
    /// trace arena). The final window is the ragged tail when the length
    /// is not a multiple of `interval_ops`; every op lands in exactly one
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ops` is zero.
    #[must_use]
    pub fn intervals(&self, interval_ops: usize) -> Vec<TraceView> {
        assert!(interval_ops > 0, "interval_ops must be positive");
        (0..self.len)
            .step_by(interval_ops)
            .map(|start| self.slice(start..self.len.min(start + interval_ops)))
            .collect()
    }

    /// The `idx`-th `interval_ops`-sized window of the view, clipped to
    /// the view's bounds (possibly empty for out-of-range indices) —
    /// [`TraceView::intervals`] element access without materializing the
    /// whole partition.
    #[must_use]
    pub fn interval(&self, interval_ops: usize, idx: usize) -> TraceView {
        assert!(interval_ops > 0, "interval_ops must be positive");
        let start = self.len.min(idx.saturating_mul(interval_ops));
        let end = self.len.min(start.saturating_add(interval_ops));
        self.slice(start..end)
    }
}

impl Index<usize> for TraceView {
    type Output = DynOp;

    fn index(&self, idx: usize) -> &DynOp {
        &self.ops()[idx]
    }
}

impl PartialEq for TraceView {
    fn eq(&self, other: &Self) -> bool {
        self.ops() == other.ops()
    }
}

impl From<Trace> for TraceView {
    fn from(t: Trace) -> Self {
        TraceView::new(t.ops.into())
    }
}

impl From<Vec<DynOp>> for TraceView {
    fn from(ops: Vec<DynOp>) -> Self {
        TraceView::new(ops.into())
    }
}

impl From<&Trace> for TraceView {
    fn from(t: &Trace) -> Self {
        TraceView::new(t.ops.clone().into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynop::OpClass;

    fn ops(n: usize) -> Vec<DynOp> {
        (0..n)
            .map(|i| DynOp::new(i as u64 * 4, OpClass::IntAlu))
            .collect()
    }

    #[test]
    fn full_view_round_trips() {
        let t = Trace { ops: ops(5) };
        let v = TraceView::from(t.clone());
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert_eq!(v.ops(), &t.ops[..]);
        assert_eq!(v.to_trace().ops, t.ops);
    }

    #[test]
    fn slice_is_range_arithmetic_on_shared_storage() {
        let v = TraceView::from(ops(10));
        let mid = v.slice(3..7);
        assert_eq!(mid.len(), 4);
        assert_eq!(mid[0].pc, 12);
        assert_eq!(mid[3].pc, 24);
        assert!(mid.shares_storage(&v));
        // Nested slicing composes offsets.
        let inner = mid.slice(1..3);
        assert_eq!(inner.ops(), &v.ops()[4..6]);
        assert!(inner.shares_storage(&v));
    }

    #[test]
    fn empty_slice_is_fine() {
        let v = TraceView::from(ops(4));
        assert!(v.slice(2..2).is_empty());
        assert!(v.slice(4..4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        let v = TraceView::from(ops(4));
        let _ = v.slice(2..5);
    }

    #[test]
    fn equality_is_by_content_not_storage() {
        let a = TraceView::from(ops(6));
        let b = TraceView::from(ops(6));
        assert_eq!(a, b);
        assert!(!a.shares_storage(&b));
        assert_ne!(a.slice(0..5), b);
    }

    #[test]
    fn intervals_partition_the_view_with_ragged_tail() {
        let v = TraceView::from(ops(10));
        let parts = v.intervals(4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 4);
        assert_eq!(parts[2].len(), 2, "ragged tail kept");
        // Every window is zero-copy and they reassemble the exact view.
        let mut all = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            assert!(p.shares_storage(&v));
            assert_eq!(p.ops(), v.interval(4, i).ops());
            all.extend_from_slice(p.ops());
        }
        assert_eq!(&all[..], v.ops());
        // Exactly-divisible views have no tail; out-of-range interval
        // access clips to empty.
        assert_eq!(v.intervals(5).len(), 2);
        assert!(v.interval(4, 3).is_empty());
        assert!(v.interval(4, usize::MAX / 2).is_empty());
    }

    #[test]
    fn total_flops_matches_trace() {
        let mut v = ops(3);
        v[1].flops = 7;
        let trace = Trace { ops: v };
        assert_eq!(TraceView::from(&trace).total_flops(), trace.total_flops());
    }
}
