//! Dynamic operations: the trace records consumed by the timing model.
//!
//! A [`DynOp`] is one executed instruction with all dynamic information
//! resolved: source/destination registers (packed), memory address and size,
//! branch outcome and target, and the work it represents (flops / MACs).
//! The cycle-level model in `p10-uarch` replays these without re-executing
//! semantics.

use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// Maximum number of register sources carried per dynamic op.
pub const MAX_SRCS: usize = 4;

/// Execution-resource class of a dynamic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer ALU op (1-cycle class).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, unpipelined).
    IntDiv,
    /// Any branch (details in [`DynOp::branch`]).
    Branch,
    /// Memory load (details in [`DynOp::mem`]).
    Load,
    /// Memory store (details in [`DynOp::mem`]).
    Store,
    /// VSX simple (logical/permute/splat) op.
    VsxSimple,
    /// VSX floating-point arithmetic (add/mul/FMA); flops in
    /// [`DynOp::flops`].
    VsxFp,
    /// MMA outer-product op executing on the accelerator grid.
    Mma(MmaKind),
    /// MMA accumulator move / prime / zero.
    MmaMove,
    /// Move to/from special register (CTR/LR).
    MoveSpr,
    /// No-op (still fetched/decoded/completed).
    Nop,
    /// Hint (e.g. MMA wake): consumes front-end slots only.
    Hint,
}

/// Data type executed by an MMA outer-product instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MmaKind {
    /// Double-precision `ger` (4×2 grid, 16 flops per op).
    F64,
    /// Single-precision `ger` (4×4 grid, 32 flops per op).
    F32,
    /// Bfloat16 rank-2 `ger` (4×4 grid of f32, 32 MACs per op).
    Bf16,
    /// INT8 rank-4 `ger` (4×4 grid, 64 MACs per op).
    I8,
}

impl MmaKind {
    /// Floating-point operations (or MAC-equivalents for INT8) performed by
    /// one instruction of this kind.
    #[must_use]
    pub fn ops_per_inst(self) -> u32 {
        match self {
            MmaKind::F64 => 16,
            MmaKind::F32 => 32,
            MmaKind::Bf16 => 64, // 32 MACs = 64 flops
            MmaKind::I8 => 128,  // 64 MACs = 128 int ops
        }
    }
}

/// Kind of branch, for predictor modeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Unconditional direct branch.
    Direct,
    /// Conditional direct branch.
    Conditional,
    /// Counter-based loop branch (`bdnz`).
    Counter,
    /// Indirect branch through CTR.
    Indirect,
    /// Call (`bl`): pushes a return address.
    Call,
    /// Return (`blr`): indirect through LR, predictable via a return stack.
    Return,
}

/// Resolved outcome of a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Branch kind.
    pub kind: BranchKind,
    /// Whether the branch was taken.
    pub taken: bool,
    /// The address of the next instruction actually executed.
    pub target: u64,
}

/// Resolved memory access of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    /// Effective (virtual) byte address.
    pub addr: u64,
    /// Access size in bytes (1–32).
    pub size: u8,
}

/// One executed instruction with dynamic information resolved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynOp {
    /// Instruction address.
    pub pc: u64,
    /// Resource class.
    pub class: OpClass,
    /// Packed source registers (0 = empty slot); see [`Reg::packed`].
    pub srcs: [u16; MAX_SRCS],
    /// Packed destination register (0 = none).
    pub dst: u16,
    /// Packed second destination register (0 = none) — used by update-form
    /// memory ops and paired (32-byte) vector loads.
    pub dst2: u16,
    /// Memory access, for loads/stores.
    pub mem: Option<MemRef>,
    /// Branch outcome, for branches.
    pub branch: Option<BranchInfo>,
    /// Floating-point (or int-MAC-equivalent) operations this op performs.
    pub flops: u16,
    /// Whether the static instruction used the prefixed (8-byte) encoding.
    pub prefixed: bool,
}

impl DynOp {
    /// A blank op of the given class at `pc` (no operands).
    #[must_use]
    pub fn new(pc: u64, class: OpClass) -> Self {
        DynOp {
            pc,
            class,
            srcs: [0; MAX_SRCS],
            dst: 0,
            dst2: 0,
            mem: None,
            branch: None,
            flops: 0,
            prefixed: false,
        }
    }

    /// Adds a source register (ignores duplicates and full slots are a
    /// logic error caught by `debug_assert`).
    pub fn add_src(&mut self, r: Reg) {
        let p = r.packed();
        for s in &mut self.srcs {
            if *s == p {
                return;
            }
            if *s == 0 {
                *s = p;
                return;
            }
        }
        debug_assert!(false, "more than {MAX_SRCS} sources on one op");
    }

    /// Sets the destination register.
    pub fn set_dst(&mut self, r: Reg) {
        self.dst = r.packed();
    }

    /// Sets the second destination register.
    pub fn set_dst2(&mut self, r: Reg) {
        self.dst2 = r.packed();
    }

    /// Iterator over the populated source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter_map(|&p| Reg::from_packed(p))
    }

    /// The destination register, if any.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        Reg::from_packed(self.dst)
    }

    /// The second destination register, if any.
    #[must_use]
    pub fn dest2(&self) -> Option<Reg> {
        Reg::from_packed(self.dst2)
    }

    /// Whether this op is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.class == OpClass::Load
    }

    /// Whether this op is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }

    /// Whether this op is a branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }

    /// Whether this op executes on the MMA grid.
    #[must_use]
    pub fn is_mma_compute(&self) -> bool {
        matches!(self.class, OpClass::Mma(_))
    }
}

/// A dynamic-op trace: the output of functional execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Executed operations in program (retirement) order.
    pub ops: Vec<DynOp>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of dynamic operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total flops (and int-MAC-equivalents) in the trace.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|o| u64::from(o.flops)).sum()
    }

    /// Fraction of ops satisfying a predicate.
    #[must_use]
    pub fn fraction(&self, pred: impl Fn(&DynOp) -> bool) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|o| pred(o)).count() as f64 / self.ops.len() as f64
    }
}

impl FromIterator<DynOp> for Trace {
    fn from_iter<T: IntoIterator<Item = DynOp>>(iter: T) -> Self {
        Trace {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<DynOp> for Trace {
    fn extend<T: IntoIterator<Item = DynOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_src_dedups_and_fills_slots() {
        let mut op = DynOp::new(0, OpClass::IntAlu);
        op.add_src(Reg::gpr(1));
        op.add_src(Reg::gpr(1));
        op.add_src(Reg::gpr(2));
        let srcs: Vec<_> = op.sources().collect();
        assert_eq!(srcs, vec![Reg::gpr(1), Reg::gpr(2)]);
    }

    #[test]
    fn dst_accessors() {
        let mut op = DynOp::new(0, OpClass::Load);
        assert_eq!(op.dest(), None);
        op.set_dst(Reg::gpr(3));
        op.set_dst2(Reg::gpr(4));
        assert_eq!(op.dest(), Some(Reg::gpr(3)));
        assert_eq!(op.dest2(), Some(Reg::gpr(4)));
    }

    #[test]
    fn class_predicates() {
        assert!(DynOp::new(0, OpClass::Load).is_load());
        assert!(DynOp::new(0, OpClass::Store).is_store());
        assert!(DynOp::new(0, OpClass::Branch).is_branch());
        assert!(DynOp::new(0, OpClass::Mma(MmaKind::F32)).is_mma_compute());
        assert!(!DynOp::new(0, OpClass::MmaMove).is_mma_compute());
    }

    #[test]
    fn mma_ops_per_inst() {
        assert_eq!(MmaKind::F64.ops_per_inst(), 16);
        assert_eq!(MmaKind::F32.ops_per_inst(), 32);
        assert_eq!(MmaKind::Bf16.ops_per_inst(), 64);
        assert_eq!(MmaKind::I8.ops_per_inst(), 128);
    }

    #[test]
    fn trace_aggregates() {
        let mut t = Trace::new();
        let mut a = DynOp::new(0, OpClass::VsxFp);
        a.flops = 4;
        let b = DynOp::new(4, OpClass::IntAlu);
        t.extend([a, b]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_flops(), 4);
        assert!((t.fraction(|o| o.class == OpClass::IntAlu) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_fraction_is_zero() {
        assert_eq!(Trace::new().fraction(|_| true), 0.0);
    }
}
