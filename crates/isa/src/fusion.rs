//! Instruction-fusion legality rules.
//!
//! POWER10 detects over 200 fusible instruction-type pairs at pre-decode
//! and fuses them at decode (paper §II-B), paying one operation's worth of
//! decode/dispatch/issue activity for two instructions' work, and cutting
//! dependent-operation latency. This module defines *which adjacent dynamic
//! ops may fuse*; whether fusion actually happens (and what it saves) is
//! the decode model's job in `p10-uarch`.
//!
//! The >200 architectural pair types collapse into four behavioural
//! categories here, each with the paper's documented effect:
//!
//! * [`FusionKind::CmpBranch`] — compare + conditional branch.
//! * [`FusionKind::DependentAlu`] — dependent simple-ALU pairs (single
//!   shared issue-queue entry, zero-cycle dependent latency).
//! * [`FusionKind::AddrGenLoad`] — address-forming add + load.
//! * [`FusionKind::StorePair`] — stores to consecutive addresses (single
//!   address-generation operation; one store-queue entry when each store is
//!   eight bytes or fewer).

use crate::dynop::{DynOp, OpClass};
#[cfg(test)]
use crate::reg::Reg;
use crate::reg::RegClass;
use serde::{Deserialize, Serialize};

/// Behavioural category of a fusible pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionKind {
    /// Compare feeding a conditional branch on the same CR field.
    CmpBranch,
    /// Simple ALU op feeding a dependent simple ALU op.
    DependentAlu,
    /// ALU op producing the base register of an immediately following load.
    AddrGenLoad,
    /// Two stores to consecutive byte addresses.
    StorePair,
    /// `mtctr`/`mtlr` feeding the indirect branch that consumes it — the
    /// paper's "as low as zero cycles" GPR-to-branch-target-register
    /// exchange enabled by merging branch execution into the slices.
    MoveSprBranch,
}

impl FusionKind {
    /// Whether the fused pair occupies a single issue-queue entry.
    #[must_use]
    pub fn single_issue_entry(self) -> bool {
        match self {
            FusionKind::CmpBranch | FusionKind::DependentAlu | FusionKind::MoveSprBranch => true,
            FusionKind::AddrGenLoad => false,
            FusionKind::StorePair => true,
        }
    }
}

/// Returns the fusion category if dynamic ops `a` then `b` (adjacent in
/// program order) form a fusible pair.
#[must_use]
pub fn classify_pair(a: &DynOp, b: &DynOp) -> Option<FusionKind> {
    // A pair never fuses across a branch boundary on the older side:
    // the older op must produce, the younger consume.
    if let Some(kind) = cmp_branch(a, b) {
        return Some(kind);
    }
    if let Some(kind) = store_pair(a, b) {
        return Some(kind);
    }
    if let Some(kind) = addrgen_load(a, b) {
        return Some(kind);
    }
    if let Some(kind) = movespr_branch(a, b) {
        return Some(kind);
    }
    dependent_alu(a, b)
}

fn movespr_branch(a: &DynOp, b: &DynOp) -> Option<FusionKind> {
    if a.class != OpClass::MoveSpr || b.class != OpClass::Branch {
        return None;
    }
    let dst = a
        .dest()
        .filter(|r| matches!(r.class(), RegClass::Ctr | RegClass::Lr))?;
    b.sources()
        .any(|s| s == dst)
        .then_some(FusionKind::MoveSprBranch)
}

fn cmp_branch(a: &DynOp, b: &DynOp) -> Option<FusionKind> {
    if a.class != OpClass::IntAlu || b.class != OpClass::Branch {
        return None;
    }
    let cr_dst = a.dest().filter(|r| r.class() == RegClass::Cr)?;
    b.sources()
        .any(|s| s == cr_dst)
        .then_some(FusionKind::CmpBranch)
}

fn dependent_alu(a: &DynOp, b: &DynOp) -> Option<FusionKind> {
    if a.class != OpClass::IntAlu || b.class != OpClass::IntAlu {
        return None;
    }
    let dst = a.dest().filter(|r| r.class() == RegClass::Gpr)?;
    b.sources()
        .any(|s| s == dst)
        .then_some(FusionKind::DependentAlu)
}

fn addrgen_load(a: &DynOp, b: &DynOp) -> Option<FusionKind> {
    if a.class != OpClass::IntAlu || b.class != OpClass::Load {
        return None;
    }
    let dst = a.dest().filter(|r| r.class() == RegClass::Gpr)?;
    b.sources()
        .any(|s| s == dst)
        .then_some(FusionKind::AddrGenLoad)
}

fn store_pair(a: &DynOp, b: &DynOp) -> Option<FusionKind> {
    let (ma, mb) = (a.mem?, b.mem?);
    if !a.is_store() || !b.is_store() {
        return None;
    }
    // Consecutive addresses, each store up to 16 bytes (the fused pair is
    // handled by a single address-generation operation supporting two
    // stores up to 16 bytes each, per the paper).
    (ma.size <= 16 && mb.size <= 16 && mb.addr == ma.addr + u64::from(ma.size))
        .then_some(FusionKind::StorePair)
}

/// Whether a fused [`FusionKind::StorePair`] consumes a single store-queue
/// entry (true when both stores are eight bytes or fewer).
#[must_use]
pub fn store_pair_single_sq_entry(a: &DynOp, b: &DynOp) -> bool {
    matches!((a.mem, b.mem), (Some(ma), Some(mb)) if ma.size <= 8 && mb.size <= 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynop::{BranchInfo, BranchKind, MemRef};

    fn alu(dst: Reg, srcs: &[Reg]) -> DynOp {
        let mut op = DynOp::new(0, OpClass::IntAlu);
        for &s in srcs {
            op.add_src(s);
        }
        op.set_dst(dst);
        op
    }

    fn store(addr: u64, size: u8) -> DynOp {
        let mut op = DynOp::new(0, OpClass::Store);
        op.mem = Some(MemRef { addr, size });
        op
    }

    #[test]
    fn cmp_branch_fuses() {
        let cmp = alu(Reg::cr(0), &[Reg::gpr(3)]);
        let mut br = DynOp::new(4, OpClass::Branch);
        br.add_src(Reg::cr(0));
        br.branch = Some(BranchInfo {
            kind: BranchKind::Conditional,
            taken: true,
            target: 0x100,
        });
        assert_eq!(classify_pair(&cmp, &br), Some(FusionKind::CmpBranch));
    }

    #[test]
    fn cmp_branch_requires_matching_cr_field() {
        let cmp = alu(Reg::cr(1), &[Reg::gpr(3)]);
        let mut br = DynOp::new(4, OpClass::Branch);
        br.add_src(Reg::cr(0));
        assert_eq!(classify_pair(&cmp, &br), None);
    }

    #[test]
    fn dependent_alu_fuses() {
        let a = alu(Reg::gpr(3), &[Reg::gpr(1)]);
        let b = alu(Reg::gpr(4), &[Reg::gpr(3)]);
        assert_eq!(classify_pair(&a, &b), Some(FusionKind::DependentAlu));
    }

    #[test]
    fn independent_alu_does_not_fuse() {
        let a = alu(Reg::gpr(3), &[Reg::gpr(1)]);
        let b = alu(Reg::gpr(4), &[Reg::gpr(2)]);
        assert_eq!(classify_pair(&a, &b), None);
    }

    #[test]
    fn addrgen_load_fuses() {
        let a = alu(Reg::gpr(7), &[Reg::gpr(1)]);
        let mut ld = DynOp::new(4, OpClass::Load);
        ld.add_src(Reg::gpr(7));
        ld.set_dst(Reg::gpr(8));
        ld.mem = Some(MemRef { addr: 64, size: 8 });
        assert_eq!(classify_pair(&a, &ld), Some(FusionKind::AddrGenLoad));
    }

    #[test]
    fn consecutive_stores_fuse() {
        let a = store(0x1000, 8);
        let b = store(0x1008, 8);
        assert_eq!(classify_pair(&a, &b), Some(FusionKind::StorePair));
        assert!(store_pair_single_sq_entry(&a, &b));
    }

    #[test]
    fn wide_consecutive_stores_fuse_but_use_two_sq_entries() {
        let a = store(0x1000, 16);
        let b = store(0x1010, 16);
        assert_eq!(classify_pair(&a, &b), Some(FusionKind::StorePair));
        assert!(!store_pair_single_sq_entry(&a, &b));
    }

    #[test]
    fn non_consecutive_stores_do_not_fuse() {
        let a = store(0x1000, 8);
        let b = store(0x1010, 8);
        assert_eq!(classify_pair(&a, &b), None);
        let c = store(0x0ff8, 8); // descending
        assert_eq!(classify_pair(&a, &c), None);
    }

    #[test]
    fn mtctr_bctr_fuses_for_zero_cycle_exchange() {
        let mut mv = DynOp::new(0, OpClass::MoveSpr);
        mv.add_src(Reg::gpr(4));
        mv.set_dst(Reg::ctr());
        let mut br = DynOp::new(4, OpClass::Branch);
        br.add_src(Reg::ctr());
        br.branch = Some(BranchInfo {
            kind: BranchKind::Indirect,
            taken: true,
            target: 0x200,
        });
        assert_eq!(classify_pair(&mv, &br), Some(FusionKind::MoveSprBranch));
        // mtctr followed by an unrelated branch does not fuse.
        let mut ret = DynOp::new(4, OpClass::Branch);
        ret.add_src(Reg::lr());
        assert_eq!(classify_pair(&mv, &ret), None);
    }

    #[test]
    fn single_entry_property_per_kind() {
        assert!(FusionKind::CmpBranch.single_issue_entry());
        assert!(FusionKind::DependentAlu.single_issue_entry());
        assert!(!FusionKind::AddrGenLoad.single_issue_entry());
    }
}
