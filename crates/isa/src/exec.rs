//! Functional (architectural) execution.
//!
//! [`Machine`] holds full architectural state and executes [`Program`]s,
//! producing the dynamic-op [`Trace`] that the timing model replays.
//!
//! ## Accumulator/VSR aliasing
//!
//! In the real ISA each 512-bit accumulator `acc i` overlays VSRs
//! `4i..4i+4`. The executor models the data movement exactly (`xxmfacc`
//! copies the accumulator into its backing VSRs, `xxmtacc` the reverse) and
//! synthesizes the corresponding *dependence* edges: after an `xxmfacc`,
//! reads of a backing VSR also list the accumulator as a source, so the
//! timing model sees the true producer.

use crate::dynop::{BranchInfo, BranchKind, DynOp, MemRef, MmaKind, OpClass, Trace};
use crate::inst::Inst;
use crate::mem::SparseMemory;
use crate::program::Program;
use crate::reg::{Acc, Reg};
use std::fmt;

/// The link-register sentinel that means "return to host": a top-level
/// `blr` (or `bctr` to this address) halts execution.
pub const HALT_ADDR: u64 = 0xffff_0000_0000_0000;

/// Errors during functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An indirect branch targeted an address outside the program.
    InvalidBranchTarget {
        /// Address of the faulting branch.
        pc: u64,
        /// The invalid target address.
        target: u64,
    },
    /// `xvf64gerpp` requires an even-numbered starting VSR for its pair.
    OddF64GerPair {
        /// Address of the faulting instruction.
        pc: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidBranchTarget { pc, target } => {
                write!(f, "invalid branch target {target:#x} at pc {pc:#x}")
            }
            ExecError::OddF64GerPair { pc } => {
                write!(f, "xvf64gerpp with odd VSR pair start at pc {pc:#x}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// An architectural machine: registers, accumulators, and sparse memory.
#[derive(Debug, Clone)]
pub struct Machine {
    gpr: [u64; 32],
    vsr: [[u64; 2]; 64],
    acc: [Acc; 8],
    cr: [u8; 8],
    ctr: u64,
    lr: u64,
    /// Memory is public state: workloads pre-initialize data here.
    pub mem: SparseMemory,
    /// Which accumulators have been `xxmfacc`-ed so their backing VSRs
    /// carry an accumulator dependence.
    acc_backing_live: [bool; 8],
    executed: u64,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl std::hash::Hash for Machine {
    /// Hashes the full architectural state (registers, accumulators,
    /// special registers, memory image, execution count) — the machine
    /// half of a workload's content key for trace memoization.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.gpr.hash(state);
        self.vsr.hash(state);
        self.acc.hash(state);
        self.cr.hash(state);
        self.ctr.hash(state);
        self.lr.hash(state);
        self.mem.hash(state);
        self.acc_backing_live.hash(state);
        self.executed.hash(state);
    }
}

impl Machine {
    /// Creates a machine with zeroed registers, `lr` set to [`HALT_ADDR`],
    /// and empty memory.
    #[must_use]
    pub fn new() -> Self {
        Machine {
            gpr: [0; 32],
            vsr: [[0; 2]; 64],
            acc: [Acc::zero(); 8],
            cr: [0; 8],
            ctr: 0,
            lr: HALT_ADDR,
            mem: SparseMemory::new(),
            acc_backing_live: [false; 8],
            executed: 0,
        }
    }

    /// Reads GPR `n`.
    #[must_use]
    pub fn gpr(&self, n: u16) -> u64 {
        self.gpr[n as usize]
    }

    /// Writes GPR `n`.
    pub fn set_gpr(&mut self, n: u16, v: u64) {
        self.gpr[n as usize] = v;
    }

    /// Reads VSR `n` as two 64-bit words `[low, high]`.
    #[must_use]
    pub fn vsr(&self, n: u16) -> [u64; 2] {
        self.vsr[n as usize]
    }

    /// Writes VSR `n`.
    pub fn set_vsr(&mut self, n: u16, v: [u64; 2]) {
        self.vsr[n as usize] = v;
    }

    /// Reads accumulator `n`.
    #[must_use]
    pub fn acc(&self, n: u16) -> Acc {
        self.acc[n as usize]
    }

    /// Writes accumulator `n`.
    pub fn set_acc(&mut self, n: u16, v: Acc) {
        self.acc[n as usize] = v;
    }

    /// Reads CR field `n` (low 3 bits: LT=4, GT=2, EQ=1).
    #[must_use]
    pub fn cr(&self, n: u16) -> u8 {
        self.cr[n as usize]
    }

    /// The count register.
    #[must_use]
    pub fn ctr(&self) -> u64 {
        self.ctr
    }

    /// Sets the count register.
    pub fn set_ctr(&mut self, v: u64) {
        self.ctr = v;
    }

    /// The link register.
    #[must_use]
    pub fn lr(&self) -> u64 {
        self.lr
    }

    /// Total instructions executed over the machine's lifetime.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Runs `program` from its first instruction until it halts (falls off
    /// the end or returns to [`HALT_ADDR`]) or `max_ops` instructions have
    /// executed, whichever comes first. Returns the dynamic-op trace.
    ///
    /// `max_ops` as a normal stopping condition is deliberate: the paper's
    /// proxy workloads are *endless* L1-contained loops measured over a
    /// window (§III-A).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid indirect-branch targets or malformed
    /// MMA register pairs; the machine state reflects execution up to the
    /// faulting instruction.
    pub fn run(&mut self, program: &Program, max_ops: u64) -> Result<Trace, ExecError> {
        let mut trace = Trace::new();
        trace.ops.reserve(max_ops.min(1 << 20) as usize);
        let mut idx = 0usize;
        let mut ops = 0u64;
        while idx < program.len() && ops < max_ops {
            let (op, next) = self.step(program, idx)?;
            trace.ops.push(op);
            ops += 1;
            self.executed += 1;
            match next {
                NextPc::Seq => idx += 1,
                NextPc::Index(i) => idx = i,
                NextPc::Halt => break,
            }
        }
        Ok(trace)
    }

    fn set_cr_cmp(&mut self, bf: Reg, a: i64, b: i64) {
        let f = match a.cmp(&b) {
            std::cmp::Ordering::Less => 0b100,
            std::cmp::Ordering::Greater => 0b010,
            std::cmp::Ordering::Equal => 0b001,
        };
        self.cr[bf.index() as usize] = f;
    }

    /// Adds `r` as a source of `op`; if `r` is a backing VSR of a live
    /// accumulator, also adds the accumulator.
    fn read_vsr_src(&self, op: &mut DynOp, v: u16) {
        op.add_src(Reg::vsr(v));
        if v < 32 && self.acc_backing_live[(v / 4) as usize] {
            op.add_src(Reg::acc(v / 4));
        }
    }

    fn ea(&self, ra: Reg, disp: i64) -> u64 {
        self.gpr[ra.index() as usize].wrapping_add(disp as u64)
    }

    /// Executes the instruction at `idx`, returning its dynamic op and the
    /// next control-flow step.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, program: &Program, idx: usize) -> Result<(DynOp, NextPc), ExecError> {
        let inst = program.insts()[idx];
        let pc = program.addr_of(idx);
        let seq_addr = program.addr_of(idx + 1);
        let mut op;
        let mut next = NextPc::Seq;

        macro_rules! alu3 {
            ($rt:expr, $ra:expr, $rb:expr, $f:expr) => {{
                op = DynOp::new(pc, OpClass::IntAlu);
                op.add_src($ra);
                op.add_src($rb);
                op.set_dst($rt);
                let val = $f(
                    self.gpr[$ra.index() as usize],
                    self.gpr[$rb.index() as usize],
                );
                self.gpr[$rt.index() as usize] = val;
            }};
        }

        match inst {
            Inst::Addi { rt, ra, imm } => {
                op = DynOp::new(pc, OpClass::IntAlu);
                op.add_src(ra);
                op.set_dst(rt);
                self.gpr[rt.index() as usize] =
                    self.gpr[ra.index() as usize].wrapping_add(imm as u64);
            }
            Inst::Li { rt, imm } => {
                op = DynOp::new(pc, OpClass::IntAlu);
                op.set_dst(rt);
                self.gpr[rt.index() as usize] = imm as u64;
            }
            Inst::Add { rt, ra, rb } => alu3!(rt, ra, rb, |a: u64, b: u64| a.wrapping_add(b)),
            Inst::Sub { rt, ra, rb } => alu3!(rt, ra, rb, |a: u64, b: u64| a.wrapping_sub(b)),
            Inst::And { rt, ra, rb } => alu3!(rt, ra, rb, |a: u64, b: u64| a & b),
            Inst::Or { rt, ra, rb } => alu3!(rt, ra, rb, |a: u64, b: u64| a | b),
            Inst::Xor { rt, ra, rb } => alu3!(rt, ra, rb, |a: u64, b: u64| a ^ b),
            Inst::Neg { rt, ra } => {
                op = DynOp::new(pc, OpClass::IntAlu);
                op.add_src(ra);
                op.set_dst(rt);
                self.gpr[rt.index() as usize] =
                    (self.gpr[ra.index() as usize] as i64).wrapping_neg() as u64;
            }
            Inst::Sldi { rt, ra, sh } => {
                op = DynOp::new(pc, OpClass::IntAlu);
                op.add_src(ra);
                op.set_dst(rt);
                self.gpr[rt.index() as usize] = self.gpr[ra.index() as usize] << (sh & 63);
            }
            Inst::Srdi { rt, ra, sh } => {
                op = DynOp::new(pc, OpClass::IntAlu);
                op.add_src(ra);
                op.set_dst(rt);
                self.gpr[rt.index() as usize] = self.gpr[ra.index() as usize] >> (sh & 63);
            }
            Inst::Mulld { rt, ra, rb } => {
                op = DynOp::new(pc, OpClass::IntMul);
                op.add_src(ra);
                op.add_src(rb);
                op.set_dst(rt);
                self.gpr[rt.index() as usize] = (self.gpr[ra.index() as usize] as i64)
                    .wrapping_mul(self.gpr[rb.index() as usize] as i64)
                    as u64;
            }
            Inst::Divd { rt, ra, rb } => {
                op = DynOp::new(pc, OpClass::IntDiv);
                op.add_src(ra);
                op.add_src(rb);
                op.set_dst(rt);
                let a = self.gpr[ra.index() as usize] as i64;
                let b = self.gpr[rb.index() as usize] as i64;
                // Architecturally undefined for b == 0 or overflow; the
                // model defines the result as 0.
                self.gpr[rt.index() as usize] = if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    (a / b) as u64
                };
            }
            Inst::Cmp { bf, ra, rb } => {
                op = DynOp::new(pc, OpClass::IntAlu);
                op.add_src(ra);
                op.add_src(rb);
                op.set_dst(bf);
                self.set_cr_cmp(
                    bf,
                    self.gpr[ra.index() as usize] as i64,
                    self.gpr[rb.index() as usize] as i64,
                );
            }
            Inst::Cmpi { bf, ra, imm } => {
                op = DynOp::new(pc, OpClass::IntAlu);
                op.add_src(ra);
                op.set_dst(bf);
                self.set_cr_cmp(bf, self.gpr[ra.index() as usize] as i64, imm);
            }

            // ---- loads ----
            Inst::Lbz { rt, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Load);
                op.add_src(ra);
                op.set_dst(rt);
                op.mem = Some(MemRef { addr, size: 1 });
                self.gpr[rt.index() as usize] = u64::from(self.mem.read_u8(addr));
            }
            Inst::Lwz { rt, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Load);
                op.add_src(ra);
                op.set_dst(rt);
                op.mem = Some(MemRef { addr, size: 4 });
                self.gpr[rt.index() as usize] = u64::from(self.mem.read_u32(addr));
            }
            Inst::Ld { rt, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Load);
                op.add_src(ra);
                op.set_dst(rt);
                op.mem = Some(MemRef { addr, size: 8 });
                self.gpr[rt.index() as usize] = self.mem.read_u64(addr);
            }
            Inst::Ldx { rt, ra, rb } => {
                let addr =
                    self.gpr[ra.index() as usize].wrapping_add(self.gpr[rb.index() as usize]);
                op = DynOp::new(pc, OpClass::Load);
                op.add_src(ra);
                op.add_src(rb);
                op.set_dst(rt);
                op.mem = Some(MemRef { addr, size: 8 });
                self.gpr[rt.index() as usize] = self.mem.read_u64(addr);
            }

            // ---- stores ----
            Inst::Stb { rs, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Store);
                op.add_src(rs);
                op.add_src(ra);
                op.mem = Some(MemRef { addr, size: 1 });
                self.mem.write_u8(addr, self.gpr[rs.index() as usize] as u8);
            }
            Inst::Stw { rs, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Store);
                op.add_src(rs);
                op.add_src(ra);
                op.mem = Some(MemRef { addr, size: 4 });
                self.mem
                    .write_u32(addr, self.gpr[rs.index() as usize] as u32);
            }
            Inst::Std { rs, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Store);
                op.add_src(rs);
                op.add_src(ra);
                op.mem = Some(MemRef { addr, size: 8 });
                self.mem.write_u64(addr, self.gpr[rs.index() as usize]);
            }
            Inst::Stdu { rs, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Store);
                op.add_src(rs);
                op.add_src(ra);
                op.set_dst(ra); // update form writes the base register
                op.mem = Some(MemRef { addr, size: 8 });
                self.mem.write_u64(addr, self.gpr[rs.index() as usize]);
                self.gpr[ra.index() as usize] = addr;
            }

            // ---- vector memory ----
            Inst::Lxv { xt, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Load);
                op.add_src(ra);
                op.set_dst(xt);
                op.mem = Some(MemRef { addr, size: 16 });
                self.vsr[xt.index() as usize] = self.mem.read_u128_words(addr);
            }
            Inst::Lxvx { xt, ra, rb } => {
                let addr =
                    self.gpr[ra.index() as usize].wrapping_add(self.gpr[rb.index() as usize]);
                op = DynOp::new(pc, OpClass::Load);
                op.add_src(ra);
                op.add_src(rb);
                op.set_dst(xt);
                op.mem = Some(MemRef { addr, size: 16 });
                self.vsr[xt.index() as usize] = self.mem.read_u128_words(addr);
            }
            Inst::Lxvp { xt, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Load);
                op.add_src(ra);
                op.set_dst(xt);
                op.set_dst2(Reg::vsr(xt.index() + 1));
                op.mem = Some(MemRef { addr, size: 32 });
                self.vsr[xt.index() as usize] = self.mem.read_u128_words(addr);
                self.vsr[xt.index() as usize + 1] = self.mem.read_u128_words(addr + 16);
            }
            Inst::Lxvdsx { xt, ra, rb } => {
                let addr =
                    self.gpr[ra.index() as usize].wrapping_add(self.gpr[rb.index() as usize]);
                op = DynOp::new(pc, OpClass::Load);
                op.add_src(ra);
                op.add_src(rb);
                op.set_dst(xt);
                op.mem = Some(MemRef { addr, size: 8 });
                let d = self.mem.read_u64(addr);
                self.vsr[xt.index() as usize] = [d, d];
            }
            Inst::Stxv { xs, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Store);
                self.read_vsr_src(&mut op, xs.index());
                op.add_src(ra);
                op.mem = Some(MemRef { addr, size: 16 });
                self.mem
                    .write_u128_words(addr, self.vsr[xs.index() as usize]);
            }
            Inst::Stxvp { xs, ra, disp } => {
                let addr = self.ea(ra, disp);
                op = DynOp::new(pc, OpClass::Store);
                self.read_vsr_src(&mut op, xs.index());
                self.read_vsr_src(&mut op, xs.index() + 1);
                op.add_src(ra);
                op.mem = Some(MemRef { addr, size: 32 });
                self.mem
                    .write_u128_words(addr, self.vsr[xs.index() as usize]);
                self.mem
                    .write_u128_words(addr + 16, self.vsr[xs.index() as usize + 1]);
            }

            // ---- VSX arithmetic ----
            Inst::Xvadddp { xt, xa, xb } => {
                op = self.vsx_dp2(pc, xt, xa, xb, 2, |a, b, _| a + b);
            }
            Inst::Xvmuldp { xt, xa, xb } => {
                op = self.vsx_dp2(pc, xt, xa, xb, 2, |a, b, _| a * b);
            }
            Inst::Xvmaddadp { xt, xa, xb } => {
                op = self.vsx_dp2(pc, xt, xa, xb, 4, |a, b, t| a.mul_add(b, t));
            }
            Inst::Xvmaddasp { xt, xa, xb } => {
                op = DynOp::new(pc, OpClass::VsxFp);
                self.read_vsr_src(&mut op, xa.index());
                self.read_vsr_src(&mut op, xb.index());
                self.read_vsr_src(&mut op, xt.index());
                op.set_dst(xt);
                op.flops = 8;
                let (a, b, t) = (
                    self.vsr[xa.index() as usize],
                    self.vsr[xb.index() as usize],
                    self.vsr[xt.index() as usize],
                );
                let mut out = [0u64; 2];
                for w in 0..2 {
                    let mut word = 0u64;
                    for lane in 0..2 {
                        let fa = f32::from_bits((a[w] >> (32 * lane)) as u32);
                        let fb = f32::from_bits((b[w] >> (32 * lane)) as u32);
                        let ft = f32::from_bits((t[w] >> (32 * lane)) as u32);
                        word |= u64::from(fa.mul_add(fb, ft).to_bits()) << (32 * lane);
                    }
                    out[w] = word;
                }
                self.vsr[xt.index() as usize] = out;
            }
            Inst::Xxlxor { xt, xa, xb } => {
                op = DynOp::new(pc, OpClass::VsxSimple);
                self.read_vsr_src(&mut op, xa.index());
                self.read_vsr_src(&mut op, xb.index());
                op.set_dst(xt);
                let (a, b) = (self.vsr[xa.index() as usize], self.vsr[xb.index() as usize]);
                self.vsr[xt.index() as usize] = [a[0] ^ b[0], a[1] ^ b[1]];
            }
            Inst::Xxspltd { xt, xa, uim } => {
                op = DynOp::new(pc, OpClass::VsxSimple);
                self.read_vsr_src(&mut op, xa.index());
                op.set_dst(xt);
                let d = self.vsr[xa.index() as usize][(uim & 1) as usize];
                self.vsr[xt.index() as usize] = [d, d];
            }

            // ---- MMA ----
            Inst::Xxsetaccz { at } => {
                op = DynOp::new(pc, OpClass::MmaMove);
                op.set_dst(at);
                self.acc[at.index() as usize] = Acc::zero();
                self.acc_backing_live[at.index() as usize] = false;
            }
            Inst::Xvf64gerpp { at, xa, xb } => {
                op = self.f64_ger(pc, at, xa, xb, 1.0)?;
            }
            Inst::Xvf64gernp { at, xa, xb } => {
                op = self.f64_ger(pc, at, xa, xb, -1.0)?;
            }
            Inst::Xvf32gerpp { at, xa, xb } => {
                op = DynOp::new(pc, OpClass::Mma(MmaKind::F32));
                op.add_src(xa);
                op.add_src(xb);
                op.add_src(at);
                op.set_dst(at);
                op.flops = MmaKind::F32.ops_per_inst() as u16;
                let fa = vsr_as_f32(self.vsr[xa.index() as usize]);
                let fb = vsr_as_f32(self.vsr[xb.index() as usize]);
                let mut g = self.acc[at.index() as usize].as_f32_grid();
                for i in 0..4 {
                    for j in 0..4 {
                        g[i][j] = fa[i].mul_add(fb[j], g[i][j]);
                    }
                }
                self.acc[at.index() as usize].set_f32_grid(g);
            }
            Inst::Xvbf16ger2pp { at, xa, xb } => {
                op = DynOp::new(pc, OpClass::Mma(MmaKind::Bf16));
                op.add_src(xa);
                op.add_src(xb);
                op.add_src(at);
                op.set_dst(at);
                op.flops = MmaKind::Bf16.ops_per_inst() as u16;
                let ha = vsr_as_bf16(self.vsr[xa.index() as usize]);
                let hb = vsr_as_bf16(self.vsr[xb.index() as usize]);
                let mut g = self.acc[at.index() as usize].as_f32_grid();
                for i in 0..4 {
                    for j in 0..4 {
                        // Products and the accumulate are single precision
                        // (the bf16 inputs widen losslessly to f32).
                        g[i][j] = ha[2 * i].mul_add(hb[2 * j], g[i][j]);
                        g[i][j] = ha[2 * i + 1].mul_add(hb[2 * j + 1], g[i][j]);
                    }
                }
                self.acc[at.index() as usize].set_f32_grid(g);
            }
            Inst::Xvi8ger4pp { at, xa, xb } => {
                op = DynOp::new(pc, OpClass::Mma(MmaKind::I8));
                op.add_src(xa);
                op.add_src(xb);
                op.add_src(at);
                op.set_dst(at);
                op.flops = MmaKind::I8.ops_per_inst() as u16;
                let ba = vsr_as_i8(self.vsr[xa.index() as usize]);
                let bb = vsr_as_i8(self.vsr[xb.index() as usize]);
                let mut g = self.acc[at.index() as usize].as_i32_grid();
                for i in 0..4 {
                    for j in 0..4 {
                        let mut dot = 0i32;
                        for k in 0..4 {
                            dot = dot
                                .wrapping_add(i32::from(ba[4 * i + k]) * i32::from(bb[4 * j + k]));
                        }
                        g[i][j] = g[i][j].wrapping_add(dot);
                    }
                }
                self.acc[at.index() as usize].set_i32_grid(g);
            }
            Inst::Xxmfacc { at } => {
                op = DynOp::new(pc, OpClass::MmaMove);
                op.add_src(at);
                op.set_dst(at);
                let a = self.acc[at.index() as usize];
                for (r, row) in a.rows.iter().enumerate() {
                    self.vsr[4 * at.index() as usize + r] = *row;
                }
                self.acc_backing_live[at.index() as usize] = true;
            }
            Inst::Xxmtacc { at } => {
                op = DynOp::new(pc, OpClass::MmaMove);
                for r in 0..4 {
                    op.add_src(Reg::vsr(4 * at.index() + r));
                }
                op.set_dst(at);
                let mut a = Acc::zero();
                for (r, row) in a.rows.iter_mut().enumerate() {
                    *row = self.vsr[4 * at.index() as usize + r];
                }
                self.acc[at.index() as usize] = a;
                self.acc_backing_live[at.index() as usize] = false;
            }

            // ---- branches ----
            Inst::B { target } => {
                let t = program.resolve(target);
                op = DynOp::new(pc, OpClass::Branch);
                op.branch = Some(BranchInfo {
                    kind: BranchKind::Direct,
                    taken: true,
                    target: program.addr_of(t),
                });
                next = NextPc::Index(t);
            }
            Inst::Bc { cond, bf, target } => {
                let taken = cond.eval(self.cr[bf.index() as usize]);
                let t = program.resolve(target);
                op = DynOp::new(pc, OpClass::Branch);
                op.add_src(bf);
                op.branch = Some(BranchInfo {
                    kind: BranchKind::Conditional,
                    taken,
                    target: if taken { program.addr_of(t) } else { seq_addr },
                });
                if taken {
                    next = NextPc::Index(t);
                }
            }
            Inst::Bdnz { target } => {
                self.ctr = self.ctr.wrapping_sub(1);
                let taken = self.ctr != 0;
                let t = program.resolve(target);
                op = DynOp::new(pc, OpClass::Branch);
                op.add_src(Reg::ctr());
                op.set_dst(Reg::ctr());
                op.branch = Some(BranchInfo {
                    kind: BranchKind::Counter,
                    taken,
                    target: if taken { program.addr_of(t) } else { seq_addr },
                });
                if taken {
                    next = NextPc::Index(t);
                }
            }
            Inst::Bctr => {
                let target = self.ctr;
                op = DynOp::new(pc, OpClass::Branch);
                op.add_src(Reg::ctr());
                op.branch = Some(BranchInfo {
                    kind: BranchKind::Indirect,
                    taken: true,
                    target,
                });
                next = resolve_indirect(program, pc, target)?;
            }
            Inst::Bl { target } => {
                let t = program.resolve(target);
                self.lr = seq_addr;
                op = DynOp::new(pc, OpClass::Branch);
                op.set_dst(Reg::lr());
                op.branch = Some(BranchInfo {
                    kind: BranchKind::Call,
                    taken: true,
                    target: program.addr_of(t),
                });
                next = NextPc::Index(t);
            }
            Inst::Blr => {
                let target = self.lr;
                op = DynOp::new(pc, OpClass::Branch);
                op.add_src(Reg::lr());
                op.branch = Some(BranchInfo {
                    kind: BranchKind::Return,
                    taken: true,
                    target,
                });
                next = resolve_indirect(program, pc, target)?;
            }

            // ---- special register moves ----
            Inst::Mtctr { ra } => {
                op = DynOp::new(pc, OpClass::MoveSpr);
                op.add_src(ra);
                op.set_dst(Reg::ctr());
                self.ctr = self.gpr[ra.index() as usize];
            }
            Inst::Mtlr { ra } => {
                op = DynOp::new(pc, OpClass::MoveSpr);
                op.add_src(ra);
                op.set_dst(Reg::lr());
                self.lr = self.gpr[ra.index() as usize];
            }
            Inst::Mflr { rt } => {
                op = DynOp::new(pc, OpClass::MoveSpr);
                op.add_src(Reg::lr());
                op.set_dst(rt);
                self.gpr[rt.index() as usize] = self.lr;
            }

            Inst::Nop => {
                op = DynOp::new(pc, OpClass::Nop);
            }
            Inst::MmaWakeHint => {
                op = DynOp::new(pc, OpClass::Hint);
            }
        }

        op.prefixed = inst.is_prefixed();
        Ok((op, next))
    }

    /// Shared implementation of the double-precision `ger` forms:
    /// `acc[i][j] += sign * a[i] * b[j]`.
    fn f64_ger(
        &mut self,
        pc: u64,
        at: Reg,
        xa: Reg,
        xb: Reg,
        sign: f64,
    ) -> Result<DynOp, ExecError> {
        if !xa.index().is_multiple_of(2) {
            return Err(ExecError::OddF64GerPair { pc });
        }
        let mut op = DynOp::new(pc, OpClass::Mma(MmaKind::F64));
        op.add_src(Reg::vsr(xa.index()));
        op.add_src(Reg::vsr(xa.index() + 1));
        op.add_src(xb);
        op.add_src(at);
        op.set_dst(at);
        op.flops = MmaKind::F64.ops_per_inst() as u16;
        let lo = self.vsr[xa.index() as usize];
        let hi = self.vsr[xa.index() as usize + 1];
        let a = [
            f64::from_bits(lo[0]),
            f64::from_bits(lo[1]),
            f64::from_bits(hi[0]),
            f64::from_bits(hi[1]),
        ];
        let bw = self.vsr[xb.index() as usize];
        let b = [f64::from_bits(bw[0]), f64::from_bits(bw[1])];
        let mut g = self.acc[at.index() as usize].as_f64_grid();
        for i in 0..4 {
            for j in 0..2 {
                g[i][j] = (sign * a[i]).mul_add(b[j], g[i][j]);
            }
        }
        self.acc[at.index() as usize].set_f64_grid(g);
        Ok(op)
    }

    /// Shared implementation of 2-lane double-precision VSX arithmetic.
    fn vsx_dp2(
        &mut self,
        pc: u64,
        xt: Reg,
        xa: Reg,
        xb: Reg,
        flops: u16,
        f: impl Fn(f64, f64, f64) -> f64,
    ) -> DynOp {
        let mut op = DynOp::new(pc, OpClass::VsxFp);
        self.read_vsr_src(&mut op, xa.index());
        self.read_vsr_src(&mut op, xb.index());
        if flops == 4 {
            // FMA reads the target as the addend.
            self.read_vsr_src(&mut op, xt.index());
        }
        op.set_dst(xt);
        op.flops = flops;
        let (a, b, t) = (
            self.vsr[xa.index() as usize],
            self.vsr[xb.index() as usize],
            self.vsr[xt.index() as usize],
        );
        let mut out = [0u64; 2];
        for lane in 0..2 {
            let r = f(
                f64::from_bits(a[lane]),
                f64::from_bits(b[lane]),
                f64::from_bits(t[lane]),
            );
            out[lane] = r.to_bits();
        }
        self.vsr[xt.index() as usize] = out;
        op
    }
}

fn vsr_as_f32(w: [u64; 2]) -> [f32; 4] {
    [
        f32::from_bits(w[0] as u32),
        f32::from_bits((w[0] >> 32) as u32),
        f32::from_bits(w[1] as u32),
        f32::from_bits((w[1] >> 32) as u32),
    ]
}

/// Widens a bf16 value (high 16 bits of an f32) to f32. Exact: bf16 is a
/// truncated f32.
#[must_use]
pub fn bf16_to_f32(bits: u16) -> f32 {
    f32::from_bits(u32::from(bits) << 16)
}

/// Narrows an f32 to bf16 with round-to-nearest-even on the discarded
/// 16 bits (the conversion AI frameworks use when writing bf16 tensors).
#[must_use]
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Preserve NaN; force a quiet payload bit so truncation cannot
        // produce an infinity.
        return ((bits >> 16) | 0x0040) as u16;
    }
    let round_bit = 0x8000u32;
    let lsb = (bits >> 16) & 1;
    ((bits + (round_bit - 1) + lsb) >> 16) as u16
}

fn vsr_as_bf16(w: [u64; 2]) -> [f32; 8] {
    let mut out = [0f32; 8];
    for (i, o) in out.iter_mut().enumerate() {
        let word = w[i / 4];
        *o = bf16_to_f32((word >> (16 * (i % 4))) as u16);
    }
    out
}

fn vsr_as_i8(w: [u64; 2]) -> [i8; 16] {
    let mut out = [0i8; 16];
    for (i, o) in out.iter_mut().enumerate() {
        let word = w[i / 8];
        *o = (word >> (8 * (i % 8))) as u8 as i8;
    }
    out
}

fn resolve_indirect(program: &Program, pc: u64, target: u64) -> Result<NextPc, ExecError> {
    if target == HALT_ADDR {
        return Ok(NextPc::Halt);
    }
    match program.index_of(target) {
        Some(i) => Ok(NextPc::Index(i)),
        None => Err(ExecError::InvalidBranchTarget { pc, target }),
    }
}

#[derive(Debug, Clone, Copy)]
enum NextPc {
    Seq,
    Index(usize),
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn run(b: ProgramBuilder) -> (Machine, Trace) {
        let p = b.build();
        let mut m = Machine::new();
        let t = m.run(&p, 100_000).expect("program must execute");
        (m, t)
    }

    #[test]
    fn arithmetic_basics() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 7);
        b.li(Reg::gpr(2), 5);
        b.add(Reg::gpr(3), Reg::gpr(1), Reg::gpr(2));
        b.sub(Reg::gpr(4), Reg::gpr(1), Reg::gpr(2));
        b.mulld(Reg::gpr(5), Reg::gpr(1), Reg::gpr(2));
        b.push(Inst::Divd {
            rt: Reg::gpr(6),
            ra: Reg::gpr(1),
            rb: Reg::gpr(2),
        });
        let (m, t) = run(b);
        assert_eq!(m.gpr(3), 12);
        assert_eq!(m.gpr(4), 2);
        assert_eq!(m.gpr(5), 35);
        assert_eq!(m.gpr(6), 1);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn divide_by_zero_defined_as_zero() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 7);
        b.li(Reg::gpr(2), 0);
        b.push(Inst::Divd {
            rt: Reg::gpr(3),
            ra: Reg::gpr(1),
            rb: Reg::gpr(2),
        });
        let (m, _) = run(b);
        assert_eq!(m.gpr(3), 0);
    }

    #[test]
    fn ctr_loop_and_branch_outcomes() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(3), 0);
        b.li(Reg::gpr(4), 4);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.addi(Reg::gpr(3), Reg::gpr(3), 1);
        b.bdnz(top);
        let (m, t) = run(b);
        assert_eq!(m.gpr(3), 4);
        let branches: Vec<_> = t.ops.iter().filter_map(|o| o.branch).collect();
        assert_eq!(branches.len(), 4);
        assert!(branches[..3].iter().all(|b| b.taken));
        assert!(!branches[3].taken);
    }

    #[test]
    fn memory_roundtrip_through_loads_stores() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x8000);
        b.li(Reg::gpr(2), 0x1234_5678);
        b.std(Reg::gpr(2), Reg::gpr(1), 16);
        b.ld(Reg::gpr(3), Reg::gpr(1), 16);
        let (m, t) = run(b);
        assert_eq!(m.gpr(3), 0x1234_5678);
        let loads: Vec<_> = t.ops.iter().filter(|o| o.is_load()).collect();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].mem.unwrap().addr, 0x8010);
    }

    #[test]
    fn stdu_updates_base() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x9000);
        b.li(Reg::gpr(2), 42);
        b.push(Inst::Stdu {
            rs: Reg::gpr(2),
            ra: Reg::gpr(1),
            disp: -32,
        });
        let (m, _) = run(b);
        assert_eq!(m.gpr(1), 0x9000 - 32);
        assert_eq!(m.mem.read_u64(0x9000 - 32), 42);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        let func = b.label();
        b.push(Inst::Mflr { rt: Reg::gpr(10) }); // save HALT_ADDR
        b.bl(func);
        b.li(Reg::gpr(4), 9); // executed after return
        b.push(Inst::Mtlr { ra: Reg::gpr(10) });
        b.blr(); // top-level return halts (lr == HALT_ADDR)
        b.bind(func);
        b.li(Reg::gpr(3), 8);
        b.blr();
        let (m, t) = run(b);
        assert_eq!(m.gpr(3), 8);
        assert_eq!(m.gpr(4), 9);
        let kinds: Vec<_> = t
            .ops
            .iter()
            .filter_map(|o| o.branch.map(|b| b.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![BranchKind::Call, BranchKind::Return, BranchKind::Return]
        );
    }

    #[test]
    fn bctr_to_invalid_target_is_error() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x3); // misaligned / out of program
        b.mtctr(Reg::gpr(1));
        b.push(Inst::Bctr);
        let p = b.build();
        let mut m = Machine::new();
        assert!(matches!(
            m.run(&p, 100),
            Err(ExecError::InvalidBranchTarget { .. })
        ));
    }

    #[test]
    fn vsx_fma_computes_2_lanes() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x8000);
        b.lxv(Reg::vsr(34), Reg::gpr(1), 0);
        b.lxv(Reg::vsr(35), Reg::gpr(1), 16);
        b.push(Inst::Xxlxor {
            xt: Reg::vsr(36),
            xa: Reg::vsr(36),
            xb: Reg::vsr(36),
        });
        b.push(Inst::Xvmaddadp {
            xt: Reg::vsr(36),
            xa: Reg::vsr(34),
            xb: Reg::vsr(35),
        });
        let p = b.build();
        let mut m = Machine::new();
        m.mem.write_f64(0x8000, 2.0);
        m.mem.write_f64(0x8008, 3.0);
        m.mem.write_f64(0x8010, 10.0);
        m.mem.write_f64(0x8018, 100.0);
        let t = m.run(&p, 100).unwrap();
        let r = m.vsr(36);
        assert_eq!(f64::from_bits(r[0]), 20.0);
        assert_eq!(f64::from_bits(r[1]), 300.0);
        assert_eq!(t.total_flops(), 4);
    }

    #[test]
    fn mma_f32_outer_product_matches_reference() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x8000);
        b.lxv(Reg::vsr(34), Reg::gpr(1), 0);
        b.lxv(Reg::vsr(35), Reg::gpr(1), 16);
        b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
        b.push(Inst::Xvf32gerpp {
            at: Reg::acc(0),
            xa: Reg::vsr(34),
            xb: Reg::vsr(35),
        });
        b.push(Inst::Xvf32gerpp {
            at: Reg::acc(0),
            xa: Reg::vsr(34),
            xb: Reg::vsr(35),
        });
        let p = b.build();
        let mut m = Machine::new();
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let bv = [10.0f32, 20.0, 30.0, 40.0];
        for i in 0..4 {
            m.mem.write_f32(0x8000 + 4 * i as u64, a[i]);
            m.mem.write_f32(0x8010 + 4 * i as u64, bv[i]);
        }
        m.run(&p, 100).unwrap();
        let g = m.acc(0).as_f32_grid();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g[i][j], 2.0 * a[i] * bv[j], "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn mma_bf16_rank2_matches_reference() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x8000);
        b.lxv(Reg::vsr(34), Reg::gpr(1), 0);
        b.lxv(Reg::vsr(35), Reg::gpr(1), 16);
        b.push(Inst::Xxsetaccz { at: Reg::acc(2) });
        b.push(Inst::Xvbf16ger2pp {
            at: Reg::acc(2),
            xa: Reg::vsr(34),
            xb: Reg::vsr(35),
        });
        let p = b.build();
        let mut m = Machine::new();
        // Powers of two and small sums of them are exact in bf16.
        let a = [1.0f32, -2.0, 0.5, 4.0, 3.0, -0.25, 8.0, 1.5];
        let bv = [2.0f32, 0.5, -1.0, 4.0, 0.75, 16.0, -0.5, 2.5];
        for i in 0..8 {
            let ha = f32_to_bf16(a[i]);
            let hb = f32_to_bf16(bv[i]);
            m.mem.write_bytes(0x8000 + 2 * i as u64, &ha.to_le_bytes());
            m.mem.write_bytes(0x8010 + 2 * i as u64, &hb.to_le_bytes());
        }
        let t = m.run(&p, 100).unwrap();
        let g = m.acc(2).as_f32_grid();
        for i in 0..4 {
            for j in 0..4 {
                // 2-deep dot: a-row i = {a[2i], a[2i+1]}, b-row j likewise.
                let want = a[2 * i] * bv[2 * j] + a[2 * i + 1] * bv[2 * j + 1];
                assert_eq!(g[i][j], want, "mismatch at ({i},{j})");
            }
        }
        // One xvbf16ger2pp = 32 MACs = 64 flops.
        assert_eq!(t.total_flops(), 64);
    }

    #[test]
    fn bf16_conversion_round_trips_and_rounds_to_even() {
        // Values representable in bf16 round-trip exactly.
        for v in [
            0.0f32,
            1.0,
            -2.5,
            0.15625,
            2.0f32.powi(100),
            -(2.0f32.powi(-100)),
        ] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)), v, "round-trip {v}");
        }
        // 1.0 + 2^-8 is exactly halfway between two bf16 values; RNE picks
        // the even mantissa (1.0).
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_to_f32(f32_to_bf16(halfway)), 1.0);
        // Just above halfway rounds up to the next bf16 step (1 + 2^-7).
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(bf16_to_f32(f32_to_bf16(above)), 1.0 + 1.0 / 128.0);
        // NaN stays NaN, never becomes an infinity.
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        // Infinities pass through.
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
    }

    #[test]
    fn mma_f64_pair_must_be_even() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Xvf64gerpp {
            at: Reg::acc(0),
            xa: Reg::vsr(33),
            xb: Reg::vsr(40),
        });
        let p = b.build();
        let mut m = Machine::new();
        assert!(matches!(
            m.run(&p, 10),
            Err(ExecError::OddF64GerPair { .. })
        ));
    }

    #[test]
    fn mma_f64_outer_product() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x8000);
        b.lxv(Reg::vsr(34), Reg::gpr(1), 0);
        b.lxv(Reg::vsr(35), Reg::gpr(1), 16);
        b.lxv(Reg::vsr(36), Reg::gpr(1), 32);
        b.push(Inst::Xxsetaccz { at: Reg::acc(1) });
        b.push(Inst::Xvf64gerpp {
            at: Reg::acc(1),
            xa: Reg::vsr(34),
            xb: Reg::vsr(36),
        });
        let p = b.build();
        let mut m = Machine::new();
        let a = [1.5f64, -2.0, 3.0, 0.5];
        let bv = [4.0f64, -8.0];
        for (i, v) in a.iter().enumerate() {
            m.mem.write_f64(0x8000 + 8 * i as u64, *v);
        }
        m.mem.write_f64(0x8020, bv[0]);
        m.mem.write_f64(0x8028, bv[1]);
        m.run(&p, 100).unwrap();
        let g = m.acc(1).as_f64_grid();
        for i in 0..4 {
            for j in 0..2 {
                assert_eq!(g[i][j], a[i] * bv[j]);
            }
        }
    }

    #[test]
    fn mma_i8_rank4_dot() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x8000);
        b.lxv(Reg::vsr(34), Reg::gpr(1), 0);
        b.lxv(Reg::vsr(35), Reg::gpr(1), 16);
        b.push(Inst::Xxsetaccz { at: Reg::acc(2) });
        b.push(Inst::Xvi8ger4pp {
            at: Reg::acc(2),
            xa: Reg::vsr(34),
            xb: Reg::vsr(35),
        });
        let p = b.build();
        let mut m = Machine::new();
        let av: [i8; 16] = [1, 2, 3, 4, -1, -2, -3, -4, 5, 5, 5, 5, 0, 0, 0, 1];
        let bv: [i8; 16] = [2, 2, 2, 2, 1, 0, 1, 0, -3, 3, -3, 3, 7, 7, 7, 7];
        for i in 0..16 {
            m.mem.write_u8(0x8000 + i as u64, av[i] as u8);
            m.mem.write_u8(0x8010 + i as u64, bv[i] as u8);
        }
        m.run(&p, 100).unwrap();
        let g = m.acc(2).as_i32_grid();
        for i in 0..4 {
            for j in 0..4 {
                let mut expect = 0i32;
                for k in 0..4 {
                    expect += i32::from(av[4 * i + k]) * i32::from(bv[4 * j + k]);
                }
                assert_eq!(g[i][j], expect, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn xxmfacc_moves_to_backing_vsrs_and_adds_dependence() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
        b.push(Inst::Xxmfacc { at: Reg::acc(0) });
        b.li(Reg::gpr(1), 0x8000);
        b.stxv(Reg::vsr(2), Reg::gpr(1), 0); // vs2 backs acc0
        let p = b.build();
        let mut m = Machine::new();
        m.set_vsr(2, [0xdead, 0xbeef]); // stale value, must be overwritten
        let t = m.run(&p, 100).unwrap();
        assert_eq!(m.vsr(2), [0, 0]);
        // The store must carry an acc0 dependence.
        let store = t.ops.iter().find(|o| o.is_store()).unwrap();
        assert!(store.sources().any(|r| r == Reg::acc(0)));
    }

    #[test]
    fn xxmtacc_primes_from_backing_vsrs() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Xxmtacc { at: Reg::acc(1) });
        let p = b.build();
        let mut m = Machine::new();
        for r in 0..4u16 {
            m.set_vsr(4 + r, [u64::from(r) + 1, 0]);
        }
        m.run(&p, 10).unwrap();
        assert_eq!(m.acc(1).rows[0], [1, 0]);
        assert_eq!(m.acc(1).rows[3], [4, 0]);
    }

    #[test]
    fn lxvp_loads_32_bytes_into_pair() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x8000);
        b.push(Inst::Lxvp {
            xt: Reg::vsr(40),
            ra: Reg::gpr(1),
            disp: 0,
        });
        let p = b.build();
        let mut m = Machine::new();
        m.mem.write_u64(0x8000, 1);
        m.mem.write_u64(0x8008, 2);
        m.mem.write_u64(0x8010, 3);
        m.mem.write_u64(0x8018, 4);
        let t = m.run(&p, 10).unwrap();
        assert_eq!(m.vsr(40), [1, 2]);
        assert_eq!(m.vsr(41), [3, 4]);
        let ld = t.ops.iter().find(|o| o.is_load()).unwrap();
        assert_eq!(ld.mem.unwrap().size, 32);
        assert_eq!(ld.dest2(), Some(Reg::vsr(41)));
    }

    #[test]
    fn max_ops_stops_endless_loop() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_label();
        b.addi(Reg::gpr(1), Reg::gpr(1), 1);
        b.b(top);
        let p = b.build();
        let mut m = Machine::new();
        let t = m.run(&p, 1000).unwrap();
        assert_eq!(t.len(), 1000);
        assert_eq!(m.executed(), 1000);
    }
}
