//! # p10-isa
//!
//! A POWER-like instruction set architecture used throughout the `p10sim`
//! reproduction of the ISCA 2021 paper *Energy Efficiency Boost in the
//! AI-Infused POWER10 Processor*.
//!
//! The crate provides four layers:
//!
//! 1. **Static instructions** ([`Inst`]) — a compact, typed subset of the
//!    Power ISA v3.1 that covers what the paper's workloads exercise: scalar
//!    integer arithmetic, branches (conditional, counter-based, indirect),
//!    loads/stores (1–32 bytes, including the new paired 32-byte vector
//!    forms), 128-bit VSX SIMD arithmetic, and the Matrix-Multiply Assist
//!    (MMA) outer-product facility with its eight 512-bit accumulators.
//! 2. **Programs** ([`Program`], [`ProgramBuilder`]) — label-resolved
//!    instruction sequences, the unit that workload generators produce and
//!    the functional machine executes.
//! 3. **Functional execution** ([`Machine`]) — an architectural simulator
//!    with full register and (sparse) memory state. Running a program yields
//!    a *dynamic-operation trace*.
//! 4. **Dynamic operations** ([`DynOp`]) — the resolved per-instruction
//!    records (operand registers, memory addresses, branch outcomes, flop
//!    counts) that the cycle-level model in `p10-uarch` consumes. This is the
//!    classic trace-driven split: functional correctness here, timing there.
//!
//! Instruction **fusion** legality (the paper reports >200 fusible pair
//! types detected at pre-decode) is defined at the ISA level in [`fusion`]
//! so that the decode model and the tests share one source of truth.
//!
//! ## Example
//!
//! ```
//! use p10_isa::{ProgramBuilder, Machine, Reg};
//!
//! // sum the integers 1..=10 in r3, using a count-down loop on CTR
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::gpr(3), 0);
//! b.li(Reg::gpr(4), 10);
//! b.mtctr(Reg::gpr(4));
//! let top = b.bind_label();
//! b.add(Reg::gpr(3), Reg::gpr(3), Reg::gpr(4));
//! b.addi(Reg::gpr(4), Reg::gpr(4), -1);
//! b.bdnz(top);
//! let prog = b.build();
//!
//! let mut m = Machine::new();
//! let trace = m.run(&prog, 1_000).unwrap();
//! assert_eq!(m.gpr(3), 55);
//! assert!(trace.ops.len() > 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod dynop;
mod exec;
mod fnv;
pub mod fusion;
mod inst;
mod mem;
mod program;
mod reg;
mod view;

pub use dynop::{BranchInfo, BranchKind, DynOp, MemRef, MmaKind, OpClass, Trace, MAX_SRCS};
pub use exec::{bf16_to_f32, f32_to_bf16, ExecError, Machine, HALT_ADDR};
pub use fnv::Fnv1aHasher;
pub use inst::{Cond, Inst};
pub use mem::SparseMemory;
pub use program::{Label, Program, ProgramBuilder, ProgramError, CODE_BASE};
pub use reg::{Acc, Reg, RegClass, ARCH_REG_COUNT};
pub use view::TraceView;
