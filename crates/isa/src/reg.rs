//! Architectural register identifiers.
//!
//! Registers are identified by a class plus an index and packed into a
//! single `u16` so that dynamic-op records stay small. The packing is an
//! implementation detail; use the typed constructors and accessors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Architectural register classes of the modeled ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// 64-bit general purpose registers `r0`–`r31`.
    Gpr,
    /// 128-bit vector-scalar registers `vs0`–`vs63`.
    Vsr,
    /// 512-bit MMA accumulators `acc0`–`acc7`.
    Acc,
    /// 4-bit condition register fields `cr0`–`cr7`.
    Cr,
    /// The count register (loop counter, indirect-branch source).
    Ctr,
    /// The link register (call/return).
    Lr,
}

impl RegClass {
    /// Number of architected registers in this class.
    #[must_use]
    pub const fn count(self) -> u16 {
        match self {
            RegClass::Gpr => 32,
            RegClass::Vsr => 64,
            RegClass::Acc => 8,
            RegClass::Cr => 8,
            RegClass::Ctr | RegClass::Lr => 1,
        }
    }

    const fn base(self) -> u16 {
        // Packed layout: 1-based so that 0 can mean "no register".
        match self {
            RegClass::Gpr => 1,
            RegClass::Vsr => 1 + 32,
            RegClass::Acc => 1 + 32 + 64,
            RegClass::Cr => 1 + 32 + 64 + 8,
            RegClass::Ctr => 1 + 32 + 64 + 8 + 8,
            RegClass::Lr => 1 + 32 + 64 + 8 + 8 + 1,
        }
    }
}

/// Total number of architected registers across all classes (for dense
/// renaming tables). Packed ids are in `1..=ARCH_REG_COUNT`.
pub const ARCH_REG_COUNT: u16 = 32 + 64 + 8 + 8 + 1 + 1;

/// A typed architectural register identifier.
///
/// `Reg` packs the class and index into a `u16`; value `0` is reserved for
/// "no register" in dynamic-op operand slots (see [`Reg::NONE_PACKED`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u16);

impl Reg {
    /// Packed representation of "no register".
    pub const NONE_PACKED: u16 = 0;

    /// Creates a register of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the class.
    #[must_use]
    pub fn new(class: RegClass, index: u16) -> Self {
        assert!(
            index < class.count(),
            "register index {index} out of range for {class:?}"
        );
        Reg(class.base() + index)
    }

    /// General purpose register `r{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn gpr(n: u16) -> Self {
        Reg::new(RegClass::Gpr, n)
    }

    /// Vector-scalar register `vs{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 64`.
    #[must_use]
    pub fn vsr(n: u16) -> Self {
        Reg::new(RegClass::Vsr, n)
    }

    /// MMA accumulator `acc{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    #[must_use]
    pub fn acc(n: u16) -> Self {
        Reg::new(RegClass::Acc, n)
    }

    /// Condition register field `cr{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    #[must_use]
    pub fn cr(n: u16) -> Self {
        Reg::new(RegClass::Cr, n)
    }

    /// The count register.
    #[must_use]
    pub fn ctr() -> Self {
        Reg::new(RegClass::Ctr, 0)
    }

    /// The link register.
    #[must_use]
    pub fn lr() -> Self {
        Reg::new(RegClass::Lr, 0)
    }

    /// The register class.
    #[must_use]
    pub fn class(self) -> RegClass {
        let v = self.0;
        debug_assert!(v != 0 && v <= ARCH_REG_COUNT);
        if v < RegClass::Vsr.base() {
            RegClass::Gpr
        } else if v < RegClass::Acc.base() {
            RegClass::Vsr
        } else if v < RegClass::Cr.base() {
            RegClass::Acc
        } else if v < RegClass::Ctr.base() {
            RegClass::Cr
        } else if v < RegClass::Lr.base() {
            RegClass::Ctr
        } else {
            RegClass::Lr
        }
    }

    /// The index within the register class.
    #[must_use]
    pub fn index(self) -> u16 {
        self.0 - self.class().base()
    }

    /// The dense packed id in `1..=ARCH_REG_COUNT`, usable as a rename-table
    /// index.
    #[must_use]
    pub fn packed(self) -> u16 {
        self.0
    }

    /// Reconstructs a register from a packed id.
    ///
    /// Returns `None` for `0` (the "no register" sentinel) or out-of-range
    /// values.
    #[must_use]
    pub fn from_packed(packed: u16) -> Option<Self> {
        if packed == 0 || packed > ARCH_REG_COUNT {
            None
        } else {
            Some(Reg(packed))
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Gpr => write!(f, "r{}", self.index()),
            RegClass::Vsr => write!(f, "vs{}", self.index()),
            RegClass::Acc => write!(f, "acc{}", self.index()),
            RegClass::Cr => write!(f, "cr{}", self.index()),
            RegClass::Ctr => write!(f, "ctr"),
            RegClass::Lr => write!(f, "lr"),
        }
    }
}

/// A 512-bit MMA accumulator value: four 128-bit rows, stored as raw bits.
///
/// Interpretation depends on the instruction: `xvf32gerpp` views it as a
/// 4×4 grid of `f32`, `xvf64gerpp` as a 4×2 grid of `f64`, `xvi8ger4pp` as a
/// 4×4 grid of `i32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Acc {
    /// Four rows of two 64-bit words each (512 bits total).
    pub rows: [[u64; 2]; 4],
}

impl Acc {
    /// An accumulator with all bits zero.
    #[must_use]
    pub fn zero() -> Self {
        Acc::default()
    }

    /// Views the accumulator as a 4×4 grid of `f32`.
    #[must_use]
    pub fn as_f32_grid(&self) -> [[f32; 4]; 4] {
        let mut g = [[0.0f32; 4]; 4];
        for (i, row) in self.rows.iter().enumerate() {
            for j in 0..4 {
                let word = row[j / 2];
                let lane = (j % 2) as u32;
                g[i][j] = f32::from_bits((word >> (32 * lane)) as u32);
            }
        }
        g
    }

    /// Stores a 4×4 grid of `f32` into the accumulator.
    pub fn set_f32_grid(&mut self, g: [[f32; 4]; 4]) {
        for (i, row) in self.rows.iter_mut().enumerate() {
            for w in 0..2 {
                let lo = g[i][2 * w].to_bits() as u64;
                let hi = g[i][2 * w + 1].to_bits() as u64;
                row[w] = lo | (hi << 32);
            }
        }
    }

    /// Views the accumulator as a 4×2 grid of `f64`.
    #[must_use]
    pub fn as_f64_grid(&self) -> [[f64; 2]; 4] {
        let mut g = [[0.0f64; 2]; 4];
        for (i, row) in self.rows.iter().enumerate() {
            for j in 0..2 {
                g[i][j] = f64::from_bits(row[j]);
            }
        }
        g
    }

    /// Stores a 4×2 grid of `f64` into the accumulator.
    pub fn set_f64_grid(&mut self, g: [[f64; 2]; 4]) {
        for (i, row) in self.rows.iter_mut().enumerate() {
            for j in 0..2 {
                row[j] = g[i][j].to_bits();
            }
        }
    }

    /// Views the accumulator as a 4×4 grid of `i32`.
    #[must_use]
    pub fn as_i32_grid(&self) -> [[i32; 4]; 4] {
        let mut g = [[0i32; 4]; 4];
        for (i, row) in self.rows.iter().enumerate() {
            for j in 0..4 {
                let word = row[j / 2];
                let lane = (j % 2) as u32;
                g[i][j] = (word >> (32 * lane)) as u32 as i32;
            }
        }
        g
    }

    /// Stores a 4×4 grid of `i32` into the accumulator.
    pub fn set_i32_grid(&mut self, g: [[i32; 4]; 4]) {
        for (i, row) in self.rows.iter_mut().enumerate() {
            for w in 0..2 {
                let lo = g[i][2 * w] as u32 as u64;
                let hi = g[i][2 * w + 1] as u32 as u64;
                row[w] = lo | (hi << 32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrip_all_classes() {
        let all = [
            Reg::gpr(0),
            Reg::gpr(31),
            Reg::vsr(0),
            Reg::vsr(63),
            Reg::acc(0),
            Reg::acc(7),
            Reg::cr(0),
            Reg::cr(7),
            Reg::ctr(),
            Reg::lr(),
        ];
        for r in all {
            let p = r.packed();
            assert_ne!(p, Reg::NONE_PACKED);
            assert_eq!(Reg::from_packed(p), Some(r));
        }
    }

    #[test]
    fn class_and_index_recovered() {
        assert_eq!(Reg::gpr(5).class(), RegClass::Gpr);
        assert_eq!(Reg::gpr(5).index(), 5);
        assert_eq!(Reg::vsr(40).class(), RegClass::Vsr);
        assert_eq!(Reg::vsr(40).index(), 40);
        assert_eq!(Reg::acc(3).class(), RegClass::Acc);
        assert_eq!(Reg::acc(3).index(), 3);
        assert_eq!(Reg::cr(2).class(), RegClass::Cr);
        assert_eq!(Reg::ctr().class(), RegClass::Ctr);
        assert_eq!(Reg::lr().class(), RegClass::Lr);
    }

    #[test]
    fn packed_ids_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for g in 0..32 {
            assert!(seen.insert(Reg::gpr(g).packed()));
        }
        for v in 0..64 {
            assert!(seen.insert(Reg::vsr(v).packed()));
        }
        for a in 0..8 {
            assert!(seen.insert(Reg::acc(a).packed()));
        }
        for c in 0..8 {
            assert!(seen.insert(Reg::cr(c).packed()));
        }
        assert!(seen.insert(Reg::ctr().packed()));
        assert!(seen.insert(Reg::lr().packed()));
        assert_eq!(seen.len(), ARCH_REG_COUNT as usize);
        assert_eq!(*seen.iter().max().unwrap(), ARCH_REG_COUNT);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_index_out_of_range_panics() {
        let _ = Reg::gpr(32);
    }

    #[test]
    fn from_packed_rejects_sentinel_and_out_of_range() {
        assert_eq!(Reg::from_packed(0), None);
        assert_eq!(Reg::from_packed(ARCH_REG_COUNT + 1), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::gpr(3).to_string(), "r3");
        assert_eq!(Reg::vsr(32).to_string(), "vs32");
        assert_eq!(Reg::acc(1).to_string(), "acc1");
        assert_eq!(Reg::cr(0).to_string(), "cr0");
        assert_eq!(Reg::ctr().to_string(), "ctr");
        assert_eq!(Reg::lr().to_string(), "lr");
    }

    #[test]
    fn acc_f32_grid_roundtrip() {
        let mut acc = Acc::zero();
        let mut g = [[0.0f32; 4]; 4];
        for (i, gi) in g.iter_mut().enumerate() {
            for (j, gij) in gi.iter_mut().enumerate() {
                *gij = (i * 4 + j) as f32 * 1.5 - 3.0;
            }
        }
        acc.set_f32_grid(g);
        assert_eq!(acc.as_f32_grid(), g);
    }

    #[test]
    fn acc_f64_grid_roundtrip() {
        let mut acc = Acc::zero();
        let g = [[1.0, -2.0], [3.5, 0.25], [-0.5, 9.0], [7.0, 8.0]];
        acc.set_f64_grid(g);
        assert_eq!(acc.as_f64_grid(), g);
    }

    #[test]
    fn acc_i32_grid_roundtrip() {
        let mut acc = Acc::zero();
        let mut g = [[0i32; 4]; 4];
        for (i, gi) in g.iter_mut().enumerate() {
            for (j, gij) in gi.iter_mut().enumerate() {
                *gij = (i as i32 * 4 + j as i32) * -1000 + 7;
            }
        }
        acc.set_i32_grid(g);
        assert_eq!(acc.as_i32_grid(), g);
    }

    #[test]
    fn acc_zero_is_all_zero_bits() {
        assert_eq!(Acc::zero().rows, [[0u64; 2]; 4]);
    }
}
