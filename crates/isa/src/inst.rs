//! Static instruction definitions.
//!
//! [`Inst`] is a typed subset of the Power ISA v3.1 sufficient for the
//! workloads the paper evaluates: SPECint-like scalar code, BLAS kernels in
//! both VSX and MMA form, and the microbenchmarks used for power and
//! reliability characterization.

use crate::program::Label;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Branch condition: which bit of a CR field to test and the required value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Branch if the "less than" bit of the CR field is set.
    Lt,
    /// Branch if the "greater than" bit is set.
    Gt,
    /// Branch if the "equal" bit is set.
    Eq,
    /// Branch if the "less than" bit is clear (`>=`).
    Ge,
    /// Branch if the "greater than" bit is clear (`<=`).
    Le,
    /// Branch if the "equal" bit is clear.
    Ne,
}

impl Cond {
    /// Evaluates the condition against a 4-bit CR field value
    /// (bit 3 = LT, bit 2 = GT, bit 1 = EQ, per Power conventions but packed
    /// LSB-first here).
    #[must_use]
    pub fn eval(self, cr_field: u8) -> bool {
        let lt = cr_field & 0b100 != 0;
        let gt = cr_field & 0b010 != 0;
        let eq = cr_field & 0b001 != 0;
        match self {
            Cond::Lt => lt,
            Cond::Gt => gt,
            Cond::Eq => eq,
            Cond::Ge => !lt,
            Cond::Le => !gt,
            Cond::Ne => !eq,
        }
    }
}

/// A static instruction.
///
/// Field naming follows Power assembly conventions: `rt`/`xt`/`at` are
/// targets, `ra`/`rb`/`xa`/`xb` are sources, `disp` is a byte displacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields follow standard Power mnemonics
pub enum Inst {
    // ---- scalar integer ----
    /// `rt <- ra + simm` (with `ra = r0` meaning literal 0, i.e. `li`).
    Addi {
        rt: Reg,
        ra: Reg,
        imm: i64,
    },
    /// Load immediate (pseudo-op; no source register dependency).
    Li {
        rt: Reg,
        imm: i64,
    },
    Add {
        rt: Reg,
        ra: Reg,
        rb: Reg,
    },
    Sub {
        rt: Reg,
        ra: Reg,
        rb: Reg,
    },
    Neg {
        rt: Reg,
        ra: Reg,
    },
    And {
        rt: Reg,
        ra: Reg,
        rb: Reg,
    },
    Or {
        rt: Reg,
        ra: Reg,
        rb: Reg,
    },
    Xor {
        rt: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// Shift left by immediate (64-bit).
    Sldi {
        rt: Reg,
        ra: Reg,
        sh: u8,
    },
    /// Logical shift right by immediate (64-bit).
    Srdi {
        rt: Reg,
        ra: Reg,
        sh: u8,
    },
    /// 64-bit multiply low.
    Mulld {
        rt: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// 64-bit signed divide.
    Divd {
        rt: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// Compare signed, result into CR field `bf`.
    Cmp {
        bf: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// Compare signed immediate, result into CR field `bf`.
    Cmpi {
        bf: Reg,
        ra: Reg,
        imm: i64,
    },

    // ---- scalar loads/stores (byte sizes 1/4/8) ----
    /// Load byte and zero.
    Lbz {
        rt: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Load word and zero (4 bytes).
    Lwz {
        rt: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Load doubleword (8 bytes).
    Ld {
        rt: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Load doubleword indexed: `rt <- mem[ra + rb]`.
    Ldx {
        rt: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// Store byte.
    Stb {
        rs: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Store word (4 bytes).
    Stw {
        rs: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Store doubleword (8 bytes).
    Std {
        rs: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Store doubleword with update: also `ra <- ra + disp`.
    Stdu {
        rs: Reg,
        ra: Reg,
        disp: i64,
    },

    // ---- vector loads/stores ----
    /// Load VSX vector (16 bytes).
    Lxv {
        xt: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Load VSX vector indexed (16 bytes): `xt <- mem[ra + rb]`.
    Lxvx {
        xt: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// Load VSX vector pair (32 bytes) into `xt` and `xt+1`
    /// (POWER10's new 32-byte load).
    Lxvp {
        xt: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Load doubleword and splat to both lanes.
    Lxvdsx {
        xt: Reg,
        ra: Reg,
        rb: Reg,
    },
    /// Store VSX vector (16 bytes).
    Stxv {
        xs: Reg,
        ra: Reg,
        disp: i64,
    },
    /// Store VSX vector pair (32 bytes) from `xs` and `xs+1`
    /// (POWER10's new 32-byte store).
    Stxvp {
        xs: Reg,
        ra: Reg,
        disp: i64,
    },

    // ---- VSX arithmetic (128-bit) ----
    /// Vector double-precision add (2 lanes).
    Xvadddp {
        xt: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Vector double-precision multiply (2 lanes).
    Xvmuldp {
        xt: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Vector double-precision fused multiply-add: `xt <- xa*xb + xt`
    /// (4 flops).
    Xvmaddadp {
        xt: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Vector single-precision fused multiply-add (4 lanes, 8 flops).
    Xvmaddasp {
        xt: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Vector logical XOR (also the idiom for zeroing a VSR).
    Xxlxor {
        xt: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Splat doubleword lane `uim` of `xa` to both lanes of `xt`.
    Xxspltd {
        xt: Reg,
        xa: Reg,
        uim: u8,
    },

    // ---- MMA facility ----
    /// Zero an accumulator and prime it.
    Xxsetaccz {
        at: Reg,
    },
    /// Double-precision rank-1 update (positive-accumulate):
    /// `acc[i][j] += a[i] * b[j]` with `a` a 4-element column from the VSR
    /// pair `{xa, xa+1}` and `b` a 2-element row from `xb` (4×2 grid,
    /// 16 flops).
    Xvf64gerpp {
        at: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Double-precision rank-1 update, negative-multiply:
    /// `acc[i][j] -= a[i] * b[j]` — the form triangular-solve trailing
    /// updates need.
    Xvf64gernp {
        at: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Single-precision rank-1 update: 4×4 grid, 32 flops.
    Xvf32gerpp {
        at: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Bfloat16 rank-2 update: `acc[i][j] += dot2(a_row_i, b_row_j)` with
    /// products and accumulation in single precision; 32 MACs. The
    /// reduced-precision AI format the paper's inference workloads use.
    Xvbf16ger2pp {
        at: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// INT8 rank-4 update: `acc[i][j] += dot4(a_row_i, b_row_j)`; 64 MACs.
    Xvi8ger4pp {
        at: Reg,
        xa: Reg,
        xb: Reg,
    },
    /// Move the accumulator contents to its four backing VSRs (de-prime).
    Xxmfacc {
        at: Reg,
    },
    /// Prime the accumulator from its four backing VSRs.
    Xxmtacc {
        at: Reg,
    },

    // ---- branches ----
    /// Unconditional relative branch.
    B {
        target: Label,
    },
    /// Conditional branch on CR field `bf`.
    Bc {
        cond: Cond,
        bf: Reg,
        target: Label,
    },
    /// Decrement CTR; branch if CTR != 0.
    Bdnz {
        target: Label,
    },
    /// Branch to address in CTR (indirect).
    Bctr,
    /// Branch and link (call): LR <- return address.
    Bl {
        target: Label,
    },
    /// Branch to LR (return).
    Blr,

    // ---- moves to/from special registers ----
    /// `ctr <- ra`.
    Mtctr {
        ra: Reg,
    },
    /// `lr <- ra`.
    Mtlr {
        ra: Reg,
    },
    /// `rt <- lr`.
    Mflr {
        rt: Reg,
    },

    // ---- misc ----
    /// No-operation.
    Nop,
    /// MMA wake-up hint (architected so firmware power gating can
    /// proactively power the MMA back on; see paper §IV-A).
    MmaWakeHint,
}

impl Inst {
    /// Whether this instruction uses the prefixed (8-byte) encoding.
    ///
    /// The model treats large-immediate `addi`/`li` (beyond 16 bits) and
    /// large-displacement memory ops as prefixed, mirroring Power ISA v3.1
    /// prefixed forms. Prefixed instructions consume two fetch slots.
    #[must_use]
    pub fn is_prefixed(&self) -> bool {
        const D16: std::ops::Range<i64> = -32768..32768;
        match *self {
            Inst::Addi { imm, .. } | Inst::Li { imm, .. } | Inst::Cmpi { imm, .. } => {
                !D16.contains(&imm)
            }
            Inst::Lbz { disp, .. }
            | Inst::Lwz { disp, .. }
            | Inst::Ld { disp, .. }
            | Inst::Stb { disp, .. }
            | Inst::Stw { disp, .. }
            | Inst::Std { disp, .. }
            | Inst::Stdu { disp, .. }
            | Inst::Lxv { disp, .. }
            | Inst::Lxvp { disp, .. }
            | Inst::Stxv { disp, .. }
            | Inst::Stxvp { disp, .. } => !D16.contains(&disp),
            _ => false,
        }
    }

    /// Whether this is any kind of branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::B { .. }
                | Inst::Bc { .. }
                | Inst::Bdnz { .. }
                | Inst::Bctr
                | Inst::Bl { .. }
                | Inst::Blr
        )
    }

    /// Whether this is an MMA facility instruction (including accumulator
    /// moves and the wake hint).
    #[must_use]
    pub fn is_mma(&self) -> bool {
        matches!(
            self,
            Inst::Xxsetaccz { .. }
                | Inst::Xvf64gerpp { .. }
                | Inst::Xvf64gernp { .. }
                | Inst::Xvf32gerpp { .. }
                | Inst::Xvbf16ger2pp { .. }
                | Inst::Xvi8ger4pp { .. }
                | Inst::Xxmfacc { .. }
                | Inst::Xxmtacc { .. }
                | Inst::MmaWakeHint
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A compact assembly-ish rendering, mainly for debugging and docs.
        match *self {
            Inst::Addi { rt, ra, imm } => write!(f, "addi {rt},{ra},{imm}"),
            Inst::Li { rt, imm } => write!(f, "li {rt},{imm}"),
            Inst::Add { rt, ra, rb } => write!(f, "add {rt},{ra},{rb}"),
            Inst::Sub { rt, ra, rb } => write!(f, "sub {rt},{ra},{rb}"),
            Inst::Neg { rt, ra } => write!(f, "neg {rt},{ra}"),
            Inst::And { rt, ra, rb } => write!(f, "and {rt},{ra},{rb}"),
            Inst::Or { rt, ra, rb } => write!(f, "or {rt},{ra},{rb}"),
            Inst::Xor { rt, ra, rb } => write!(f, "xor {rt},{ra},{rb}"),
            Inst::Sldi { rt, ra, sh } => write!(f, "sldi {rt},{ra},{sh}"),
            Inst::Srdi { rt, ra, sh } => write!(f, "srdi {rt},{ra},{sh}"),
            Inst::Mulld { rt, ra, rb } => write!(f, "mulld {rt},{ra},{rb}"),
            Inst::Divd { rt, ra, rb } => write!(f, "divd {rt},{ra},{rb}"),
            Inst::Cmp { bf, ra, rb } => write!(f, "cmpd {bf},{ra},{rb}"),
            Inst::Cmpi { bf, ra, imm } => write!(f, "cmpdi {bf},{ra},{imm}"),
            Inst::Lbz { rt, ra, disp } => write!(f, "lbz {rt},{disp}({ra})"),
            Inst::Lwz { rt, ra, disp } => write!(f, "lwz {rt},{disp}({ra})"),
            Inst::Ld { rt, ra, disp } => write!(f, "ld {rt},{disp}({ra})"),
            Inst::Ldx { rt, ra, rb } => write!(f, "ldx {rt},{ra},{rb}"),
            Inst::Stb { rs, ra, disp } => write!(f, "stb {rs},{disp}({ra})"),
            Inst::Stw { rs, ra, disp } => write!(f, "stw {rs},{disp}({ra})"),
            Inst::Std { rs, ra, disp } => write!(f, "std {rs},{disp}({ra})"),
            Inst::Stdu { rs, ra, disp } => write!(f, "stdu {rs},{disp}({ra})"),
            Inst::Lxv { xt, ra, disp } => write!(f, "lxv {xt},{disp}({ra})"),
            Inst::Lxvx { xt, ra, rb } => write!(f, "lxvx {xt},{ra},{rb}"),
            Inst::Lxvp { xt, ra, disp } => write!(f, "lxvp {xt},{disp}({ra})"),
            Inst::Lxvdsx { xt, ra, rb } => write!(f, "lxvdsx {xt},{ra},{rb}"),
            Inst::Stxv { xs, ra, disp } => write!(f, "stxv {xs},{disp}({ra})"),
            Inst::Stxvp { xs, ra, disp } => write!(f, "stxvp {xs},{disp}({ra})"),
            Inst::Xvadddp { xt, xa, xb } => write!(f, "xvadddp {xt},{xa},{xb}"),
            Inst::Xvmuldp { xt, xa, xb } => write!(f, "xvmuldp {xt},{xa},{xb}"),
            Inst::Xvmaddadp { xt, xa, xb } => write!(f, "xvmaddadp {xt},{xa},{xb}"),
            Inst::Xvmaddasp { xt, xa, xb } => write!(f, "xvmaddasp {xt},{xa},{xb}"),
            Inst::Xxlxor { xt, xa, xb } => write!(f, "xxlxor {xt},{xa},{xb}"),
            Inst::Xxspltd { xt, xa, uim } => write!(f, "xxspltd {xt},{xa},{uim}"),
            Inst::Xxsetaccz { at } => write!(f, "xxsetaccz {at}"),
            Inst::Xvf64gerpp { at, xa, xb } => write!(f, "xvf64gerpp {at},{xa},{xb}"),
            Inst::Xvf64gernp { at, xa, xb } => write!(f, "xvf64gernp {at},{xa},{xb}"),
            Inst::Xvf32gerpp { at, xa, xb } => write!(f, "xvf32gerpp {at},{xa},{xb}"),
            Inst::Xvbf16ger2pp { at, xa, xb } => write!(f, "xvbf16ger2pp {at},{xa},{xb}"),
            Inst::Xvi8ger4pp { at, xa, xb } => write!(f, "xvi8ger4pp {at},{xa},{xb}"),
            Inst::Xxmfacc { at } => write!(f, "xxmfacc {at}"),
            Inst::Xxmtacc { at } => write!(f, "xxmtacc {at}"),
            Inst::B { target } => write!(f, "b {target:?}"),
            Inst::Bc { cond, bf, target } => write!(f, "bc {cond:?},{bf},{target:?}"),
            Inst::Bdnz { target } => write!(f, "bdnz {target:?}"),
            Inst::Bctr => write!(f, "bctr"),
            Inst::Bl { target } => write!(f, "bl {target:?}"),
            Inst::Blr => write!(f, "blr"),
            Inst::Mtctr { ra } => write!(f, "mtctr {ra}"),
            Inst::Mtlr { ra } => write!(f, "mtlr {ra}"),
            Inst::Mflr { rt } => write!(f, "mflr {rt}"),
            Inst::Nop => write!(f, "nop"),
            Inst::MmaWakeHint => write!(f, "mma_wake_hint"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_covers_all_senses() {
        // field bits: LT=0b100, GT=0b010, EQ=0b001
        assert!(Cond::Lt.eval(0b100));
        assert!(!Cond::Lt.eval(0b010));
        assert!(Cond::Gt.eval(0b010));
        assert!(Cond::Eq.eval(0b001));
        assert!(Cond::Ge.eval(0b010));
        assert!(!Cond::Ge.eval(0b100));
        assert!(Cond::Le.eval(0b100));
        assert!(!Cond::Le.eval(0b010));
        assert!(Cond::Ne.eval(0b100));
        assert!(!Cond::Ne.eval(0b001));
    }

    #[test]
    fn prefixed_detection() {
        let small = Inst::Addi {
            rt: Reg::gpr(1),
            ra: Reg::gpr(2),
            imm: 100,
        };
        let large = Inst::Addi {
            rt: Reg::gpr(1),
            ra: Reg::gpr(2),
            imm: 1 << 20,
        };
        assert!(!small.is_prefixed());
        assert!(large.is_prefixed());
        let big_disp = Inst::Ld {
            rt: Reg::gpr(1),
            ra: Reg::gpr(2),
            disp: 1 << 17,
        };
        assert!(big_disp.is_prefixed());
        assert!(!Inst::Nop.is_prefixed());
    }

    #[test]
    fn branch_and_mma_classification() {
        assert!(Inst::Bctr.is_branch());
        assert!(Inst::Blr.is_branch());
        assert!(!Inst::Nop.is_branch());
        assert!(Inst::Xxsetaccz { at: Reg::acc(0) }.is_mma());
        assert!(Inst::MmaWakeHint.is_mma());
        assert!(!Inst::Nop.is_mma());
    }

    #[test]
    fn display_is_nonempty_for_representatives() {
        let insts = [
            Inst::Li {
                rt: Reg::gpr(3),
                imm: 1,
            },
            Inst::Xvf32gerpp {
                at: Reg::acc(0),
                xa: Reg::vsr(32),
                xb: Reg::vsr(33),
            },
            Inst::Blr,
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }
}
