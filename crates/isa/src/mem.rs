//! Sparse byte-addressable memory for functional execution.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse 64-bit byte-addressable memory backed by 4 KiB pages.
///
/// Unwritten memory reads as zero, which lets workloads run over large
/// footprints without materializing them.
#[derive(Debug, Default, Clone)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl std::hash::Hash for SparseMemory {
    /// Hashes the resident pages in ascending page-number order, so the
    /// digest depends only on memory *contents*, never on `HashMap`
    /// iteration order (which varies across processes).
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut page_nums: Vec<u64> = self.pages.keys().copied().collect();
        page_nums.sort_unstable();
        page_nums.len().hash(state);
        for num in page_nums {
            num.hash(state);
            state.write(&self.pages[&num][..]);
        }
    }
}

impl SparseMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Number of materialized (written) pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte (zero if never written).
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = val;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes::<4>(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes::<8>(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Reads an `f64` stored in little-endian byte order.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` in little-endian byte order.
    pub fn write_f64(&mut self, addr: u64, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Reads an `f32` stored in little-endian byte order.
    #[must_use]
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` in little-endian byte order.
    pub fn write_f32(&mut self, addr: u64, val: f32) {
        self.write_u32(addr, val.to_bits());
    }

    /// Reads a 128-bit value as two little-endian `u64` words
    /// (`[low, high]`).
    #[must_use]
    pub fn read_u128_words(&self, addr: u64) -> [u64; 2] {
        [self.read_u64(addr), self.read_u64(addr + 8)]
    }

    /// Writes a 128-bit value as two little-endian `u64` words.
    pub fn write_u128_words(&mut self, addr: u64, words: [u64; 2]) {
        self.write_u64(addr, words[0]);
        self.write_u64(addr + 8, words[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u8(0xdead_beef), 0);
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u64_roundtrip_and_page_accounting() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89ab_cdef);
        assert_eq!(m.resident_pages(), 1);
        m.write_u64(0x2000, 1);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1ffc, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x1ffc), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn float_roundtrips() {
        let mut m = SparseMemory::new();
        m.write_f64(64, -3.25);
        assert_eq!(m.read_f64(64), -3.25);
        m.write_f32(128, 1.5);
        assert_eq!(m.read_f32(128), 1.5);
    }

    #[test]
    fn vector_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_u128_words(256, [0xaa, 0xbb]);
        assert_eq!(m.read_u128_words(256), [0xaa, 0xbb]);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u32(0, 0x0102_0304);
        assert_eq!(m.read_u8(0), 0x04);
        assert_eq!(m.read_u8(3), 0x01);
    }
}
