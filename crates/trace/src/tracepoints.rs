//! Tracepoints: performance-counter-histogram epoch selection.
//!
//! Performance-counter information is collected per epoch and epochs are
//! assigned to histogram bins by CPI (and optionally other metrics such
//! as cache misses, branch mispredictions and op mix). Individual epochs
//! are picked from bins so that the concatenated trace matches the
//! aggregate performance of the full application (paper §III-A).

use crate::Selection;
use serde::{Deserialize, Serialize};

/// An epoch's performance-counter summary. `metrics[0]` is the primary
/// binning metric (CPI by convention); further entries refine binning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Epoch {
    /// Counter values for this epoch.
    pub metrics: Vec<f64>,
}

/// Tracepoints configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracepointConfig {
    /// Histogram bins on the primary metric.
    pub bins: usize,
    /// Secondary-metric sub-bins (1 = primary only).
    pub sub_bins: usize,
    /// Maximum epochs selected (the trace budget).
    pub budget: usize,
}

impl Default for TracepointConfig {
    fn default() -> Self {
        TracepointConfig {
            bins: 8,
            sub_bins: 2,
            budget: 16,
        }
    }
}

fn bin_of(value: f64, lo: f64, hi: f64, bins: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    (((value - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1)
}

/// Selects representative epochs: one per populated (bin, sub-bin) cell
/// up to the budget (largest cells first), weighted by cell population.
#[must_use]
pub fn tracepoints(epochs: &[Epoch], cfg: &TracepointConfig) -> Selection {
    if epochs.is_empty() {
        return Selection { picks: Vec::new() };
    }
    let primary: Vec<f64> = epochs.iter().map(|e| e.metrics[0]).collect();
    let (p_lo, p_hi) = (
        primary.iter().copied().fold(f64::INFINITY, f64::min),
        primary.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let secondary: Vec<f64> = epochs
        .iter()
        .map(|e| e.metrics.get(1).copied().unwrap_or(0.0))
        .collect();
    let (s_lo, s_hi) = (
        secondary.iter().copied().fold(f64::INFINITY, f64::min),
        secondary.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );

    // Assign epochs to cells.
    let n_cells = cfg.bins * cfg.sub_bins;
    let mut cells: Vec<Vec<usize>> = vec![Vec::new(); n_cells];
    for (i, e) in epochs.iter().enumerate() {
        let b = bin_of(e.metrics[0], p_lo, p_hi, cfg.bins);
        let sb = bin_of(secondary[i], s_lo, s_hi, cfg.sub_bins);
        cells[b * cfg.sub_bins + sb].push(i);
    }

    // Largest cells first, up to the budget.
    let mut order: Vec<usize> = (0..n_cells).filter(|&c| !cells[c].is_empty()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(cells[c].len()));
    order.truncate(cfg.budget.max(1));

    let covered: usize = order.iter().map(|&c| cells[c].len()).sum();
    let mut picks = Vec::new();
    for &c in &order {
        let members = &cells[c];
        // Representative: the epoch whose primary metric is closest to
        // the cell mean (matching aggregate performance).
        let mean: f64 = members.iter().map(|&i| primary[i]).sum::<f64>() / members.len() as f64;
        let rep = *members
            .iter()
            .min_by(|&&a, &&b| {
                (primary[a] - mean)
                    .abs()
                    .partial_cmp(&(primary[b] - mean).abs())
                    .expect("finite")
            })
            .expect("nonempty");
        picks.push((rep, members.len() as f64 / covered as f64));
    }
    Selection { picks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean;

    fn phased_epochs() -> Vec<Epoch> {
        // Two performance phases with identical "code": CPI 0.5 vs 2.5.
        (0..100)
            .map(|i| {
                let cpi = if (i / 10) % 2 == 0 { 0.5 } else { 2.5 };
                Epoch {
                    metrics: vec![cpi, f64::from(i % 3)],
                }
            })
            .collect()
    }

    #[test]
    fn selection_matches_aggregate_cpi() {
        let epochs = phased_epochs();
        let s = tracepoints(&epochs, &TracepointConfig::default());
        let cpis: Vec<f64> = epochs.iter().map(|e| e.metrics[0]).collect();
        let full = mean(&cpis);
        let est = s.weighted_estimate(&cpis);
        assert!(
            (est - full).abs() / full < 0.05,
            "tracepoint estimate {est} must match full {full}"
        );
    }

    #[test]
    fn both_phases_are_represented() {
        let epochs = phased_epochs();
        let s = tracepoints(&epochs, &TracepointConfig::default());
        let picked: Vec<f64> = s.picks.iter().map(|&(i, _)| epochs[i].metrics[0]).collect();
        assert!(picked.iter().any(|&c| c < 1.0), "fast phase missing");
        assert!(picked.iter().any(|&c| c > 2.0), "slow phase missing");
    }

    #[test]
    fn budget_bounds_selection_size() {
        let epochs = phased_epochs();
        let cfg = TracepointConfig {
            bins: 8,
            sub_bins: 2,
            budget: 3,
        };
        let s = tracepoints(&epochs, &cfg);
        assert!(s.len() <= 3);
        let total: f64 = s.picks.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_epochs_need_one_representative() {
        let epochs: Vec<Epoch> = (0..50)
            .map(|_| Epoch {
                metrics: vec![1.0, 0.0],
            })
            .collect();
        let s = tracepoints(&epochs, &TracepointConfig::default());
        assert_eq!(s.len(), 1);
        assert!((s.picks[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_epochs_empty_selection() {
        assert!(tracepoints(&[], &TracepointConfig::default()).is_empty());
    }
}
