//! Simpoint-style representative intervals: BBVs + k-means.

use crate::Selection;
use p10_isa::DynOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds normalized Basic Block Vectors for consecutive intervals of
/// `interval_ops` dynamic instructions. Basic blocks are approximated by
/// bucketing instruction addresses (`n_buckets` code regions), which
/// matches BBV behaviour for our generated code layouts.
///
/// A trace whose length is not a multiple of `interval_ops` contributes
/// its ragged tail as one final *partial* interval (still a normalized
/// distribution), so the intervals cover 100% of the ops. Callers that
/// weight intervals by op count should weight the tail by
/// `len / interval_ops` — see [`simpoints_weighted`]; callers that need
/// equal-size intervals only (e.g. epoch alignment) can pop the last
/// entry when `ops.len() % interval_ops != 0`.
#[must_use]
pub fn bbv_intervals(ops: &[DynOp], interval_ops: usize, n_buckets: usize) -> Vec<Vec<f64>> {
    assert!(interval_ops > 0 && n_buckets > 0);
    let mut out = Vec::new();
    for chunk in ops.chunks(interval_ops) {
        let mut v = vec![0.0f64; n_buckets];
        for op in chunk {
            let bucket = ((op.pc >> 4) as usize) % n_buckets;
            v[bucket] += 1.0;
        }
        let norm: f64 = v.iter().sum();
        for x in &mut v {
            *x /= norm;
        }
        out.push(v);
    }
    out
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Deterministic k-means with k-means++-style seeding.
///
/// Returns `(assignments, centroids)`.
///
/// # Panics
///
/// Panics if `points` is empty or `k == 0`.
#[must_use]
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> (Vec<usize>, Vec<Vec<f64>>) {
    assert!(!points.is_empty() && k > 0);
    let k = k.min(points.len());
    let mut rng = SmallRng::seed_from_u64(seed);
    // k-means++ init.
    let mut centroids: Vec<Vec<f64>> = vec![points[rng.gen_range(0..points.len())].clone()];
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            centroids.push(points[centroids.len() % points.len()].clone());
            continue;
        }
        let mut r = rng.gen_range(0.0..total);
        let mut pick = 0;
        for (i, &d) in d2.iter().enumerate() {
            if r <= d {
                pick = i;
                break;
            }
            r -= d;
        }
        centroids.push(points[pick].clone());
    }

    let mut assign = vec![0usize; points.len()];
    for _ in 0..50 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a])
                        .partial_cmp(&dist2(p, &centroids[b]))
                        .expect("finite")
                })
                .expect("k >= 1");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, &x) in sums[assign[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, n)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
            if *n > 0 {
                *c = sum.iter().map(|s| s / *n as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }
    (assign, centroids)
}

/// Selects simpoints: one representative interval per cluster (the one
/// closest to the centroid), weighted by cluster population.
#[must_use]
pub fn simpoints(bbvs: &[Vec<f64>], k: usize, seed: u64) -> Selection {
    if bbvs.is_empty() {
        return Selection { picks: Vec::new() };
    }
    let (assign, centroids) = kmeans(bbvs, k, seed);
    let mut picks = Vec::new();
    let n = bbvs.len() as f64;
    for (ci, c) in centroids.iter().enumerate() {
        let members: Vec<usize> = (0..bbvs.len()).filter(|&i| assign[i] == ci).collect();
        if members.is_empty() {
            continue;
        }
        let rep = *members
            .iter()
            .min_by(|&&a, &&b| {
                dist2(&bbvs[a], c)
                    .partial_cmp(&dist2(&bbvs[b], c))
                    .expect("finite")
            })
            .expect("nonempty");
        picks.push((rep, members.len() as f64 / n));
    }
    Selection { picks }
}

/// A [`simpoints_weighted`] selection with its full cluster structure —
/// what a sampled-execution engine needs beyond the bare picks: which
/// intervals each representative stands for (for error-bound estimation)
/// in addition to the ops-weighted projection weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSimpoints {
    /// `(representative, weight)` pairs; weights sum to 1 and are
    /// proportional to the summed *interval weights* (op counts) of each
    /// cluster, so partial tail intervals count exactly their share.
    pub selection: Selection,
    /// Per pick, the member interval indices of that cluster (the
    /// representative itself included).
    pub members: Vec<Vec<usize>>,
}

/// Like [`simpoints`], but each interval carries a weight (its op count,
/// so ragged tail intervals count `len / interval_ops` of a full one) and
/// cluster weights are the summed member weights instead of member
/// counts. Representatives are still the member closest to the centroid.
///
/// # Panics
///
/// Panics if `weights.len() != bbvs.len()` or any weight is not positive.
#[must_use]
pub fn simpoints_weighted(
    bbvs: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    seed: u64,
) -> WeightedSimpoints {
    assert_eq!(bbvs.len(), weights.len(), "one weight per interval");
    assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
    if bbvs.is_empty() {
        return WeightedSimpoints {
            selection: Selection { picks: Vec::new() },
            members: Vec::new(),
        };
    }
    let (assign, centroids) = kmeans(bbvs, k, seed);
    let total: f64 = weights.iter().sum();
    let mut picks = Vec::new();
    let mut members_out = Vec::new();
    for (ci, c) in centroids.iter().enumerate() {
        let members: Vec<usize> = (0..bbvs.len()).filter(|&i| assign[i] == ci).collect();
        if members.is_empty() {
            continue;
        }
        let rep = *members
            .iter()
            .min_by(|&&a, &&b| {
                dist2(&bbvs[a], c)
                    .partial_cmp(&dist2(&bbvs[b], c))
                    .expect("finite")
            })
            .expect("nonempty");
        let weight: f64 = members.iter().map(|&i| weights[i]).sum::<f64>() / total;
        picks.push((rep, weight));
        members_out.push(members);
    }
    WeightedSimpoints {
        selection: Selection { picks },
        members: members_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_separates_two_obvious_clusters() {
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for i in 0..20 {
            let e = f64::from(i % 3) * 0.01;
            pts.push(vec![0.0 + e, 1.0 - e]);
            pts.push(vec![1.0 - e, 0.0 + e]);
        }
        let (assign, _) = kmeans(&pts, 2, 1);
        // Even indices are cluster A, odd cluster B (construction order).
        let a0 = assign[0];
        assert!(assign.iter().step_by(2).all(|&a| a == a0));
        assert!(assign.iter().skip(1).step_by(2).all(|&a| a != a0));
    }

    #[test]
    fn simpoint_weights_sum_to_one() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![f64::from(i % 5), f64::from(i % 7)])
            .collect();
        let s = simpoints(&pts, 4, 7);
        let total: f64 = s.picks.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(s.len() <= 4);
    }

    #[test]
    fn bbv_intervals_are_normalized_distributions() {
        use p10_isa::{Machine, ProgramBuilder, Reg};
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), 1000);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        for _ in 0..6 {
            b.addi(Reg::gpr(5), Reg::gpr(5), 1);
        }
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 100_000).unwrap();
        // Interval = multiple of the 7-op loop body so intervals align.
        let bbvs = bbv_intervals(&t.ops, 700, 16);
        assert!(bbvs.len() > 3);
        for v in &bbvs {
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // A single loop: every steady-state *full* interval has the same
        // BBV (skip the first, which contains the prologue, and the
        // ragged tail, which is a partial interval).
        let full = t.ops.len() / 700;
        for v in &bbvs[2..full] {
            assert!(dist2(v, &bbvs[1]) < 1e-12);
        }
    }

    #[test]
    fn ragged_tail_is_kept_as_a_partial_interval() {
        use p10_isa::{DynOp, OpClass};
        // 10 intervals of 300 ops plus a 100-op tail: the tail must be
        // returned (normalized like any other interval) so the interval
        // set covers 100% of the ops, and its ops-proportional weight is
        // len / interval_ops.
        let ops: Vec<DynOp> = (0u64..3100)
            .map(|i| DynOp::new(i * 4, OpClass::IntAlu))
            .collect();
        let bbvs = bbv_intervals(&ops, 300, 8);
        assert_eq!(bbvs.len(), 11, "10 full intervals + 1 partial tail");
        for v in &bbvs {
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "tail must still be normalized");
        }
        // An exactly-divisible trace has no tail entry.
        assert_eq!(bbv_intervals(&ops[..3000], 300, 8).len(), 10);
    }

    #[test]
    fn weighted_simpoints_weight_by_ops_not_interval_count() {
        // Two well-separated behaviours; the second has a half-weight
        // tail interval. Cluster weights must follow the op weights.
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let bbvs = vec![a.clone(), a.clone(), a, b.clone(), b.clone(), b];
        let weights = vec![1.0, 1.0, 1.0, 1.0, 1.0, 0.5];
        let w = simpoints_weighted(&bbvs, &weights, 2, 3);
        assert_eq!(w.selection.len(), 2);
        let total: f64 = w.selection.picks.iter().map(|&(_, x)| x).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (pick_i, &(rep, weight)) in w.selection.picks.iter().enumerate() {
            let members = &w.members[pick_i];
            assert!(members.contains(&rep));
            let expect: f64 =
                members.iter().map(|&i| weights[i]).sum::<f64>() / weights.iter().sum::<f64>();
            assert!((weight - expect).abs() < 1e-9);
        }
        // The cluster holding the tail weighs 2.5/5.5, not 3/6.
        let light = w
            .selection
            .picks
            .iter()
            .map(|&(_, x)| x)
            .fold(f64::INFINITY, f64::min);
        assert!((light - 2.5 / 5.5).abs() < 1e-9);
    }

    #[test]
    fn kmeans_is_deterministic_per_seed() {
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![f64::from(i % 8) * 0.1, f64::from((i * 3) % 5)])
            .collect();
        let (a1, _) = kmeans(&pts, 3, 42);
        let (a2, _) = kmeans(&pts, 3, 42);
        assert_eq!(a1, a2);
    }
}
