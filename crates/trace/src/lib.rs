//! # p10-trace
//!
//! Representative-trace methodologies (paper §III-A):
//!
//! * [`simpoint`] — the baseline the paper compares against: intervals
//!   are summarized by Basic Block Vectors (BBVs) and clustered with
//!   k-means; one representative interval per cluster, weighted by
//!   cluster size.
//! * [`tracepoints`] — the paper's methodology: epochs are summarized by
//!   *performance-counter* vectors (CPI, cache misses, branch misses, op
//!   mix) collected at millisecond-class granularity, binned by
//!   performance, and selected per-bin so the concatenated trace matches
//!   the aggregate behaviour of the full application. This captures
//!   phases that BBVs cannot see — notably data-dependent phases of
//!   interpreted-language workloads where the *code* (and hence the BBV)
//!   barely changes while performance swings.
//!
//! Both produce a weighted selection of intervals; `weighted_estimate`
//! projects any metric from the selection, so accuracy comparisons are a
//! one-liner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod simpoint;
pub mod tracepoints;

use serde::{Deserialize, Serialize};

/// A weighted selection of interval/epoch indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// `(index, weight)` pairs; weights sum to 1.
    pub picks: Vec<(usize, f64)>,
}

impl Selection {
    /// Projects a per-interval metric through the selection weights.
    #[must_use]
    pub fn weighted_estimate(&self, metric: &[f64]) -> f64 {
        self.picks.iter().map(|&(i, w)| metric[i] * w).sum::<f64>()
    }

    /// Number of representatives selected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.picks.len()
    }

    /// Whether the selection is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.picks.is_empty()
    }
}

/// Mean of a slice (0 for empty) — the "ground truth" aggregate.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_estimate_basics() {
        let s = Selection {
            picks: vec![(0, 0.25), (2, 0.75)],
        };
        let metric = [4.0, 100.0, 8.0];
        assert!((s.weighted_estimate(&metric) - 7.0).abs() < 1e-12);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
