//! # p10-uarch
//!
//! A cycle-level, trace-driven, out-of-order SMT core model configurable
//! between POWER9-like and POWER10-like micro-architectures — the
//! simulation substrate for the `p10sim` reproduction of the ISCA 2021
//! POWER10 energy-efficiency paper.
//!
//! The modeled core is the paper's SMT4-equivalent half of an SMT8 core
//! (Fig. 3). Every mechanism the paper credits for the POWER10 efficiency
//! gain is an explicit configuration switch:
//!
//! * branch-prediction resources and the new long-history/indirect
//!   predictors ([`BranchConfig`]),
//! * decode width 6→8 with instruction pairing and >200-pair fusion,
//! * removal of reservation stations in favour of the unified sliced
//!   register file,
//! * EA-tagged L1 caches (translation only on miss),
//! * doubled VSX units and load/store bandwidth (32-byte accesses),
//! * 4× L2, 4× TLB, deeper queues and instruction window,
//! * the inline MMA accelerator (4×4 grid, eight 512-bit accumulators).
//!
//! Simulation produces an [`Activity`] record — the per-unit event counts
//! that the `p10-power` component power model converts into energy.
//!
//! ## Example
//!
//! ```
//! use p10_isa::{Machine, ProgramBuilder, Reg};
//! use p10_uarch::{Core, CoreConfig};
//!
//! // A tiny counted loop, functionally executed into a trace...
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::gpr(4), 100);
//! b.mtctr(Reg::gpr(4));
//! let top = b.bind_label();
//! b.addi(Reg::gpr(3), Reg::gpr(3), 1);
//! b.bdnz(top);
//! let prog = b.build();
//! let trace = p10_isa::Machine::new().run(&prog, 10_000).unwrap();
//!
//! // ...then replayed through the POWER10 timing model.
//! let result = Core::new(CoreConfig::power10()).run(vec![trace], 100_000);
//! assert!(result.ipc() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
pub mod cache;
mod config;
mod pipeline;
mod stats;
mod tlb;
pub mod warm;

pub use branch::{BranchPredictor, Prediction};
pub use cache::{Cache, HitLevel, MemHierarchy, StreamPrefetcher};
pub use config::{
    AblationGroup, BranchConfig, CacheConfig, CoreConfig, FetchPolicy, MmaConfig, Scheduler,
    SmtMode,
};
pub use pipeline::{Core, SpanObserver};
pub use stats::{Activity, CycleAttribution, SimResult};
pub use tlb::{Mmu, TranslateSide};
pub use warm::{FunctionalWarmer, WarmState};
