//! Activity counters and simulation results.
//!
//! Every micro-architectural event that matters for power is counted here.
//! The power model (`p10-power`) converts these counts into per-component
//! energy; the Powerminer/APEX analogs aggregate them at different
//! granularities. Counters are plain `u64`s so they can be diffed, summed
//! and serialized cheaply.

use serde::{Deserialize, Serialize};

macro_rules! activity_struct {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        /// Per-unit activity counters accumulated during simulation.
        ///
        /// The ordering (derived, lexicographic in declaration order) has
        /// no physical meaning; it exists so deltas can key deterministic
        /// ordered maps (the detailed simulator folds its latch
        /// bookkeeping per *distinct* per-cycle delta).
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct Activity {
            $($(#[$doc])* pub $field: u64,)+
        }

        impl Activity {
            /// Element-wise sum.
            #[must_use]
            pub fn sum(&self, other: &Activity) -> Activity {
                Activity { $($field: self.$field + other.$field,)+ }
            }

            /// Element-wise difference (`self - other`), saturating at zero.
            #[must_use]
            pub fn delta(&self, earlier: &Activity) -> Activity {
                Activity { $($field: self.$field.saturating_sub(earlier.$field),)+ }
            }

            /// The counters as `(name, value)` pairs, in declaration order.
            #[must_use]
            pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field),)+]
            }

            /// Scales a *homogeneous* span delta of `len` cycles down to
            /// its first `prefix` cycles, exactly.
            ///
            /// Span deltas delivered by `SpanObserver::on_span` change
            /// every counter at a constant per-cycle rate, so each field
            /// is divisible by `len` and the prefix is exact integer
            /// arithmetic — this is what lets consumers split a span at
            /// an arbitrary interior cycle (extraction-window or
            /// ROI-warmup boundaries) without losing a single count.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero or `prefix > len`; debug builds
            /// also assert the homogeneity (divisibility) of every field.
            #[must_use]
            pub fn span_prefix(&self, len: u64, prefix: u64) -> Activity {
                assert!(len > 0 && prefix <= len, "prefix {prefix} of span len {len}");
                Activity {
                    $($field: {
                        debug_assert_eq!(
                            self.$field % len,
                            0,
                            concat!(stringify!($field), " must be homogeneous over the span"),
                        );
                        self.$field / len * prefix
                    },)+
                }
            }

            /// Number of counters.
            #[must_use]
            pub fn len() -> usize {
                [$(stringify!($field),)+].len()
            }

            /// Element-wise weighted sum of `(weight, activity)` terms,
            /// rounded to the nearest count (negative sums clamp to 0).
            ///
            /// This is the reconstitution primitive of sampled execution:
            /// a whole-trace activity estimate is the per-cluster
            /// representatives scaled by `cluster_ops / representative_ops`
            /// and summed.
            #[must_use]
            pub fn weighted_sum(terms: &[(f64, Activity)]) -> Activity {
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Activity {
                    $($field: terms
                        .iter()
                        .map(|(w, a)| w * a.$field as f64)
                        .sum::<f64>()
                        .round()
                        .max(0.0) as u64,)+
                }
            }
        }
    };
}

activity_struct! {
    /// Cycles simulated.
    cycles,
    /// Instructions completed (architectural work).
    completed,
    /// Instructions fetched (correct path).
    fetched,
    /// Estimated wrong-path instructions fetched after mispredictions.
    wrong_path_fetched,
    /// Correct-path instructions squashed from the pipeline by flushes.
    flushed,
    /// I-cache accesses (one per fetch group).
    icache_accesses,
    /// I-cache misses.
    icache_misses,
    /// Instruction-side address translations (ERAT lookups).
    ierat_lookups,
    /// Instructions decoded.
    decoded,
    /// Instruction pairs fused at decode.
    fused_pairs,
    /// Ops dispatched into the backend.
    dispatched,
    /// Cycles in which dispatch was blocked by a full resource.
    dispatch_stall_cycles,
    /// Ops issued to execution units.
    issued,
    /// Simple integer ALU operations executed.
    alu_ops,
    /// Integer multiply operations executed.
    mul_ops,
    /// Integer divide operations executed.
    div_ops,
    /// Branch operations executed.
    branch_ops,
    /// Conditional/indirect branches that were predicted.
    branch_predictions,
    /// Branch mispredictions (direction or target).
    branch_mispredicts,
    /// VSX simple (logical/permute) operations executed.
    vsx_simple_ops,
    /// VSX floating-point operations executed.
    vsx_fp_ops,
    /// Floating-point operations (flops) performed by the VSX units.
    vsx_flops,
    /// MMA outer-product instructions executed.
    mma_ops,
    /// Flop/MAC-equivalents performed by the MMA grid.
    mma_flops,
    /// MMA accumulator move/prime operations.
    mma_moves,
    /// Cycles in which the MMA unit was active.
    mma_active_cycles,
    /// Cycles the MMA power-gate was open (unit powered on).
    mma_powered_cycles,
    /// Cycles MMA ops stalled waiting for the unit to power on.
    mma_wake_stall_cycles,
    /// Register-file read ports exercised.
    regfile_reads,
    /// Register-file write ports exercised.
    regfile_writes,
    /// Loads executed.
    loads,
    /// Stores executed.
    stores,
    /// Store-queue entries merged into a neighbour (gathered stores).
    store_merges,
    /// Loads forwarded from the store queue.
    store_forwards,
    /// D-side L1 accesses.
    l1d_accesses,
    /// D-side L1 misses.
    l1d_misses,
    /// Data-side address translations (ERAT lookups).
    derat_lookups,
    /// ERAT misses (either side) that consulted the TLB.
    erat_misses,
    /// TLB misses that triggered a table walk.
    tlb_misses,
    /// L2 accesses.
    l2_accesses,
    /// L2 misses.
    l2_misses,
    /// L3 accesses.
    l3_accesses,
    /// L3 misses (memory accesses).
    l3_misses,
    /// Prefetches issued by the stream prefetcher.
    prefetches_issued,
    /// Prefetched lines that were later used.
    prefetch_hits,
    /// Completion-stage slots used.
    completion_slots,
    /// Sum over cycles of occupied instruction-table entries
    /// (divide by `cycles` for mean occupancy).
    window_occupancy_acc,
    /// Cycles in which at least one op issued (core "active" cycles).
    active_cycles,
    /// Pipeline-hold cycles while an I-ERAT/TLB walk was pending.
    itlb_stall_cycles,
}

impl Activity {
    /// Instructions per cycle (completed / cycles).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.completed as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cycles as f64 / self.completed as f64
        }
    }

    /// Total flops (VSX + MMA) per cycle.
    #[must_use]
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.vsx_flops + self.mma_flops) as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate (mispredicts / predictions).
    #[must_use]
    pub fn branch_mispredict_rate(&self) -> f64 {
        if self.branch_predictions == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branch_predictions as f64
        }
    }

    /// Mean instruction-window occupancy.
    #[must_use]
    pub fn mean_window_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.window_occupancy_acc as f64 / self.cycles as f64
        }
    }

    /// L1D miss rate per access.
    #[must_use]
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses as f64
        }
    }
}

/// Where every simulated cycle went — a mutually-exclusive partition of
/// `Activity::cycles` into bottleneck buckets, maintained by the pipeline
/// at a cost of a few comparisons per cycle (no per-cycle observer
/// needed).
///
/// Each cycle lands in exactly the **first** matching bucket:
///
/// 1. [`active`](Self::active) — at least one op issued (equals
///    `Activity::active_cycles`).
/// 2. [`mma_gated`](Self::mma_gated) — nothing issued because an MMA op
///    stalled waking the power-gated MMA unit.
/// 3. [`memory_bound`](Self::memory_bound) — nothing issued with at least
///    one demand load miss outstanding in the LMQ (covers both
///    dependents waiting on miss data and loads blocked by a full LMQ).
/// 4. [`issue_limited`](Self::issue_limited) — no miss outstanding; a
///    ready op was within the issue lookahead but structural limits
///    (ports, busy dividers, lookahead window) blocked it.
/// 5. [`dispatch_stalled`](Self::dispatch_stalled) — nothing ready and no
///    miss outstanding, but dispatch was blocked by a full backend
///    resource and made no progress.
/// 6. [`fetch_stalled`](Self::fetch_stalled) — none of the above and
///    fetch delivered nothing while a thread still had instructions to
///    fetch (i-cache miss / iTLB walk / redirect shadow).
/// 7. [`idle`](Self::idle) — everything else: execution-latency waits,
///    ramp-up and drain tails. These are exactly the stretches the
///    event-driven scheduler fast-forwards over, so the same cycles are
///    attributed in closed form there (scheduler-identical by test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleAttribution {
    /// Cycles in which at least one op issued.
    pub active: u64,
    /// No-issue cycles blocked on the MMA power-gate wake latency.
    pub mma_gated: u64,
    /// No-issue cycles with a ready op in reach (structural issue limit).
    pub issue_limited: u64,
    /// No-issue cycles with a demand L1 miss outstanding.
    pub memory_bound: u64,
    /// No-issue cycles with dispatch blocked and making no progress.
    pub dispatch_stalled: u64,
    /// No-issue cycles with fetch delivering nothing despite pending work.
    pub fetch_stalled: u64,
    /// Remaining cycles: pure latency waits and ramp/drain tails (the
    /// fast-forwardable stretches under the event-driven scheduler).
    pub idle: u64,
}

impl CycleAttribution {
    /// Sum of all buckets; always equals `Activity::cycles` for a
    /// completed run (asserted in debug builds).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.active
            + self.mma_gated
            + self.issue_limited
            + self.memory_bound
            + self.dispatch_stalled
            + self.fetch_stalled
            + self.idle
    }

    /// The buckets as `(name, value)` pairs, in declaration order.
    #[must_use]
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("active", self.active),
            ("mma_gated", self.mma_gated),
            ("issue_limited", self.issue_limited),
            ("memory_bound", self.memory_bound),
            ("dispatch_stalled", self.dispatch_stalled),
            ("fetch_stalled", self.fetch_stalled),
            ("idle", self.idle),
        ]
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// The configuration name this run used.
    pub config_name: String,
    /// Number of hardware threads that ran.
    pub threads: usize,
    /// Aggregate activity counters.
    pub activity: Activity,
    /// Instructions completed per thread.
    pub per_thread_completed: Vec<u64>,
    /// Cycle-level bottleneck attribution (partitions `activity.cycles`).
    pub attribution: CycleAttribution,
}

impl SimResult {
    /// Aggregate instructions per cycle across all threads.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.activity.ipc()
    }

    /// Aggregate cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.activity.cpi()
    }

    /// Total dynamic ops completed across all threads.
    #[must_use]
    pub fn total_completed(&self) -> u64 {
        self.per_thread_completed.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_delta_are_elementwise() {
        let a = Activity {
            cycles: 10,
            completed: 20,
            ..Activity::default()
        };
        let b = Activity {
            cycles: 5,
            completed: 7,
            ..Activity::default()
        };
        let s = a.sum(&b);
        assert_eq!(s.cycles, 15);
        assert_eq!(s.completed, 27);
        let d = s.delta(&b);
        assert_eq!(d.cycles, 10);
        assert_eq!(d.completed, 20);
    }

    #[test]
    fn delta_saturates() {
        let a = Activity::default();
        let b = Activity {
            cycles: 5,
            ..Activity::default()
        };
        assert_eq!(a.delta(&b).cycles, 0);
    }

    #[test]
    fn derived_rates() {
        let mut a = Activity::default();
        assert_eq!(a.ipc(), 0.0);
        assert_eq!(a.cpi(), 0.0);
        a.cycles = 100;
        a.completed = 250;
        a.vsx_flops = 300;
        a.mma_flops = 100;
        a.branch_predictions = 50;
        a.branch_mispredicts = 5;
        a.window_occupancy_acc = 12_800;
        assert!((a.ipc() - 2.5).abs() < 1e-12);
        assert!((a.cpi() - 0.4).abs() < 1e-12);
        assert!((a.flops_per_cycle() - 4.0).abs() < 1e-12);
        assert!((a.branch_mispredict_rate() - 0.1).abs() < 1e-12);
        assert!((a.mean_window_occupancy() - 128.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_scales_and_rounds_elementwise() {
        let a = Activity {
            cycles: 100,
            completed: 40,
            ..Activity::default()
        };
        let b = Activity {
            cycles: 7,
            loads: 3,
            ..Activity::default()
        };
        let s = Activity::weighted_sum(&[(2.5, a), (1.0, b)]);
        assert_eq!(s.cycles, 257);
        assert_eq!(s.completed, 100);
        assert_eq!(s.loads, 3);
        // 2.5 * 7 = 17.5 rounds to 18.
        assert_eq!(Activity::weighted_sum(&[(2.5, b)]).cycles, 18);
        assert_eq!(Activity::weighted_sum(&[]), Activity::default());
    }

    #[test]
    fn pairs_cover_every_counter() {
        let a = Activity::default();
        let pairs = a.as_pairs();
        assert_eq!(pairs.len(), Activity::len());
        assert!(pairs.iter().any(|(n, _)| *n == "mma_flops"));
        assert!(pairs.iter().any(|(n, _)| *n == "l2_misses"));
    }

    #[test]
    fn attribution_total_sums_every_bucket() {
        let attr = CycleAttribution {
            active: 1,
            mma_gated: 2,
            issue_limited: 4,
            memory_bound: 8,
            dispatch_stalled: 16,
            fetch_stalled: 32,
            idle: 64,
        };
        assert_eq!(attr.total(), 127);
        let pairs = attr.as_pairs();
        assert_eq!(pairs.len(), 7);
        assert_eq!(pairs.iter().map(|(_, v)| v).sum::<u64>(), attr.total());
        assert_eq!(pairs[0], ("active", 1));
        assert_eq!(pairs[6], ("idle", 64));
    }
}
