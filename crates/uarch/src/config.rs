//! Core configuration: every micro-architectural mechanism the paper
//! discusses is a parameter here, so POWER9, POWER10 and every intermediate
//! ablation point (Fig. 4) are just different values of one struct.
//!
//! The modeled core is the paper's "½ SMT8 core = SMT4 core equivalent"
//! building block (Fig. 3): up to four hardware threads, four execution
//! slices, and one MMA unit. "SMT8" results in the paper correspond to two
//! of these halves; the socket model in `p10-core` performs that scaling.

use serde::{Deserialize, Serialize};

/// SMT fetch policy: how fetch slots are shared among threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchPolicy {
    /// Rotate priority among threads each cycle.
    RoundRobin,
    /// Prioritize the thread with the fewest in-flight ops (classic
    /// ICOUNT — starves stalled threads, feeds fast ones).
    ICount,
}

/// How the core model finds work each cycle. Both variants produce
/// bit-identical [`crate::stats::SimResult`]s; they differ only in
/// simulation speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheduler {
    /// Reference implementation: scan the whole in-flight window every
    /// cycle and poll every candidate's dependencies (O(window)/cycle).
    Polled,
    /// Completion calendar + dependency wakeup lists + idle-cycle
    /// fast-forward: per-cycle work scales with what actually happens,
    /// and stretches where nothing can happen are skipped in closed form.
    EventDriven,
}

/// SMT mode: how many hardware threads share the core half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SmtMode {
    /// Single thread.
    St,
    /// Two threads.
    Smt2,
    /// Four threads.
    Smt4,
}

impl SmtMode {
    /// Number of hardware threads.
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            SmtMode::St => 1,
            SmtMode::Smt2 => 2,
            SmtMode::Smt4 => 4,
        }
    }
}

/// A set-associative cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access (hit) latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `ways * line_bytes`).
    #[must_use]
    pub fn sets(&self) -> u64 {
        let denom = u64::from(self.ways) * u64::from(self.line_bytes);
        assert!(
            denom > 0 && self.size_bytes.is_multiple_of(denom),
            "bad cache geometry"
        );
        self.size_bytes / denom
    }
}

/// Branch-prediction resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// Direction-predictor table entries (gshare-style base predictor).
    pub direction_entries: u32,
    /// Entries in the auxiliary long-history (TAGE-like) direction
    /// predictor (0 = absent). POWER9 has a modest one; POWER10's new
    /// direction predictors are modeled as a much larger table.
    pub long_history_entries: u32,
    /// Local-history bits folded into the long-history component's index
    /// and tag. Longer history captures longer-period patterns; this is
    /// where POWER10's new direction predictors get their reach.
    pub long_history_bits: u32,
    /// Indirect target-predictor entries.
    pub indirect_entries: u32,
    /// Bits of (target-folded) path history used to index the indirect
    /// predictor. POWER9's count-cache-style predictor uses very little
    /// path context; POWER10's new indirect predictor uses much more.
    pub indirect_path_bits: u32,
    /// Return-stack depth.
    pub return_stack: u32,
    /// Branch misprediction redirect penalty in cycles.
    pub mispredict_penalty: u32,
}

/// MMA accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmaConfig {
    /// FMA lanes in the processing-element grid (16 = 4×4).
    ///
    /// An `xvf64gerpp` consumes 8 lanes (two can issue per cycle); the
    /// single-precision and INT8 forms consume all 16 (one per cycle).
    pub grid_lanes: u32,
    /// Result latency of a `ger` op into the accumulator as seen by a
    /// *non-accumulator* consumer (e.g. `xxmfacc`).
    pub result_latency: u32,
    /// Effective accumulator-to-accumulator latency for back-to-back `ger`
    /// ops on the same accumulator (the paper: accumulators live in the
    /// functional unit, so this is short).
    pub acc_chain_latency: u32,
    /// Cycles to power the unit on from the gated state (no array init or
    /// scan-ring restore needed — paper §IV-A).
    pub wake_latency: u32,
    /// Idle cycles before firmware gates the unit off (firmware-selected).
    pub idle_gate_cycles: u32,
}

impl Default for MmaConfig {
    fn default() -> Self {
        MmaConfig {
            grid_lanes: 16,
            result_latency: 8,
            acc_chain_latency: 1,
            wake_latency: 64,
            idle_gate_cycles: 2_000,
        }
    }
}

/// Full core configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Human-readable configuration name (appears in results).
    pub name: String,
    /// SMT mode.
    pub smt: SmtMode,
    /// SMT fetch policy.
    pub fetch_policy: FetchPolicy,
    /// Simulation-scheduler implementation (not a modeled structure; both
    /// settings give bit-identical results).
    pub scheduler: Scheduler,

    // ---- front end ----
    /// Instructions fetched per cycle per thread opportunity.
    pub fetch_width: u32,
    /// Fetch-buffer entries per thread.
    pub fetch_buffer: u32,
    /// Instructions decoded per cycle (POWER9: 6, POWER10: 8 via pairing).
    pub decode_width: u32,
    /// Whether decode-time instruction fusion is enabled.
    pub fusion: bool,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Branch-prediction resources.
    pub branch: BranchConfig,

    // ---- translation ----
    /// Whether L1 caches are effective-address tagged (POWER10): address
    /// translation happens only on L1 miss instead of on every access.
    pub ea_tagged_l1: bool,
    /// ERAT entries (first-level translation cache).
    pub erat_entries: u32,
    /// TLB entries.
    pub tlb_entries: u32,
    /// Page-walk latency on TLB miss, cycles.
    pub walk_latency: u32,

    // ---- backend ----
    /// Instruction-table (out-of-order window) entries.
    pub itable_entries: u32,
    /// Ops dispatched per cycle.
    pub dispatch_width: u32,
    /// Ops completed (retired) per cycle.
    pub completion_width: u32,
    /// Whether the register files are the POWER10 unified sliced design
    /// (no reservation stations). Affects power, and removes the
    /// issue-queue-entries bottleneck modeled for POWER9.
    pub unified_regfile: bool,
    /// Issue-queue entries (total; POWER9's reservation stations are
    /// smaller).
    pub issue_queue_entries: u32,
    /// Scheduler reach: how many waiting ops the issue logic can consider
    /// per cycle (oldest first). Real select networks do not span the
    /// whole window.
    pub issue_lookahead: u32,

    // ---- execution resources ----
    /// Simple-integer-capable execution slices.
    pub int_slices: u32,
    /// VSX 128-bit floating-point pipes.
    pub vsx_units: u32,
    /// VSX floating-point latency (cycles).
    pub vsx_fp_latency: u32,
    /// Integer multiply latency.
    pub mul_latency: u32,
    /// Integer divide latency (unpipelined).
    pub div_latency: u32,
    /// Branch execution slices (POWER10 merges branch execution into the
    /// general slices; POWER9 has a dedicated port — modeled as count).
    pub branch_slices: u32,
    /// MMA accelerator, if present.
    pub mma: Option<MmaConfig>,

    // ---- load/store ----
    /// Load issue ports.
    pub load_ports: u32,
    /// Store issue ports.
    pub store_ports: u32,
    /// Maximum bytes per load access (16 on POWER9, 32 on POWER10).
    pub load_bytes: u32,
    /// Load-queue entries.
    pub load_queue: u32,
    /// Store-queue entries.
    pub store_queue: u32,
    /// Load-miss-queue entries (outstanding L1D misses).
    pub load_miss_queue: u32,
    /// Whether stores to consecutive addresses merge in the store queue
    /// (POWER10 store gathering).
    pub store_merge: bool,
    /// Store-queue entries retired to the caches per cycle.
    pub store_drain_per_cycle: u32,

    // ---- memory hierarchy ----
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Local L3 region.
    pub l3: CacheConfig,
    /// Memory access latency (cycles).
    pub mem_latency: u32,
    /// Hardware prefetcher stream count (0 disables).
    pub prefetch_streams: u32,
    /// Treat L2 as infinite (APEX "core model" with infinite L2, Fig. 10).
    pub perfect_l2: bool,
}

impl CoreConfig {
    /// The POWER9-like baseline configuration (SMT4-half resources).
    #[must_use]
    pub fn power9() -> Self {
        CoreConfig {
            name: "POWER9".to_owned(),
            smt: SmtMode::St,
            fetch_policy: FetchPolicy::ICount,
            scheduler: Scheduler::EventDriven,
            fetch_width: 8,
            fetch_buffer: 32,
            decode_width: 6,
            fusion: false,
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 128,
                latency: 1,
            },
            branch: BranchConfig {
                direction_entries: 4096,
                long_history_entries: 1024,
                long_history_bits: 10,
                indirect_entries: 256,
                indirect_path_bits: 5,
                return_stack: 16,
                mispredict_penalty: 13,
            },
            ea_tagged_l1: false,
            erat_entries: 64,
            tlb_entries: 1024,
            walk_latency: 60,
            itable_entries: 256,
            dispatch_width: 6,
            completion_width: 6,
            unified_regfile: false,
            issue_queue_entries: 64,
            issue_lookahead: 48,
            int_slices: 4,
            vsx_units: 2,
            vsx_fp_latency: 7,
            mul_latency: 5,
            div_latency: 24,
            branch_slices: 1,
            mma: None,
            load_ports: 1,
            store_ports: 1,
            load_bytes: 16,
            load_queue: 64,
            store_queue: 40,
            load_miss_queue: 8,
            store_merge: false,
            store_drain_per_cycle: 1,
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 128,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 128,
                latency: 14,
            },
            l3: CacheConfig {
                size_bytes: 5 * 1024 * 1024,
                ways: 16,
                line_bytes: 128,
                latency: 38,
            },
            mem_latency: 220,
            prefetch_streams: 8,
            perfect_l2: false,
        }
    }

    /// The POWER10-like configuration (SMT4-half resources; Fig. 3).
    #[must_use]
    pub fn power10() -> Self {
        let mut c = CoreConfig::power9();
        c.name = "POWER10".to_owned();
        for g in AblationGroup::ALL {
            c.apply(g);
        }
        c
    }

    /// POWER10 with the MMA powered off (Fig. 6's middle bar).
    #[must_use]
    pub fn power10_no_mma() -> Self {
        let mut c = CoreConfig::power10();
        c.name = "POWER10-noMMA".to_owned();
        c.mma = None;
        c
    }

    /// Applies one POWER9→POWER10 design-change group (Fig. 4).
    pub fn apply(&mut self, group: AblationGroup) {
        match group {
            AblationGroup::BranchOperation => {
                // New direction + indirect predictors, doubled selective
                // resources, branch execution merged into the slices.
                self.branch.direction_entries *= 2;
                self.branch.long_history_entries = 16 * 1024;
                self.branch.long_history_bits = 32;
                self.branch.indirect_entries *= 2;
                self.branch.indirect_path_bits = 9;
                self.branch.return_stack *= 2;
                self.branch_slices = 4;
            }
            AblationGroup::LatencyBandwidth => {
                // Reduced latency across the hierarchy; doubled load/store
                // bandwidth (2 loads + 2 stores, 32-byte accesses); 4× MMU.
                self.l1d.latency = 3;
                self.l2.latency = 12;
                self.l3.latency = 32;
                self.mem_latency = 200;
                self.load_ports = 2;
                self.store_ports = 2;
                self.load_bytes = 32;
                self.load_miss_queue = 12;
                self.tlb_entries *= 4;
                self.prefetch_streams = 16;
            }
            AblationGroup::L2Cache => {
                self.l2.size_bytes = 1024 * 1024; // 4× (half of 2 MB)
                self.l2.ways = 8;
                self.l3.size_bytes = 8 * 1024 * 1024;
            }
            AblationGroup::DecodeDoubleVsx => {
                // 33% wider decode via instruction pairing, fusion, doubled
                // VSX engines, larger EA-tagged L1I.
                self.decode_width = 8;
                self.dispatch_width = 8;
                self.completion_width = 8;
                self.fusion = true;
                self.vsx_units = 4;
                self.vsx_fp_latency = 6;
                self.l1i.size_bytes = 48 * 1024;
                self.l1i.ways = 6;
                self.ea_tagged_l1 = true;
                self.mma = Some(MmaConfig::default());
                self.unified_regfile = true;
                // Reservation-station removal: the unified sliced register
                // file supports more in-flight ops per issue structure.
                self.issue_queue_entries = 96;
            }
            AblationGroup::Queues => {
                self.itable_entries = 512;
                self.issue_queue_entries = 128;
                self.issue_lookahead = 96;
                self.load_queue = 128;
                self.store_queue = 80;
                self.store_merge = true;
                self.store_drain_per_cycle = 2;
                self.fetch_buffer = 64;
            }
        }
    }

    /// Per-thread load-queue share for the current SMT mode (the paper's
    /// Fig. 3 lists 128 SMT / 64 ST — ST mode does not get the full
    /// SMT-combined queue).
    #[must_use]
    pub fn load_queue_per_thread(&self) -> u32 {
        match self.smt {
            SmtMode::St => self.load_queue / 2,
            SmtMode::Smt2 => self.load_queue / 2,
            SmtMode::Smt4 => self.load_queue / 4,
        }
    }

    /// Per-thread store-queue share for the current SMT mode.
    #[must_use]
    pub fn store_queue_per_thread(&self) -> u32 {
        match self.smt {
            SmtMode::St => self.store_queue / 2,
            SmtMode::Smt2 => self.store_queue / 2,
            SmtMode::Smt4 => self.store_queue / 4,
        }
    }

    /// Theoretical peak double-precision flops per cycle for VSX code.
    #[must_use]
    pub fn vsx_peak_dp_flops(&self) -> u32 {
        self.vsx_units * 4 // each 128-bit FMA pipe: 2 lanes × (mul+add)
    }

    /// Theoretical peak double-precision flops per cycle for MMA code
    /// (0 when the MMA is absent or gated off).
    #[must_use]
    pub fn mma_peak_dp_flops(&self) -> u32 {
        self.mma.map_or(0, |m| m.grid_lanes * 2)
    }
}

/// The POWER9→POWER10 design-change groups evaluated in Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationGroup {
    /// Improved branch prediction and branch execution.
    BranchOperation,
    /// Reduced cache/TLB latencies and doubled load/store bandwidth.
    LatencyBandwidth,
    /// 4× larger private L2 (and larger local L3 region).
    L2Cache,
    /// Wider decode with pairing + fusion, doubled VSX, EA-tagged L1,
    /// unified register file, MMA.
    DecodeDoubleVsx,
    /// Deeper instruction window and larger queues.
    Queues,
}

impl AblationGroup {
    /// All groups, in the order Fig. 4 presents them.
    pub const ALL: [AblationGroup; 5] = [
        AblationGroup::BranchOperation,
        AblationGroup::LatencyBandwidth,
        AblationGroup::L2Cache,
        AblationGroup::DecodeDoubleVsx,
        AblationGroup::Queues,
    ];

    /// The label used in Fig. 4.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AblationGroup::BranchOperation => "Branch operation",
            AblationGroup::LatencyBandwidth => "Latency+BW",
            AblationGroup::L2Cache => "L2 cache",
            AblationGroup::DecodeDoubleVsx => "Decode+Double VSX",
            AblationGroup::Queues => "Queues",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power10_is_power9_plus_all_groups() {
        let p10 = CoreConfig::power10();
        assert_eq!(p10.decode_width, 8);
        assert!(p10.fusion);
        assert!(p10.ea_tagged_l1);
        assert!(p10.unified_regfile);
        assert!(p10.mma.is_some());
        assert_eq!(p10.vsx_units, 4);
        assert_eq!(p10.itable_entries, 512);
        assert_eq!(p10.l2.size_bytes, 1024 * 1024);
        assert_eq!(p10.load_ports, 2);
        assert_eq!(p10.tlb_entries, 4096);
    }

    #[test]
    fn peak_flops_match_paper() {
        // Paper §II-C: 8 (P9 vector), 16 (P10 vector), 32 (P10 MMA)
        // DP flops/cycle for the SMT4-equivalent half core.
        assert_eq!(CoreConfig::power9().vsx_peak_dp_flops(), 8);
        assert_eq!(CoreConfig::power10().vsx_peak_dp_flops(), 16);
        assert_eq!(CoreConfig::power10().mma_peak_dp_flops(), 32);
        assert_eq!(CoreConfig::power9().mma_peak_dp_flops(), 0);
        assert_eq!(CoreConfig::power10_no_mma().mma_peak_dp_flops(), 0);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 128,
            latency: 4,
        };
        assert_eq!(c.sets(), 32);
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn bad_cache_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 1000,
            ways: 3,
            line_bytes: 128,
            latency: 1,
        };
        let _ = c.sets();
    }

    #[test]
    fn smt_thread_counts() {
        assert_eq!(SmtMode::St.threads(), 1);
        assert_eq!(SmtMode::Smt2.threads(), 2);
        assert_eq!(SmtMode::Smt4.threads(), 4);
    }

    #[test]
    fn queue_partitioning_by_smt() {
        let mut c = CoreConfig::power10();
        c.smt = SmtMode::St;
        assert_eq!(c.load_queue_per_thread(), 64); // Fig. 3: 64 ST
        c.smt = SmtMode::Smt4;
        assert_eq!(c.load_queue_per_thread(), 32);
        c.smt = SmtMode::St;
        assert_eq!(c.store_queue_per_thread(), 40); // Fig. 3: 40 ST
    }

    #[test]
    fn ablation_groups_are_independent() {
        // Applying a single group changes the config; applying all gives
        // exactly POWER10.
        for g in AblationGroup::ALL {
            let mut c = CoreConfig::power9();
            c.apply(g);
            assert_ne!(c, CoreConfig::power9(), "group {g:?} must change config");
        }
        let mut c = CoreConfig::power9();
        for g in AblationGroup::ALL {
            c.apply(g);
        }
        c.name = "POWER10".to_owned();
        assert_eq!(c, CoreConfig::power10());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = AblationGroup::ALL.iter().map(|g| g.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
