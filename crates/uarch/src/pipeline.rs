//! The cycle-level out-of-order SMT pipeline.
//!
//! Trace-driven: each hardware thread replays a [`DynOp`] stream produced
//! by functional execution (or by a statistical workload generator). Every
//! cycle the model runs, in order: completion, execution progress, issue,
//! decode/dispatch (with fusion), and fetch (with branch prediction and
//! I-cache/I-ERAT effects).
//!
//! Mispredicted branches stall fetch for their thread until the branch
//! executes plus the redirect penalty; the wrong-path fetch work the real
//! front end would have performed in that window is estimated and counted
//! in [`Activity::wrong_path_fetched`] (that is the paper's
//! "wasted/flushed instructions" metric).

use crate::branch::BranchPredictor;
use crate::cache::MemHierarchy;
use crate::config::{CoreConfig, Scheduler};
use crate::stats::{Activity, CycleAttribution, SimResult};
use crate::tlb::{Mmu, TranslateSide};
use p10_isa::fusion::{self, FusionKind};
use p10_isa::{DynOp, MmaKind, OpClass, TraceView, ARCH_REG_COUNT, MAX_SRCS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Span-aware observer of a simulation run.
///
/// Live (stepped) cycles arrive one at a time through
/// [`on_cycle`](Self::on_cycle) with the *cumulative* activity counters.
/// Idle stretches the event-driven scheduler fast-forwards over arrive as
/// closed-form *spans* through [`on_span`](Self::on_span) instead of being
/// replayed cycle by cycle — this is what lets the power-extraction stack
/// (RTLSim/APEX analogs) ride the fast path.
///
/// ## The span contract
///
/// `on_span(start, len, delta)` covers cycles `start ..= start + len - 1`
/// and `delta` is exactly the element-wise difference between the
/// cumulative [`Activity`] after and before the span. Spans are
/// **homogeneous**: every counter changes at a constant per-cycle rate, so
/// each field of `delta` is divisible by `len` and
/// [`Activity::span_prefix`] can split a span at any interior cycle
/// exactly (stretches where the MMA power-gate closes mid-way are emitted
/// as two spans, split at the gate-off cycle). Only four counters can be
/// non-zero in a span delta: `cycles`, `mma_powered_cycles`,
/// `dispatch_stall_cycles` and `window_occupancy_acc` — nothing fetches,
/// issues or completes during a fast-forwarded stretch.
///
/// Deliveries are contiguous and in order: the cycles seen via `on_cycle`
/// plus the cycles covered by `on_span` partition `1 ..= cycles` with no
/// gaps or overlaps. Under the polled scheduler (or when
/// [`wants_spans`](Self::wants_spans) is `false`) everything arrives via
/// `on_cycle`.
///
/// In debug builds the scheduler cross-checks every span against a
/// cycle-by-cycle replay of the same stretch (the accumulated per-cycle
/// deltas must equal the span delta exactly).
pub trait SpanObserver {
    /// Called after every live (stepped) cycle with the cumulative
    /// activity counters.
    fn on_cycle(&mut self, cycle: u64, act: &Activity);

    /// Called for a fast-forwarded stretch covering cycles
    /// `start ..= start + len - 1` with the closed-form activity delta
    /// over the stretch (see the trait docs for the homogeneity
    /// guarantees).
    fn on_span(&mut self, start: u64, len: u64, delta: &Activity);

    /// Whether this observer accepts spans. Returning `false` makes the
    /// scheduler replay fast-forwarded stretches one cycle at a time
    /// through [`on_cycle`](Self::on_cycle) — the per-cycle compatibility
    /// mode used by [`Core::run_observed`].
    fn wants_spans(&self) -> bool {
        true
    }
}

/// Adapter presenting a plain per-cycle closure as a [`SpanObserver`]
/// that opts out of spans (fast-forwarded stretches are replayed).
struct PerCycleObserver<F>(F);

impl<F: FnMut(u64, &Activity)> SpanObserver for PerCycleObserver<F> {
    fn on_cycle(&mut self, cycle: u64, act: &Activity) {
        (self.0)(cycle, act);
    }

    fn on_span(&mut self, _start: u64, _len: u64, _delta: &Activity) {
        unreachable!("per-cycle observers never receive spans");
    }

    fn wants_spans(&self) -> bool {
        false
    }
}

/// Observer borrow threaded through the run loop (`None` when running
/// unobserved).
type Observer<'a> = Option<&'a mut dyn SpanObserver>;

const NO_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UopState {
    Waiting,
    Executing { done_at: u64 },
    Done,
}

#[derive(Debug, Clone)]
struct InFlight {
    op: DynOp,
    tid: u8,
    seq: u64,
    fetch_cycle: u64,
    state: UopState,
    /// (slot, seq) of producers; producer retired or Done = ready.
    deps: [(u32, u64); MAX_SRCS],
    mispredicted: bool,
    /// Slot of the fused partner (this op is the pair head).
    pair: u32,
    /// This op is the second of a fused pair.
    is_pair_second: bool,
    /// This store op owns a store-queue entry (false for the second store
    /// of a fused pair that shares its head's entry).
    owns_sq: bool,
    active: bool,
    /// Producers still outstanding (event-driven scheduler only).
    waiting_on: u8,
    /// All producers resolved and the op is still waiting to issue
    /// (event-driven scheduler only; mirrors `deps_ready`).
    ready: bool,
}

#[derive(Debug, Clone)]
struct FetchedOp {
    op: DynOp,
    mispredicted: bool,
    fetch_cycle: u64,
}

#[derive(Debug)]
struct ThreadState {
    ops: TraceView,
    fetch_idx: usize,
    fetch_buffer: VecDeque<FetchedOp>,
    fetch_stall_until: u64,
    /// Sequence number of an in-flight mispredicted branch blocking fetch.
    mispredict_pending: Option<u64>,
    completed: u64,
    rob: VecDeque<u32>,
    lq_used: u32,
    sq_used: u32,
    /// In-window stores (seq, addr, size, executed) for forwarding checks.
    store_window: VecDeque<(u64, u64, u8, bool)>,
    /// Per-arch-reg rename: packed reg -> (slot, seq).
    rename: Vec<(u32, u64)>,
}

impl ThreadState {
    fn new(ops: TraceView) -> Self {
        ThreadState {
            ops,
            fetch_idx: 0,
            fetch_buffer: VecDeque::new(),
            fetch_stall_until: 0,
            mispredict_pending: None,
            completed: 0,
            rob: VecDeque::new(),
            lq_used: 0,
            sq_used: 0,
            store_window: VecDeque::new(),
            rename: vec![(NO_SLOT, 0); usize::from(ARCH_REG_COUNT) + 1],
        }
    }

    fn fetch_done(&self) -> bool {
        self.fetch_idx >= self.ops.len()
    }

    fn fully_done(&self) -> bool {
        self.fetch_done() && self.fetch_buffer.is_empty() && self.rob.is_empty()
    }
}

/// A drained (post-commit) store awaiting its cache write.
#[derive(Debug, Clone, Copy)]
struct PendingStore {
    tid: u8,
    addr: u64,
    size: u8,
    seq: u64,
    /// Store-queue entries this drain slot releases.
    sq_entries: u8,
}

/// The cycle-level core model.
///
/// Construct with a [`CoreConfig`], then call [`Core::run`] with one trace
/// per hardware thread.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    predictor: BranchPredictor,
    mem: MemHierarchy,
    mmu: Mmu,
    act: Activity,
    attr: CycleAttribution,
    threads: Vec<ThreadState>,
    slab: Vec<InFlight>,
    free_slots: Vec<u32>,
    /// Program-order issue candidates as (slot, seq); an entry is live
    /// while the slot still holds that seq and the op is waiting. The seq
    /// tag lets the event-driven scheduler compact the queue lazily
    /// without confusing a recycled slot with the op that vacated it.
    issue_order: VecDeque<(u32, u64)>,
    /// Entries of `issue_order` whose op already issued (lazy compaction).
    issue_order_dead: usize,
    window_used: u32,
    issue_queue_used: u32,
    cycle: u64,
    seq: u64,
    div_busy_until: u64,
    /// MMA power-gate state: the cycle the unit is (or will be) ready, or
    /// `None` while gated off.
    mma_ready_at: Option<u64>,
    /// Last cycle an MMA op used the grid (for idle gating).
    mma_last_use: u64,
    /// Outstanding L1D miss completion times (load-miss queue).
    lmq: Vec<u64>,
    drain_queue: VecDeque<PendingStore>,
    rr_offset: usize,
    /// Completion calendar: (cycle an executing op transitions to Done,
    /// slot), min-first. Event-driven scheduler only.
    calendar: BinaryHeap<Reverse<(u64, u32)>>,
    /// Per-producer-slot wakeup lists: (consumer slot, consumer seq)
    /// registered at dispatch, fired on the producer's Done transition.
    /// Event-driven scheduler only.
    wakeup: Vec<Vec<(u32, u64)>>,
    /// Number of waiting ops whose producers are all resolved.
    /// Event-driven scheduler only.
    ready_count: u32,
    /// Scratch: threads with a mispredicted branch resolving this cycle.
    scratch_resolved: Vec<(usize, u64)>,
    /// Scratch: issue candidates for the current cycle.
    scratch_slots: Vec<u32>,
}

impl Core {
    /// Creates a core in the given configuration.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> Self {
        Core {
            predictor: BranchPredictor::new(&cfg.branch),
            mem: MemHierarchy::new(&cfg),
            mmu: Mmu::new(&cfg),
            act: Activity::default(),
            attr: CycleAttribution::default(),
            threads: Vec::new(),
            slab: Vec::new(),
            free_slots: Vec::new(),
            issue_order: VecDeque::new(),
            issue_order_dead: 0,
            window_used: 0,
            issue_queue_used: 0,
            cycle: 0,
            seq: 0,
            div_busy_until: 0,
            mma_ready_at: None,
            mma_last_use: 0,
            lmq: Vec::new(),
            drain_queue: VecDeque::new(),
            rr_offset: 0,
            calendar: BinaryHeap::new(),
            wakeup: Vec::new(),
            ready_count: 0,
            scratch_resolved: Vec::new(),
            scratch_slots: Vec::new(),
            cfg,
        }
    }

    /// Creates a core whose caches, TLBs, and branch predictor start
    /// from `state` (see [`crate::warm::FunctionalWarmer`]) instead of
    /// cold. The pipeline itself (window, queues, calendar) starts empty
    /// either way.
    #[must_use]
    pub fn with_state(cfg: CoreConfig, state: crate::warm::WarmState) -> Self {
        let mut core = Core::new(cfg);
        core.predictor = state.predictor;
        core.mem = state.mem;
        core.mmu = state.mmu;
        core
    }

    fn event_driven(&self) -> bool {
        self.cfg.scheduler == Scheduler::EventDriven
    }

    /// The configuration this core models.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs one trace per hardware thread to completion (or `max_cycles`)
    /// and returns the results.
    ///
    /// Accepts owned [`p10_isa::Trace`]s (moved into views, no copy) or
    /// [`TraceView`]s (zero-copy windows into arena-shared op buffers).
    ///
    /// # Panics
    ///
    /// Panics if more traces are supplied than the configured SMT mode
    /// supports, or if no traces are supplied.
    pub fn run<T: Into<TraceView>>(self, traces: Vec<T>, max_cycles: u64) -> SimResult {
        self.run_inner(
            traces.into_iter().map(Into::into).collect(),
            max_cycles,
            None,
        )
    }

    /// Like [`Core::run`], but invokes `observer(cycle, &activity)` after
    /// every simulated cycle — the per-cycle compatibility adapter over
    /// [`Core::run_spanned`].
    ///
    /// With a per-cycle observer attached, fast-forwarded idle stretches
    /// are replayed one cycle at a time (with the same per-cycle
    /// accounting) so the observer sees every cycle's cumulative activity.
    /// Span-aware consumers should implement [`SpanObserver`] and use
    /// [`Core::run_spanned`] instead, which keeps the fast path fast.
    ///
    /// # Panics
    ///
    /// Panics if more traces are supplied than the configured SMT mode
    /// supports, or if no traces are supplied.
    pub fn run_observed<T: Into<TraceView>>(
        self,
        traces: Vec<T>,
        max_cycles: u64,
        observer: impl FnMut(u64, &Activity),
    ) -> SimResult {
        let mut adapter = PerCycleObserver(observer);
        self.run_inner(
            traces.into_iter().map(Into::into).collect(),
            max_cycles,
            Some(&mut adapter),
        )
    }

    /// Like [`Core::run`], but delivers the simulation to a span-aware
    /// observer: live cycles via [`SpanObserver::on_cycle`] and
    /// fast-forwarded idle stretches via [`SpanObserver::on_span`] with
    /// their closed-form activity delta — so observation no longer forces
    /// per-cycle replay of the event-driven scheduler's skipped cycles.
    ///
    /// # Panics
    ///
    /// Panics if more traces are supplied than the configured SMT mode
    /// supports, or if no traces are supplied.
    pub fn run_spanned<T: Into<TraceView>>(
        self,
        traces: Vec<T>,
        max_cycles: u64,
        observer: &mut dyn SpanObserver,
    ) -> SimResult {
        self.run_inner(
            traces.into_iter().map(Into::into).collect(),
            max_cycles,
            Some(observer),
        )
    }

    fn run_inner(
        mut self,
        traces: Vec<TraceView>,
        max_cycles: u64,
        mut observer: Observer<'_>,
    ) -> SimResult {
        assert!(!traces.is_empty(), "at least one thread trace required");
        assert!(
            traces.len() <= self.cfg.smt.threads(),
            "{} traces exceed SMT mode capacity {}",
            traces.len(),
            self.cfg.smt.threads()
        );
        self.threads = traces.into_iter().map(ThreadState::new).collect();

        let event_driven = self.event_driven();
        while self.cycle < max_cycles && !self.threads.iter().all(ThreadState::fully_done) {
            self.step();
            self.act.cycles = self.cycle;
            if let Some(obs) = observer.as_deref_mut() {
                obs.on_cycle(self.cycle, &self.act);
            }
            if event_driven && self.cycle < max_cycles {
                self.fast_forward(max_cycles, &mut observer);
            }
        }
        self.act.cycles = self.cycle;
        debug_assert_eq!(
            self.attr.total(),
            self.act.cycles,
            "cycle attribution must partition the cycle count"
        );

        SimResult {
            config_name: self.cfg.name.clone(),
            threads: self.threads.len(),
            per_thread_completed: self.threads.iter().map(|t| t.completed).collect(),
            activity: self.act,
            attribution: self.attr,
        }
    }

    fn step(&mut self) {
        self.cycle += 1;
        self.mma_gate_tick();
        self.lmq.retain(|&t| t > self.cycle);
        self.drain_stores();
        self.complete();
        match self.cfg.scheduler {
            Scheduler::Polled => self.advance_execution_polled(),
            Scheduler::EventDriven => self.advance_execution_event(),
        }
        let wake_pre = self.act.mma_wake_stall_cycles;
        let issue = self.issue();
        let mma_wake_fired = self.act.mma_wake_stall_cycles > wake_pre;
        let dispatched_pre = self.act.dispatched;
        let dispatch_stall_pre = self.act.dispatch_stall_cycles;
        self.decode_dispatch();
        let dispatch_blocked = self.act.dispatch_stall_cycles > dispatch_stall_pre
            && self.act.dispatched == dispatched_pre;
        let fetched_pre = self.act.fetched;
        self.fetch();
        let fetch_progress = self.act.fetched > fetched_pre;
        self.act.window_occupancy_acc += u64::from(self.window_used);
        self.rr_offset = self.rr_offset.wrapping_add(1);

        // Cycle attribution: exactly one bucket per cycle, first match
        // wins (see `CycleAttribution` for the bucket definitions).
        if issue.issued_any {
            self.attr.active += 1;
        } else if mma_wake_fired {
            self.attr.mma_gated += 1;
        } else if !self.lmq.is_empty() {
            // Before issue_limited: a zero-issue cycle with a demand miss
            // outstanding is memory-bound even if some op was nominally
            // ready (e.g. a load blocked only by a full LMQ).
            self.attr.memory_bound += 1;
        } else if issue.saw_ready {
            self.attr.issue_limited += 1;
        } else if dispatch_blocked {
            self.attr.dispatch_stalled += 1;
        } else if !fetch_progress && self.threads.iter().any(|t| !t.fetch_done()) {
            self.attr.fetch_stalled += 1;
        } else {
            self.attr.idle += 1;
        }
    }

    /// MMA power-gate bookkeeping: count powered cycles and gate the unit
    /// off after the firmware-selected idle window (§IV-A). Runs at the
    /// top of every cycle, including fast-forwarded idle ones.
    fn mma_gate_tick(&mut self) {
        if let (Some(ready), Some(mma)) = (self.mma_ready_at, self.cfg.mma) {
            self.act.mma_powered_cycles += 1;
            let idle_from = self.mma_last_use.max(ready);
            if self.cycle > idle_from + u64::from(mma.idle_gate_cycles) {
                self.mma_ready_at = None;
            }
        }
    }

    /// Idle-cycle fast-forward (event-driven scheduler). After a stepped
    /// cycle, if nothing can drain, complete, execute, issue, dispatch or
    /// fetch before some future cycle T, jump straight to T-1 and account
    /// the skipped cycles in closed form — the exact state changes
    /// cycle-by-cycle stepping would have made. With an observer attached
    /// the skipped cycles are replayed individually instead so it sees
    /// every cycle's cumulative activity.
    fn fast_forward(&mut self, max_cycles: u64, observer: &mut Observer<'_>) {
        // Anything actionable next cycle means no skip. A finished run
        // must not skip either: the outer loop stops at the last worked
        // cycle, exactly like the polled scheduler.
        if !self.drain_queue.is_empty() {
            return;
        }
        // Ready ops block the skip only if the select network can see
        // them: an op past the lookahead reach cannot issue, and `issue`
        // touches nothing (no MMA wake, no `active_cycles`) before the
        // readiness test, so idling over it is exact. The candidate
        // window is static across the skipped stretch — nothing
        // dispatches, issues, retires or wakes before the horizon.
        if self.ready_count != 0 && self.ready_within_reach() {
            return;
        }
        if self.threads.iter().all(ThreadState::fully_done) {
            return;
        }
        for t in &self.threads {
            if let Some(&slot) = t.rob.front() {
                if self.slab[slot as usize].state == UopState::Done {
                    return; // retirement makes progress
                }
            }
        }
        // Idle until the earliest future event: a completion on the
        // calendar or a fetch stall expiring.
        let mut horizon = max_cycles.saturating_add(1);
        if let Some(&Reverse((at, _))) = self.calendar.peek() {
            horizon = horizon.min(at);
        }
        let mut dispatch_blocked_threads = 0u64;
        for tid in 0..self.threads.len() {
            if !self.threads[tid].fetch_buffer.is_empty() {
                if self.plan_dispatch(tid).is_some() {
                    return; // dispatch makes progress next cycle
                }
                dispatch_blocked_threads += 1;
            }
            let t = &self.threads[tid];
            if !t.fetch_done()
                && t.mispredict_pending.is_none()
                && t.fetch_buffer.len() < self.cfg.fetch_buffer as usize
            {
                if t.fetch_stall_until > self.cycle + 1 {
                    horizon = horizon.min(t.fetch_stall_until);
                } else {
                    return; // fetch makes progress next cycle
                }
            }
        }
        let target = (horizon - 1).min(max_cycles);
        if target <= self.cycle {
            return;
        }

        let skipped = target - self.cycle;
        // The whole stretch lands in one attribution bucket: nothing
        // issues or is ready (skip precondition), the LMQ is static (its
        // entries are calendar completion times, all >= the horizon), and
        // dispatch/fetch blockedness cannot change before the horizon —
        // so the per-cycle classifier in `step` would pick the same
        // bucket every cycle. Evaluating it once keeps the closed form
        // identical to polled stepping.
        let stall = if !self.lmq.is_empty() {
            StallKind::MemoryBound
        } else if dispatch_blocked_threads > 0 {
            StallKind::DispatchStalled
        } else if self.threads.iter().any(|t| !t.fetch_done()) {
            StallKind::FetchStalled
        } else {
            StallKind::Idle
        };
        if let Some(obs) = observer.as_deref_mut() {
            if !obs.wants_spans() {
                // Per-cycle compatibility mode: replay the stretch one
                // cycle at a time so the observer misses nothing.
                for _ in 0..skipped {
                    self.idle_tick(dispatch_blocked_threads, stall);
                    self.act.cycles = self.cycle;
                    obs.on_cycle(self.cycle, &self.act);
                }
                return;
            }
        }
        // Closed-form equivalent of `skipped` idle_tick calls.
        let start = self.cycle + 1;
        #[cfg(debug_assertions)]
        let saved_mma_ready = self.mma_ready_at;
        // Cycles of the stretch during which the MMA unit stays powered
        // (the prefix up to and including the gate-off cycle). This is the
        // only rate change inside a stretch, so it is also where a span
        // must be split to stay homogeneous.
        let mut powered = 0u64;
        if let (Some(ready), Some(mma)) = (self.mma_ready_at, self.cfg.mma) {
            let idle_from = self.mma_last_use.max(ready);
            // mma_gate_tick counts the powered cycle before checking
            // the gate, so the gate-off cycle itself is still powered.
            let gate_off = idle_from + u64::from(mma.idle_gate_cycles) + 1;
            debug_assert!(gate_off > self.cycle);
            powered = skipped.min(gate_off - self.cycle);
            self.act.mma_powered_cycles += powered;
            if target >= gate_off {
                self.mma_ready_at = None;
            }
        }
        self.act.dispatch_stall_cycles += dispatch_blocked_threads * skipped;
        self.act.window_occupancy_acc += u64::from(self.window_used) * skipped;
        *self.attr_bucket(stall) += skipped;
        self.rr_offset = self.rr_offset.wrapping_add(skipped as usize);
        self.cycle = target;
        if observer.is_some() || cfg!(debug_assertions) {
            let window_used = u64::from(self.window_used);
            let span_delta = |len: u64, mma_powered: bool| Activity {
                cycles: len,
                mma_powered_cycles: if mma_powered { len } else { 0 },
                dispatch_stall_cycles: dispatch_blocked_threads * len,
                window_occupancy_acc: window_used * len,
                ..Activity::default()
            };
            // ≤ 2 homogeneous sub-spans, split at the MMA gate-off cycle.
            let spans = [
                (start, powered, span_delta(powered, true)),
                (
                    start + powered,
                    skipped - powered,
                    span_delta(skipped - powered, false),
                ),
            ];
            #[cfg(debug_assertions)]
            self.cross_check_spans(saved_mma_ready, dispatch_blocked_threads, target, &spans);
            if let Some(obs) = observer.as_deref_mut() {
                for (s, len, delta) in &spans {
                    if *len > 0 {
                        obs.on_span(*s, *len, delta);
                    }
                }
            }
        }
        // `lmq` entries expiring inside the skipped stretch need no
        // per-cycle action: the queue is only read by load issue, and the
        // next real step's retain drops everything `<= cycle` first —
        // identical to having stepped the retain each cycle.
    }

    /// One fast-forwarded idle cycle, stepped explicitly (observer mode):
    /// exactly the state a full `step()` changes on a cycle where nothing
    /// drains, completes, executes, issues, dispatches or fetches.
    fn idle_tick(&mut self, dispatch_blocked_threads: u64, stall: StallKind) {
        self.cycle += 1;
        self.mma_gate_tick();
        self.act.dispatch_stall_cycles += dispatch_blocked_threads;
        self.act.window_occupancy_acc += u64::from(self.window_used);
        *self.attr_bucket(stall) += 1;
        self.rr_offset = self.rr_offset.wrapping_add(1);
    }

    /// Debug-build cross-check of the span closed form: replays the
    /// fast-forwarded stretch one cycle at a time (the exact per-cycle
    /// accounting `idle_tick`/`mma_gate_tick` would have performed) and
    /// asserts that each emitted span delta equals the sum of its
    /// replayed per-cycle deltas — the invariant every [`SpanObserver`]
    /// relies on.
    #[cfg(debug_assertions)]
    fn cross_check_spans(
        &self,
        saved_mma_ready: Option<u64>,
        dispatch_blocked_threads: u64,
        target: u64,
        spans: &[(u64, u64, Activity)],
    ) {
        let window_used = u64::from(self.window_used);
        let mut mma_ready = saved_mma_ready;
        let mut covered = 0u64;
        for (s, len, delta) in spans {
            let mut acc = Activity::default();
            for c in *s..s + len {
                // One replayed idle cycle: cycle count, MMA gate tick,
                // dispatch-stall and window-occupancy accounting.
                acc.cycles += 1;
                if let (Some(ready), Some(mma)) = (mma_ready, self.cfg.mma) {
                    acc.mma_powered_cycles += 1;
                    let idle_from = self.mma_last_use.max(ready);
                    if c > idle_from + u64::from(mma.idle_gate_cycles) {
                        mma_ready = None;
                    }
                }
                acc.dispatch_stall_cycles += dispatch_blocked_threads;
                acc.window_occupancy_acc += window_used;
            }
            assert_eq!(
                &acc,
                delta,
                "span [{s}, {}] delta must equal its cycle-by-cycle replay",
                s + len - 1
            );
            covered += len;
            // Homogeneity: every counter is divisible by the span length,
            // so consumers can split the span at any interior cycle.
            if *len > 0 {
                for (name, v) in delta.as_pairs() {
                    assert_eq!(v % len, 0, "{name} must be homogeneous over the span");
                }
            }
        }
        let first = spans.iter().map(|(s, _, _)| *s).min().unwrap_or(target);
        assert_eq!(covered, target - first + 1, "spans must tile the stretch");
        assert_eq!(
            mma_ready, self.mma_ready_at,
            "replayed MMA gate state must match the closed form"
        );
    }

    fn attr_bucket(&mut self, stall: StallKind) -> &mut u64 {
        match stall {
            StallKind::MemoryBound => &mut self.attr.memory_bound,
            StallKind::DispatchStalled => &mut self.attr.dispatch_stalled,
            StallKind::FetchStalled => &mut self.attr.fetch_stalled,
            StallKind::Idle => &mut self.attr.idle,
        }
    }

    // ---- completion ----

    fn complete(&mut self) {
        let mut budget = self.cfg.completion_width;
        let n = self.threads.len();
        let mut progressed = true;
        while budget > 0 && progressed {
            progressed = false;
            for k in 0..n {
                let tid = (k + self.rr_offset) % n;
                if budget == 0 {
                    break;
                }
                let Some(&slot) = self.threads[tid].rob.front() else {
                    continue;
                };
                if self.slab[slot as usize].state != UopState::Done {
                    continue;
                }
                self.retire(tid, slot);
                budget -= 1;
                progressed = true;
            }
        }
    }

    fn retire(&mut self, tid: usize, slot: u32) {
        let e = &mut self.slab[slot as usize];
        debug_assert!(e.active);
        e.active = false;
        let op = e.op;
        let seq = e.seq;
        let owns_sq = u8::from(e.owns_sq);
        debug_assert!(
            !self.event_driven() || self.wakeup[slot as usize].is_empty(),
            "retiring producer with unfired wakeups"
        );
        self.threads[tid].rob.pop_front();
        self.free_slots.push(slot);
        self.window_used -= 1;
        self.threads[tid].completed += 1;
        self.act.completed += 1;
        self.act.completion_slots += 1;
        if op.dest().is_some() {
            self.act.regfile_writes += 1;
        }

        match op.class {
            OpClass::Load => {
                self.threads[tid].lq_used -= 1;
            }
            OpClass::Store => {
                let m = op.mem.expect("store has mem");
                // Store gathering: merge with the tail of the drain queue
                // when adjacent (POWER10), retiring up to two SQ entries
                // per cycle worth of work in one drain slot.
                let merged = self.cfg.store_merge
                    && self.drain_queue.back().is_some_and(|p| {
                        p.tid == tid as u8
                            && p.addr + u64::from(p.size) == m.addr
                            && u32::from(p.size) + u32::from(m.size) <= 64
                    });
                if merged {
                    let back = self.drain_queue.back_mut().expect("checked above");
                    back.size += m.size;
                    back.sq_entries += owns_sq;
                    self.act.store_merges += 1;
                } else {
                    self.drain_queue.push_back(PendingStore {
                        tid: tid as u8,
                        addr: m.addr,
                        size: m.size,
                        seq,
                        sq_entries: owns_sq,
                    });
                }
            }
            _ => {}
        }
    }

    fn drain_stores(&mut self) {
        for _ in 0..self.cfg.store_drain_per_cycle {
            let Some(p) = self.drain_queue.pop_front() else {
                break;
            };
            let tid = p.tid as usize;
            // EA-tagged L1: translate only on L1 miss; RA-tagged: the
            // translation already happened at issue.
            let (_lat, lvl) = self.mem.access_data(p.addr, &mut self.act);
            if self.cfg.ea_tagged_l1 && lvl != crate::cache::HitLevel::L1 {
                self.mmu
                    .translate(p.addr, TranslateSide::Data, &mut self.act);
            }
            self.threads[tid].sq_used = self.threads[tid]
                .sq_used
                .saturating_sub(u32::from(p.sq_entries));
            // Remove from the forwarding window. Stores retire — and
            // therefore drain — in per-thread seq order, so the window's
            // front holds everything up to `p.seq`: pop from the front
            // instead of scanning. A merged drain slot carries the seq of
            // its *oldest* store; its younger merged partners (which the
            // scan version leaked forever) are swept out by the thread's
            // next drain.
            let sw = &mut self.threads[tid].store_window;
            while let Some(&(s, ..)) = sw.front() {
                if s > p.seq {
                    break;
                }
                sw.pop_front();
            }
        }
    }

    // ---- execution progress ----

    /// Reference (polled) execution advance: scan the whole slab for ops
    /// whose latency elapsed.
    fn advance_execution_polled(&mut self) {
        let cycle = self.cycle;
        self.scratch_resolved.clear();
        for e in &mut self.slab {
            if !e.active {
                continue;
            }
            if let UopState::Executing { done_at } = e.state {
                if done_at <= cycle {
                    e.state = UopState::Done;
                    if e.mispredicted {
                        self.scratch_resolved
                            .push((usize::from(e.tid), e.fetch_cycle));
                    }
                }
            }
        }
        self.resolve_mispredicts();
    }

    /// Event-driven execution advance: pop only the ops whose completion
    /// fires this cycle off the calendar and wake their consumers.
    fn advance_execution_event(&mut self) {
        let cycle = self.cycle;
        self.scratch_resolved.clear();
        while let Some(&Reverse((at, slot))) = self.calendar.peek() {
            if at > cycle {
                break;
            }
            self.calendar.pop();
            // Calendar entries are never stale: an executing op is pushed
            // exactly once, and its slot can only be recycled after retire,
            // which requires the Done transition made here first.
            let e = &mut self.slab[slot as usize];
            debug_assert!(e.active);
            let UopState::Executing { done_at } = e.state else {
                unreachable!("calendar entry for non-executing op")
            };
            debug_assert!(done_at <= cycle);
            e.state = UopState::Done;
            if e.mispredicted {
                self.scratch_resolved
                    .push((usize::from(e.tid), e.fetch_cycle));
            }
            self.fire_wakeups(slot);
        }
        self.resolve_mispredicts();
    }

    /// A producer became Done: notify the consumers registered against it.
    fn fire_wakeups(&mut self, producer: u32) {
        let mut list = std::mem::take(&mut self.wakeup[producer as usize]);
        for (cslot, cseq) in list.drain(..) {
            let c = &mut self.slab[cslot as usize];
            // A consumer may have left Waiting already (fused-pair partner
            // issued with its head); its remaining registrations are moot.
            if c.active && c.seq == cseq && c.state == UopState::Waiting {
                c.waiting_on -= 1;
                if c.waiting_on == 0 {
                    debug_assert!(!c.ready);
                    c.ready = true;
                    self.ready_count += 1;
                }
            }
        }
        // Hand the drained allocation back to the slot for reuse.
        self.wakeup[producer as usize] = list;
    }

    /// Applies the fetch-redirect effects of mispredicted branches that
    /// finished executing this cycle (collected in `scratch_resolved`).
    fn resolve_mispredicts(&mut self) {
        for i in 0..self.scratch_resolved.len() {
            let (tid, fetch_cycle) = self.scratch_resolved[i];
            let t = &mut self.threads[tid];
            // Fetch stops at the first mispredicted branch, so at most one
            // is in flight per thread; resolving it unblocks fetch.
            t.mispredict_pending = None;
            let penalty = u64::from(self.predictor.mispredict_penalty());
            t.fetch_stall_until = t.fetch_stall_until.max(self.cycle + penalty);
            self.act.branch_mispredicts += 1;
            // Estimate of wrong-path work the real front end performed
            // between fetching the branch and the redirect completing.
            // The fetch-side run-ahead is bounded: once the front end backs
            // up (e.g. behind a long cache miss) wrong-path fetch stops, so
            // the window is capped at a fixed horizon.
            let run_ahead = (self.cycle - fetch_cycle).min(16);
            let window = run_ahead + penalty;
            self.act.wrong_path_fetched += window * u64::from(self.cfg.fetch_width) / 2;
            self.act.flushed += window * u64::from(self.cfg.fetch_width) / 2;
        }
        self.scratch_resolved.clear();
    }

    // ---- issue ----

    fn dep_ready(&self, dep: (u32, u64)) -> bool {
        let (slot, seq) = dep;
        if slot == NO_SLOT {
            return true;
        }
        let e = &self.slab[slot as usize];
        !e.active || e.seq != seq || e.state == UopState::Done
    }

    fn deps_ready(&self, slot: u32, ignore: Option<u32>) -> bool {
        let e = &self.slab[slot as usize];
        e.deps
            .iter()
            .all(|&d| d.0 == NO_SLOT || Some(d.0) == ignore || self.dep_ready(d))
    }

    #[allow(clippy::too_many_lines)]
    fn issue(&mut self) -> IssueSummary {
        let mut int_left = self.cfg.int_slices;
        let mut branch_left = self.cfg.branch_slices;
        let mut vsx_left = self.cfg.vsx_units;
        let mut load_left = self.cfg.load_ports;
        let mut store_left = self.cfg.store_ports;
        let mut mma_lanes_left = self.cfg.mma.map_or(0, |m| m.grid_lanes);
        let mut mma_move_left = 1u32;
        let mut issued_any = false;
        let mut saw_ready = false;
        let mut mma_active = false;

        let event_driven = self.event_driven();
        if event_driven {
            self.compact_issue_order();
            if self.ready_count == 0 {
                // No waiting op has its producers resolved, so nothing can
                // issue and none of the side effects below (MMA demand
                // wake, wake-stall accounting) can trigger either. The
                // polled scheduler's candidate scan would find no ready op
                // either, so `saw_ready: false` is scheduler-identical.
                return IssueSummary {
                    issued_any: false,
                    saw_ready: false,
                };
            }
        } else {
            // Reference behavior: compact the queue every cycle.
            let slab = &self.slab;
            self.issue_order.retain(|&(s, q)| {
                let e = &slab[s as usize];
                e.active && e.seq == q && e.state == UopState::Waiting
            });
            self.issue_order_dead = 0;
        }

        // The scheduler considers the oldest `reach` still-waiting ops —
        // ready or not — mirroring a real select network's span.
        let reach = self.cfg.issue_lookahead.max(1) as usize;
        self.scratch_slots.clear();
        for &(s, q) in &self.issue_order {
            if self.scratch_slots.len() >= reach {
                break;
            }
            let e = &self.slab[s as usize];
            if e.active && e.seq == q && e.state == UopState::Waiting {
                self.scratch_slots.push(s);
            }
        }
        for i in 0..self.scratch_slots.len() {
            let slot = self.scratch_slots[i];
            let (class, tid) = {
                let e = &self.slab[slot as usize];
                if !e.active || e.state != UopState::Waiting {
                    continue;
                }
                (e.op.class, usize::from(e.tid))
            };
            let ready = if event_driven {
                let r = self.slab[slot as usize].ready;
                debug_assert_eq!(r, self.deps_ready(slot, None));
                r
            } else {
                self.deps_ready(slot, None)
            };
            if !ready {
                continue;
            }
            saw_ready = true;

            let done_at = match class {
                OpClass::Hint => {
                    // The architected MMA wake-up hint powers the unit on
                    // ahead of use, hiding the wake latency (§IV-A).
                    if self.cfg.mma.is_some() {
                        self.power_mma_on();
                    }
                    Some(self.cycle)
                }
                OpClass::Nop => Some(self.cycle), // complete immediately
                OpClass::IntAlu | OpClass::MoveSpr => {
                    if int_left > 0 {
                        int_left -= 1;
                        Some(self.cycle + 1)
                    } else {
                        None
                    }
                }
                OpClass::IntMul => {
                    if int_left > 0 {
                        int_left -= 1;
                        Some(self.cycle + u64::from(self.cfg.mul_latency))
                    } else {
                        None
                    }
                }
                OpClass::IntDiv => {
                    if int_left > 0 && self.div_busy_until <= self.cycle {
                        int_left -= 1;
                        self.div_busy_until = self.cycle + u64::from(self.cfg.div_latency);
                        Some(self.cycle + u64::from(self.cfg.div_latency))
                    } else {
                        None
                    }
                }
                OpClass::Branch => {
                    if branch_left > 0 {
                        branch_left -= 1;
                        Some(self.cycle + 1)
                    } else {
                        None
                    }
                }
                OpClass::VsxSimple => {
                    if vsx_left > 0 {
                        vsx_left -= 1;
                        Some(self.cycle + 2)
                    } else {
                        None
                    }
                }
                OpClass::VsxFp => {
                    if vsx_left > 0 {
                        vsx_left -= 1;
                        Some(self.cycle + u64::from(self.cfg.vsx_fp_latency))
                    } else {
                        None
                    }
                }
                OpClass::Mma(kind) => {
                    let lanes = match kind {
                        MmaKind::F64 => 8,
                        MmaKind::F32 | MmaKind::Bf16 | MmaKind::I8 => 16,
                    };
                    let mma = self.cfg.mma.expect("mma op requires mma unit");
                    if !self.mma_powered_on() {
                        // Demand wake: the op waits out the power-on.
                        self.power_mma_on();
                        self.act.mma_wake_stall_cycles += 1;
                        None
                    } else if mma_lanes_left >= lanes {
                        mma_lanes_left -= lanes;
                        mma_active = true;
                        self.mma_last_use = self.cycle;
                        // Back-to-back accumulator chaining is short; the
                        // full result latency applies to non-acc consumers
                        // (xxmfacc), modeled via the MmaMove latency below.
                        Some(self.cycle + u64::from(mma.acc_chain_latency))
                    } else {
                        None
                    }
                }
                OpClass::MmaMove => {
                    if self.cfg.mma.is_some() && !self.mma_powered_on() {
                        self.power_mma_on();
                        self.act.mma_wake_stall_cycles += 1;
                        None
                    } else if mma_move_left > 0 {
                        mma_move_left -= 1;
                        let lat = self.cfg.mma.map_or(2, |m| u64::from(m.result_latency));
                        self.mma_last_use = self.cycle;
                        Some(self.cycle + lat)
                    } else {
                        None
                    }
                }
                OpClass::Load => {
                    if load_left > 0 && (self.lmq.len() as u32) < self.cfg.load_miss_queue {
                        load_left -= 1;
                        Some(self.issue_load(slot, tid))
                    } else {
                        None
                    }
                }
                OpClass::Store => {
                    if store_left > 0 {
                        store_left -= 1;
                        Some(self.issue_store(slot, tid))
                    } else {
                        None
                    }
                }
            };

            let Some(done_at) = done_at else { continue };
            issued_any = true;
            self.start_execution(slot, done_at);

            // Fused pair: if the partner's other deps are ready, execute it
            // together with the head (zero-latency dependent execution).
            let pair = self.slab[slot as usize].pair;
            if pair != NO_SLOT {
                let p = &self.slab[pair as usize];
                if p.active && p.state == UopState::Waiting && self.deps_ready(pair, Some(slot)) {
                    let pair_class = self.slab[pair as usize].op.class;
                    let pair_done = match pair_class {
                        // A fused dependent op finishes with its head.
                        OpClass::Store => {
                            // Second of a fused store pair: shares the
                            // head's address-generation; mark executed.
                            let seq = self.slab[pair as usize].seq;
                            if let Some(s) = self.threads[tid]
                                .store_window
                                .iter_mut()
                                .find(|s| s.0 == seq)
                            {
                                s.3 = true;
                            }
                            self.act.stores += 1;
                            done_at
                        }
                        OpClass::Branch => {
                            self.act.branch_ops += 1;
                            done_at
                        }
                        _ => {
                            self.act.alu_ops += 1;
                            done_at
                        }
                    };
                    self.start_execution_quiet(pair, pair_done);
                    self.act.issued += 1;
                }
            }
        }

        if issued_any {
            self.act.active_cycles += 1;
        }
        if mma_active {
            self.act.mma_active_cycles += 1;
        }
        IssueSummary {
            issued_any,
            saw_ready,
        }
    }

    /// Lazy issue-order compaction (event-driven scheduler): drop dead
    /// entries from the front, and rebuild the queue once more than half
    /// of it is dead so candidate enumeration stays O(lookahead).
    fn compact_issue_order(&mut self) {
        let slab = &self.slab;
        let live = |&(s, q): &(u32, u64)| -> bool {
            let e = &slab[s as usize];
            e.active && e.seq == q && e.state == UopState::Waiting
        };
        while let Some(front) = self.issue_order.front() {
            if live(front) {
                break;
            }
            self.issue_order.pop_front();
            self.issue_order_dead = self.issue_order_dead.saturating_sub(1);
        }
        if self.issue_order_dead * 2 > self.issue_order.len() {
            self.issue_order.retain(live);
            self.issue_order_dead = 0;
        }
    }

    /// Whether any ready op sits inside the issue-lookahead window, i.e.
    /// among the oldest `reach` still-waiting entries of `issue_order` —
    /// the same candidate set `issue` enumerates. Ready ops beyond it
    /// (say, a resolved branch queued behind a long miss chain) cannot
    /// issue and do not make the cycle actionable.
    fn ready_within_reach(&self) -> bool {
        let reach = self.cfg.issue_lookahead.max(1) as usize;
        let mut seen = 0usize;
        for &(s, q) in &self.issue_order {
            if seen >= reach {
                break;
            }
            let e = &self.slab[s as usize];
            if e.active && e.seq == q && e.state == UopState::Waiting {
                if e.ready {
                    return true;
                }
                seen += 1;
            }
        }
        false
    }

    /// Whether the MMA unit is powered and ready this cycle.
    fn mma_powered_on(&self) -> bool {
        self.mma_ready_at.is_some_and(|r| r <= self.cycle)
    }

    /// Opens the MMA power gate (idempotent while powering on).
    fn power_mma_on(&mut self) {
        if self.mma_ready_at.is_none() {
            let wake = self.cfg.mma.map_or(0, |m| u64::from(m.wake_latency));
            self.mma_ready_at = Some(self.cycle + wake);
        }
    }

    /// State bookkeeping shared by both execution-start paths: the
    /// Waiting→Executing transition plus the event-driven scheduler's
    /// calendar insertion and ready-count maintenance.
    fn begin_execution(&mut self, slot: u32, done_at: u64) {
        let e = &mut self.slab[slot as usize];
        debug_assert_eq!(e.state, UopState::Waiting);
        e.state = UopState::Executing { done_at };
        if e.ready {
            e.ready = false;
            self.ready_count -= 1;
        }
        // Issue-queue entry is freed once the op issues (reservation
        // stations and issue queues alike hold ops only until issue).
        if !e.is_pair_second {
            self.issue_queue_used = self.issue_queue_used.saturating_sub(1);
        }
        self.issue_order_dead += 1;
        if self.event_driven() {
            // Ops whose latency already elapsed (Nop/Hint complete "this"
            // cycle) are still observed Done only on the next advance.
            self.calendar
                .push(Reverse((done_at.max(self.cycle + 1), slot)));
        }
    }

    fn start_execution(&mut self, slot: u32, done_at: u64) {
        self.begin_execution(slot, done_at);
        let e = &self.slab[slot as usize];
        let srcs = e.op.sources().count() as u64;
        let class = e.op.class;
        let flops = u64::from(e.op.flops);
        self.act.issued += 1;
        self.act.regfile_reads += srcs;
        match class {
            OpClass::IntAlu | OpClass::MoveSpr => self.act.alu_ops += 1,
            OpClass::IntMul => self.act.mul_ops += 1,
            OpClass::IntDiv => self.act.div_ops += 1,
            OpClass::Branch => self.act.branch_ops += 1,
            OpClass::VsxSimple => self.act.vsx_simple_ops += 1,
            OpClass::VsxFp => {
                self.act.vsx_fp_ops += 1;
                self.act.vsx_flops += flops;
            }
            OpClass::Mma(_) => {
                self.act.mma_ops += 1;
                self.act.mma_flops += flops;
            }
            OpClass::MmaMove => self.act.mma_moves += 1,
            OpClass::Load => self.act.loads += 1,
            OpClass::Store => self.act.stores += 1,
            OpClass::Nop | OpClass::Hint => {}
        }
    }

    /// Start execution without re-counting regfile reads/unit ops (used for
    /// the fused partner whose counting is handled at the call site).
    fn start_execution_quiet(&mut self, slot: u32, done_at: u64) {
        self.begin_execution(slot, done_at);
    }

    fn issue_load(&mut self, slot: u32, tid: usize) -> u64 {
        let op = self.slab[slot as usize].op;
        let m = op.mem.expect("load has mem");
        let seq = self.slab[slot as usize].seq;

        // Translation policy: RA-tagged L1 translates on every access.
        let mut extra = 0u64;
        if !self.cfg.ea_tagged_l1 {
            extra += u64::from(
                self.mmu
                    .translate(m.addr, TranslateSide::Data, &mut self.act),
            );
        }

        // Store-to-load forwarding from older stores in this thread.
        let mut forward = false;
        let mut conflict_unready = false;
        for &(sseq, saddr, ssize, sexec) in self.threads[tid].store_window.iter().rev() {
            if sseq >= seq {
                continue;
            }
            let s_end = saddr + u64::from(ssize);
            let l_end = m.addr + u64::from(m.size);
            let overlap = saddr < l_end && m.addr < s_end;
            if !overlap {
                continue;
            }
            let contains = saddr <= m.addr && l_end <= s_end;
            if sexec && contains {
                forward = true;
            } else {
                conflict_unready = true;
            }
            break; // youngest older overlapping store decides
        }

        if forward {
            self.act.store_forwards += 1;
            return self.cycle + u64::from(self.cfg.l1d.latency) + extra;
        }
        if conflict_unready {
            // Conservative: wait a few cycles and replay through the cache.
            extra += 4;
        }

        let (lat, lvl) = self.mem.access_data(m.addr, &mut self.act);
        let missed_l1 = lvl != crate::cache::HitLevel::L1;
        if missed_l1 {
            if self.cfg.ea_tagged_l1 {
                extra += u64::from(
                    self.mmu
                        .translate(m.addr, TranslateSide::Data, &mut self.act),
                );
            }
            let done = self.cycle + u64::from(lat) + extra;
            self.lmq.push(done);
            done
        } else {
            self.cycle + u64::from(lat) + extra
        }
    }

    fn issue_store(&mut self, slot: u32, tid: usize) -> u64 {
        let op = self.slab[slot as usize].op;
        let m = op.mem.expect("store has mem");
        let seq = self.slab[slot as usize].seq;
        let mut extra = 0u64;
        if !self.cfg.ea_tagged_l1 {
            extra += u64::from(
                self.mmu
                    .translate(m.addr, TranslateSide::Data, &mut self.act),
            );
        }
        // Address generation done; data considered available one cycle
        // later. The cache write happens post-completion at drain.
        if let Some(s) = self.threads[tid]
            .store_window
            .iter_mut()
            .find(|s| s.0 == seq)
        {
            s.3 = true;
        }
        self.cycle + 1 + extra
    }

    // ---- decode + dispatch ----

    fn decode_dispatch(&mut self) {
        let mut budget = self.cfg.decode_width;
        let n = self.threads.len();
        let mut blocked = vec![false; n];
        let mut progressed = true;
        while budget > 0 && progressed {
            progressed = false;
            for k in 0..n {
                if budget == 0 {
                    break;
                }
                let tid = (k + self.rr_offset) % n;
                if blocked[tid] || self.threads[tid].fetch_buffer.is_empty() {
                    continue;
                }
                match self.try_dispatch_one(tid) {
                    DispatchOutcome::Dispatched { fused } => {
                        budget -= 1;
                        if fused {
                            self.act.fused_pairs += 1;
                        }
                        progressed = true;
                    }
                    DispatchOutcome::Blocked => {
                        blocked[tid] = true;
                        self.act.dispatch_stall_cycles += 1;
                    }
                }
            }
        }
    }

    /// Checks whether the head of `tid`'s fetch buffer (plus fused
    /// partner) fits the window/issue-queue/LQ/SQ this cycle, returning
    /// the dispatch footprint, or `None` when a resource blocks. Pure —
    /// shared by [`Core::try_dispatch_one`] and the fast-forward
    /// dispatch-progress check.
    fn plan_dispatch(&self, tid: usize) -> Option<DispatchPlan> {
        // Peek head (and successor for fusion).
        let (head_op, fuse) = {
            let t = &self.threads[tid];
            let head = t.fetch_buffer.front().expect("caller checked");
            let fuse = if self.cfg.fusion && t.fetch_buffer.len() >= 2 {
                let second = &t.fetch_buffer[1];
                fusion::classify_pair(&head.op, &second.op)
            } else {
                None
            };
            (head.op, fuse)
        };

        let pair_count: u32 = if fuse.is_some() { 2 } else { 1 };
        // Resource checks.
        if self.window_used + pair_count > self.cfg.itable_entries {
            return None;
        }
        let iq_needed = match fuse {
            Some(k) if k.single_issue_entry() => 1,
            Some(_) => 2,
            None => 1,
        };
        if self.issue_queue_used + iq_needed > self.cfg.issue_queue_entries {
            return None;
        }
        // LQ/SQ checks for head (+ partner).
        let needs_lq = |op: &DynOp| u32::from(op.is_load());
        let needs_sq = |op: &DynOp| u32::from(op.is_store());
        let second_op = if fuse.is_some() {
            Some(self.threads[tid].fetch_buffer[1].op)
        } else {
            None
        };
        let lq_need = needs_lq(&head_op) + second_op.as_ref().map_or(0, needs_lq);
        let mut sq_need = needs_sq(&head_op) + second_op.as_ref().map_or(0, needs_sq);
        if fuse == Some(FusionKind::StorePair) {
            if let Some(second) = &second_op {
                if fusion::store_pair_single_sq_entry(&head_op, second) {
                    sq_need = 1;
                }
            }
        }
        let t = &self.threads[tid];
        if t.lq_used + lq_need > self.cfg.load_queue_per_thread()
            || t.sq_used + sq_need > self.cfg.store_queue_per_thread()
        {
            return None;
        }
        Some(DispatchPlan {
            head_op,
            fuse,
            second_op,
            lq_need,
            sq_need,
        })
    }

    fn try_dispatch_one(&mut self, tid: usize) -> DispatchOutcome {
        let Some(plan) = self.plan_dispatch(tid) else {
            return DispatchOutcome::Blocked;
        };

        // Commit: pop and install.
        let head = self.threads[tid].fetch_buffer.pop_front().expect("checked");
        let head_slot = self.install(tid, head, false, true);
        self.threads[tid].lq_used += plan.lq_need;
        self.threads[tid].sq_used += plan.sq_need;
        if let Some(kind) = plan.fuse {
            let second_owns_sq = !(kind == FusionKind::StorePair
                && plan
                    .second_op
                    .as_ref()
                    .is_some_and(|s| fusion::store_pair_single_sq_entry(&plan.head_op, s)));
            let second = self.threads[tid].fetch_buffer.pop_front().expect("checked");
            let second_slot = self.install(tid, second, kind.single_issue_entry(), second_owns_sq);
            self.slab[head_slot as usize].pair = second_slot;
            self.act.decoded += 2;
            self.act.dispatched += 2;
            DispatchOutcome::Dispatched { fused: true }
        } else {
            self.act.decoded += 1;
            self.act.dispatched += 1;
            DispatchOutcome::Dispatched { fused: false }
        }
    }

    fn install(&mut self, tid: usize, f: FetchedOp, is_pair_second: bool, owns_sq: bool) -> u32 {
        self.seq += 1;
        let seq = self.seq;
        let mut deps = [(NO_SLOT, 0u64); MAX_SRCS];
        {
            let t = &self.threads[tid];
            for (i, src) in f.op.sources().enumerate() {
                let (slot, pseq) = t.rename[usize::from(src.packed())];
                if slot != NO_SLOT {
                    let e = &self.slab[slot as usize];
                    if e.active && e.seq == pseq {
                        deps[i] = (slot, pseq);
                    }
                }
            }
        }
        // Producers not yet Done must wake this op when they finish
        // (event-driven scheduler); already-resolved deps need no tracking.
        let mut waiting_on = 0u8;
        if self.event_driven() {
            for &(pslot, _) in &deps {
                if pslot != NO_SLOT && self.slab[pslot as usize].state != UopState::Done {
                    waiting_on += 1;
                }
            }
        }
        let ready = self.event_driven() && waiting_on == 0;
        let entry = InFlight {
            op: f.op,
            tid: tid as u8,
            seq,
            fetch_cycle: f.fetch_cycle,
            state: UopState::Waiting,
            deps,
            mispredicted: f.mispredicted,
            pair: NO_SLOT,
            is_pair_second,
            owns_sq,
            active: true,
            waiting_on,
            ready,
        };
        if ready {
            self.ready_count += 1;
        }
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slab[s as usize] = entry;
                s
            }
            None => {
                self.slab.push(entry);
                self.wakeup.push(Vec::new());
                (self.slab.len() - 1) as u32
            }
        };
        if self.event_driven() && waiting_on > 0 {
            debug_assert!(self.wakeup[slot as usize].is_empty());
            for &(pslot, _) in &deps {
                if pslot != NO_SLOT && self.slab[pslot as usize].state != UopState::Done {
                    self.wakeup[pslot as usize].push((slot, seq));
                }
            }
        }
        // Update rename map for destinations.
        let t = &mut self.threads[tid];
        if let Some(d) = f.op.dest() {
            t.rename[usize::from(d.packed())] = (slot, seq);
        }
        if let Some(d) = f.op.dest2() {
            t.rename[usize::from(d.packed())] = (slot, seq);
        }
        t.rob.push_back(slot);
        if f.op.is_store() {
            let m = f.op.mem.expect("store has mem");
            t.store_window.push_back((seq, m.addr, m.size, false));
        }
        self.window_used += 1;
        if !is_pair_second {
            self.issue_queue_used += 1;
        }
        self.issue_order.push_back((slot, seq));
        slot
    }

    // ---- fetch ----

    fn fetch(&mut self) {
        let n = self.threads.len();
        match self.cfg.fetch_policy {
            crate::config::FetchPolicy::RoundRobin => {
                for k in 0..n {
                    let tid = (k + self.rr_offset) % n;
                    self.fetch_thread(tid);
                }
            }
            crate::config::FetchPolicy::ICount => {
                // Fewest in-flight (fetch buffer + ROB) first.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&t| {
                    self.threads[t].fetch_buffer.len() + self.threads[t].rob.len()
                });
                for tid in order {
                    self.fetch_thread(tid);
                }
            }
        }
    }

    fn fetch_thread(&mut self, tid: usize) {
        {
            let t = &self.threads[tid];
            if t.fetch_done() || t.mispredict_pending.is_some() || t.fetch_stall_until > self.cycle
            {
                return;
            }
            if t.fetch_buffer.len() >= self.cfg.fetch_buffer as usize {
                return;
            }
        }

        // One I-cache access per fetch group.
        let pc = self.threads[tid].ops[self.threads[tid].fetch_idx].pc;
        if !self.cfg.ea_tagged_l1 {
            let extra = self.mmu.translate(pc, TranslateSide::Inst, &mut self.act);
            if extra > 0 {
                self.act.itlb_stall_cycles += u64::from(extra);
                self.threads[tid].fetch_stall_until = self.cycle + u64::from(extra);
                return;
            }
        }
        let (lat, hit) = self.mem.access_inst(pc, &mut self.act);
        if !hit {
            if self.cfg.ea_tagged_l1 {
                let extra = self.mmu.translate(pc, TranslateSide::Inst, &mut self.act);
                self.act.itlb_stall_cycles += u64::from(extra);
                self.threads[tid].fetch_stall_until =
                    self.cycle + u64::from(lat) + u64::from(extra);
            } else {
                self.threads[tid].fetch_stall_until = self.cycle + u64::from(lat);
            }
            return;
        }

        let mut slots = self.cfg.fetch_width;
        while slots > 0 {
            let t = &self.threads[tid];
            if t.fetch_done() || t.fetch_buffer.len() >= self.cfg.fetch_buffer as usize {
                break;
            }
            let op = t.ops[t.fetch_idx];
            let cost = if op.prefixed { 2 } else { 1 };
            if cost > slots {
                break;
            }
            slots -= cost;
            self.threads[tid].fetch_idx += 1;
            self.act.fetched += 1;

            let mut mispredicted = false;
            if let Some(info) = op.branch {
                let fallthrough = op.pc + 4;
                let pred = self
                    .predictor
                    .predict_and_train(tid, op.pc, &info, fallthrough);
                if pred.predicted {
                    self.act.branch_predictions += 1;
                }
                mispredicted = !pred.correct;
            }
            let fetched = FetchedOp {
                op,
                mispredicted,
                fetch_cycle: self.cycle,
            };
            let is_taken_branch = op.branch.is_some_and(|b| b.taken);
            self.threads[tid].fetch_buffer.push_back(fetched);
            if mispredicted {
                // Fetch stalls here until the branch resolves; at most one
                // mispredicted branch is in flight per thread, so the value
                // is just a flag.
                self.threads[tid].mispredict_pending = Some(1);
                break;
            }
            if is_taken_branch {
                break; // cannot fetch past a taken branch this cycle
            }
        }
    }
}

/// What the issue stage saw this cycle (input to cycle attribution).
#[derive(Debug, Clone, Copy)]
struct IssueSummary {
    /// At least one op started execution.
    issued_any: bool,
    /// At least one candidate within the lookahead had its deps resolved
    /// (whether or not a structural limit then blocked it).
    saw_ready: bool,
}

/// Which attribution bucket a fast-forwarded idle stretch belongs to
/// (static across the stretch — see `fast_forward`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallKind {
    MemoryBound,
    DispatchStalled,
    FetchStalled,
    Idle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchOutcome {
    Dispatched { fused: bool },
    Blocked,
}

/// Resource footprint of dispatching one fetch-buffer head (+ partner).
#[derive(Debug, Clone, Copy)]
struct DispatchPlan {
    head_op: DynOp,
    fuse: Option<FusionKind>,
    second_op: Option<DynOp>,
    lq_need: u32,
    sq_need: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmtMode;
    use p10_isa::{Inst, Machine, ProgramBuilder, Reg, Trace};

    /// An L1-contained counted loop of `iters` iterations with `body_alus`
    /// independent adds per iteration.
    fn alu_loop_trace(iters: i64, body_alus: u16) -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), iters);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        for k in 0..body_alus {
            let r = 5 + (k % 20);
            b.addi(Reg::gpr(r), Reg::gpr(r), 1);
        }
        b.bdnz(top);
        let prog = b.build();
        Machine::new().run(&prog, 10_000_000).expect("loop runs")
    }

    fn run_cfg(cfg: CoreConfig, trace: Trace) -> SimResult {
        Core::new(cfg).run(vec![trace], 10_000_000)
    }

    #[test]
    fn all_ops_complete() {
        let t = alu_loop_trace(100, 8);
        let n = t.len() as u64;
        let r = run_cfg(CoreConfig::power10(), t);
        assert_eq!(r.activity.completed, n);
        assert_eq!(r.per_thread_completed, vec![n]);
    }

    #[test]
    fn ipc_is_superscalar_on_independent_alus() {
        let t = alu_loop_trace(2000, 8);
        let r = run_cfg(CoreConfig::power10(), t);
        assert!(
            r.ipc() > 2.0,
            "independent ALU loop should run superscalar, ipc = {}",
            r.ipc()
        );
        assert!(r.ipc() <= 8.0);
    }

    #[test]
    fn dependent_chain_is_serialized() {
        // One long dependent chain: IPC near 1 even on a wide core
        // (fusion pairs adjacent dependent adds, capping at ~2).
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), 2000);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        for _ in 0..8 {
            b.addi(Reg::gpr(5), Reg::gpr(5), 1);
        }
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 1_000_000).unwrap();
        let mut cfg = CoreConfig::power10();
        cfg.fusion = false;
        let r = run_cfg(cfg, t);
        assert!(
            r.ipc() < 1.6,
            "dependent chain must serialize, ipc = {}",
            r.ipc()
        );
    }

    #[test]
    fn power10_outperforms_power9_on_wide_loop() {
        let t = alu_loop_trace(3000, 10);
        let r9 = run_cfg(CoreConfig::power9(), t.clone());
        let r10 = run_cfg(CoreConfig::power10(), t);
        assert!(
            r10.ipc() > r9.ipc(),
            "P10 ipc {} must beat P9 ipc {}",
            r10.ipc(),
            r9.ipc()
        );
    }

    #[test]
    fn fusion_detects_dependent_pairs() {
        // Adjacent dependent adds (fusible) plus cmp+branch pairs.
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), 500);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.addi(Reg::gpr(5), Reg::gpr(5), 1);
        b.add(Reg::gpr(6), Reg::gpr(5), Reg::gpr(5)); // depends on previous
        b.cmpi(Reg::cr(0), Reg::gpr(6), 0);
        let skip = b.label();
        b.bc(p10_isa::Cond::Lt, Reg::cr(0), skip); // cmp+branch pair
        b.bind(skip);
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 1_000_000).unwrap();
        let r10 = run_cfg(CoreConfig::power10(), t.clone());
        assert!(r10.activity.fused_pairs > 500, "P10 must fuse pairs");
        let r9 = run_cfg(CoreConfig::power9(), t);
        assert_eq!(r9.activity.fused_pairs, 0, "P9 has no fusion");
    }

    #[test]
    fn ea_tagging_cuts_translations() {
        let t = alu_loop_trace(1000, 6);
        let p9 = run_cfg(CoreConfig::power9(), t.clone());
        let p10 = run_cfg(CoreConfig::power10(), t);
        // P9 translates on every fetch group; P10 only on L1 misses.
        assert!(
            p10.activity.ierat_lookups < p9.activity.ierat_lookups / 10,
            "EA tagging must slash I-side translations: p9={} p10={}",
            p9.activity.ierat_lookups,
            p10.activity.ierat_lookups
        );
    }

    #[test]
    fn loads_and_stores_flow_through_lsu() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x10_0000);
        b.li(Reg::gpr(4), 200);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.std(Reg::gpr(5), Reg::gpr(1), 0);
        b.std(Reg::gpr(5), Reg::gpr(1), 8);
        b.ld(Reg::gpr(6), Reg::gpr(1), 0);
        b.addi(Reg::gpr(1), Reg::gpr(1), 64);
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 1_000_000).unwrap();
        let r = run_cfg(CoreConfig::power10(), t);
        assert_eq!(r.activity.stores, 400);
        assert_eq!(r.activity.loads, 200);
        assert!(r.activity.store_merges > 0, "adjacent stores should merge");
        assert!(r.activity.l1d_accesses > 0);
    }

    #[test]
    fn store_forwarding_happens() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x10_0000);
        b.li(Reg::gpr(4), 100);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.std(Reg::gpr(5), Reg::gpr(1), 0);
        b.ld(Reg::gpr(6), Reg::gpr(1), 0); // same address: forward
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 1_000_000).unwrap();
        let r = run_cfg(CoreConfig::power10(), t);
        assert!(
            r.activity.store_forwards > 50,
            "same-address load must forward, got {}",
            r.activity.store_forwards
        );
    }

    #[test]
    fn mispredicts_counted_on_data_dependent_branches() {
        // Branch on a pseudo-random bit: unpredictable.
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(2), 0x12345);
        b.li(Reg::gpr(4), 2000);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        // xorshift-ish scramble
        b.push(Inst::Srdi {
            rt: Reg::gpr(3),
            ra: Reg::gpr(2),
            sh: 1,
        });
        b.push(Inst::Xor {
            rt: Reg::gpr(2),
            ra: Reg::gpr(3),
            rb: Reg::gpr(2),
        });
        b.push(Inst::Sldi {
            rt: Reg::gpr(3),
            ra: Reg::gpr(2),
            sh: 3,
        });
        b.push(Inst::Xor {
            rt: Reg::gpr(2),
            ra: Reg::gpr(3),
            rb: Reg::gpr(2),
        });
        b.push(Inst::And {
            rt: Reg::gpr(5),
            ra: Reg::gpr(2),
            rb: Reg::gpr(6),
        });
        b.cmpi(Reg::cr(0), Reg::gpr(5), 0);
        let skip = b.label();
        b.bc(p10_isa::Cond::Eq, Reg::cr(0), skip);
        b.addi(Reg::gpr(7), Reg::gpr(7), 1);
        b.bind(skip);
        b.bdnz(top);
        let mut m = Machine::new();
        m.set_gpr(6, 4); // mask bit 2
        let t = m.run(&b.build(), 1_000_000).unwrap();
        let r = run_cfg(CoreConfig::power10(), t);
        assert!(
            r.activity.branch_mispredicts > 100,
            "pseudo-random branch must mispredict, got {}",
            r.activity.branch_mispredicts
        );
        assert!(r.activity.wrong_path_fetched > 0);
        assert!(r.activity.flushed > 0);
    }

    #[test]
    fn p10_flushes_less_than_p9() {
        // Long-period pattern (period 24) that exceeds POWER9's local
        // history window but not POWER10's.
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), 12_000);
        b.mtctr(Reg::gpr(4));
        b.li(Reg::gpr(2), 0);
        let top = b.bind_label();
        b.addi(Reg::gpr(2), Reg::gpr(2), 1);
        b.cmpi(Reg::cr(0), Reg::gpr(2), 24);
        let skip = b.label();
        b.bc(p10_isa::Cond::Ne, Reg::cr(0), skip);
        b.li(Reg::gpr(2), 0);
        b.bind(skip);
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 10_000_000).unwrap();
        let r9 = run_cfg(CoreConfig::power9(), t.clone());
        let r10 = run_cfg(CoreConfig::power10(), t);
        assert!(
            r10.activity.branch_mispredicts < r9.activity.branch_mispredicts / 2,
            "P10 long-history predictor must capture the period-24 pattern: p9={} p10={}",
            r9.activity.branch_mispredicts,
            r10.activity.branch_mispredicts
        );
        assert!(
            r10.activity.wrong_path_fetched < r9.activity.wrong_path_fetched,
            "P10 must waste fewer fetches"
        );
    }

    #[test]
    fn smt2_two_threads_both_complete() {
        let t1 = alu_loop_trace(500, 6);
        let t2 = alu_loop_trace(700, 4);
        let (n1, n2) = (t1.len() as u64, t2.len() as u64);
        let mut cfg = CoreConfig::power10();
        cfg.smt = SmtMode::Smt2;
        let r = Core::new(cfg).run(vec![t1, t2], 10_000_000);
        assert_eq!(r.per_thread_completed, vec![n1, n2]);
        assert_eq!(r.activity.completed, n1 + n2);
    }

    #[test]
    fn smt2_throughput_beats_st_on_stall_heavy_code() {
        // Memory-latency-bound pointer chase: SMT2 overlaps stalls.
        let chase = |seed: u64| -> Trace {
            let mut b = ProgramBuilder::new();
            b.li(Reg::gpr(1), 0x20_0000 + (seed * 0x4_0000) as i64);
            b.li(Reg::gpr(4), 300);
            b.mtctr(Reg::gpr(4));
            let top = b.bind_label();
            b.ld(Reg::gpr(2), Reg::gpr(1), 0);
            b.add(Reg::gpr(3), Reg::gpr(3), Reg::gpr(2));
            b.addi(Reg::gpr(1), Reg::gpr(1), 4096); // new page/line every iter
            b.bdnz(top);
            Machine::new().run(&b.build(), 1_000_000).unwrap()
        };
        let mut st_cfg = CoreConfig::power10();
        st_cfg.prefetch_streams = 0;
        let st = Core::new(st_cfg.clone()).run(vec![chase(0)], 10_000_000);
        let mut smt_cfg = st_cfg;
        smt_cfg.smt = SmtMode::Smt2;
        let smt = Core::new(smt_cfg).run(vec![chase(0), chase(1)], 10_000_000);
        assert!(
            smt.ipc() > st.ipc() * 1.3,
            "SMT2 must overlap stalls: st={} smt={}",
            st.ipc(),
            smt.ipc()
        );
    }

    #[test]
    fn mma_kernel_executes_on_grid() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x10_0000);
        b.li(Reg::gpr(4), 200);
        b.mtctr(Reg::gpr(4));
        b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
        b.push(Inst::Xxsetaccz { at: Reg::acc(1) });
        let top = b.bind_label();
        b.lxv(Reg::vsr(34), Reg::gpr(1), 0);
        b.lxv(Reg::vsr(35), Reg::gpr(1), 16);
        b.lxv(Reg::vsr(36), Reg::gpr(1), 32);
        b.push(Inst::Xvf64gerpp {
            at: Reg::acc(0),
            xa: Reg::vsr(34),
            xb: Reg::vsr(36),
        });
        b.push(Inst::Xvf64gerpp {
            at: Reg::acc(1),
            xa: Reg::vsr(34),
            xb: Reg::vsr(36),
        });
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 1_000_000).unwrap();
        let r = run_cfg(CoreConfig::power10(), t);
        assert_eq!(r.activity.mma_ops, 400);
        assert_eq!(r.activity.mma_flops, 400 * 16);
        assert!(r.activity.mma_active_cycles > 0);
        assert!(r.activity.flops_per_cycle() > 4.0);
    }

    #[test]
    fn max_cycles_bounds_runaway() {
        let t = alu_loop_trace(100_000, 4);
        let r = Core::new(CoreConfig::power10()).run(vec![t], 50);
        assert_eq!(r.activity.cycles, 50);
    }

    #[test]
    #[should_panic(expected = "exceed SMT mode capacity")]
    fn too_many_threads_panics() {
        let t = alu_loop_trace(10, 1);
        let cfg = CoreConfig::power10(); // ST mode
        let _ = Core::new(cfg).run(vec![t.clone(), t], 100);
    }

    #[test]
    fn window_occupancy_tracked() {
        let t = alu_loop_trace(1000, 8);
        let r = run_cfg(CoreConfig::power10(), t);
        let occ = r.activity.mean_window_occupancy();
        assert!(occ > 1.0 && occ <= 512.0, "occupancy {occ} out of range");
    }
}

#[cfg(test)]
mod gating_tests {
    use super::*;
    use p10_isa::{Inst, Machine, ProgramBuilder, Reg, Trace};

    fn mma_burst_program(prelude_alus: u16, hint: bool) -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), 2_000);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.addi(Reg::gpr(5), Reg::gpr(5), 1);
        b.bdnz(top);
        if hint {
            b.push(Inst::MmaWakeHint);
        }
        // Post-loop scalar work that covers (or not) the wake window.
        for k in 0..prelude_alus {
            let r = 6 + (k % 8);
            b.addi(Reg::gpr(r), Reg::gpr(r), 1);
        }
        b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
        b.li(Reg::gpr(6), 200);
        b.mtctr(Reg::gpr(6));
        let kloop = b.bind_label();
        b.push(Inst::Xvf64gerpp {
            at: Reg::acc(0),
            xa: Reg::vsr(34),
            xb: Reg::vsr(36),
        });
        b.bdnz(kloop);
        Machine::new().run(&b.build(), 1_000_000).unwrap()
    }

    #[test]
    fn cold_mma_use_pays_wake_latency() {
        let t = mma_burst_program(4, false);
        let r = Core::new(CoreConfig::power10()).run(vec![t], 1_000_000);
        assert!(
            r.activity.mma_wake_stall_cycles >= 32,
            "cold MMA start must stall, got {}",
            r.activity.mma_wake_stall_cycles
        );
        assert!(r.activity.mma_powered_cycles > 0);
        // The unit was gated during the long scalar prelude.
        assert!(r.activity.mma_powered_cycles < r.activity.cycles);
    }

    #[test]
    fn wake_hint_hides_the_latency() {
        // Hint placed a long scalar stretch before the MMA burst: the
        // unit powers on in the shadow of that work.
        let cold =
            Core::new(CoreConfig::power10()).run(vec![mma_burst_program(200, false)], 1_000_000);
        let hinted =
            Core::new(CoreConfig::power10()).run(vec![mma_burst_program(200, true)], 1_000_000);
        assert!(
            hinted.activity.mma_wake_stall_cycles < cold.activity.mma_wake_stall_cycles,
            "hint must cut wake stalls: cold {} hinted {}",
            cold.activity.mma_wake_stall_cycles,
            hinted.activity.mma_wake_stall_cycles
        );
        assert_eq!(hinted.activity.completed, cold.activity.completed + 1);
    }

    #[test]
    fn specint_code_never_powers_the_mma() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), 3_000);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.addi(Reg::gpr(5), Reg::gpr(5), 1);
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 1_000_000).unwrap();
        let r = Core::new(CoreConfig::power10()).run(vec![t], 1_000_000);
        assert_eq!(r.activity.mma_powered_cycles, 0);
        assert_eq!(r.activity.mma_wake_stall_cycles, 0);
    }
}

#[cfg(test)]
mod smt_policy_tests {
    use super::*;
    use crate::config::{FetchPolicy, SmtMode};
    use p10_isa::{Machine, ProgramBuilder, Reg, Trace};

    fn compute_trace(ops: u64) -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), i64::MAX / 2);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        for k in 0..8u16 {
            b.addi(Reg::gpr(5 + k % 8), Reg::gpr(5 + k % 8), 1);
        }
        b.bdnz(top);
        Machine::new().run(&b.build(), ops).unwrap()
    }

    fn memory_trace(ops: u64) -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x40_0000);
        b.li(Reg::gpr(4), i64::MAX / 2);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.ld(Reg::gpr(2), Reg::gpr(1), 0);
        b.add(Reg::gpr(3), Reg::gpr(3), Reg::gpr(2));
        b.addi(Reg::gpr(1), Reg::gpr(1), 4096);
        b.bdnz(top);
        Machine::new().run(&b.build(), ops).unwrap()
    }

    #[test]
    fn icount_favors_the_fast_thread() {
        // One compute thread + one memory-stalled thread: ICOUNT should
        // let the compute thread retire more than round-robin does, at
        // equal-or-better total throughput.
        let run = |policy: FetchPolicy| {
            let mut cfg = CoreConfig::power10();
            cfg.smt = SmtMode::Smt2;
            cfg.fetch_policy = policy;
            cfg.prefetch_streams = 0;
            Core::new(cfg).run(vec![compute_trace(20_000), memory_trace(20_000)], 60_000)
        };
        let rr = run(FetchPolicy::RoundRobin);
        let ic = run(FetchPolicy::ICount);
        // Bounded-cycle run: compare per-thread progress.
        assert!(
            ic.per_thread_completed[0] >= rr.per_thread_completed[0],
            "ICOUNT must not starve the fast thread: rr {:?} ic {:?}",
            rr.per_thread_completed,
            ic.per_thread_completed
        );
        let total_rr: u64 = rr.per_thread_completed.iter().sum();
        let total_ic: u64 = ic.per_thread_completed.iter().sum();
        assert!(
            total_ic as f64 >= total_rr as f64 * 0.95,
            "ICOUNT throughput must be competitive: {total_rr} vs {total_ic}"
        );
    }
}

#[cfg(test)]
mod corner_tests {
    use super::*;
    use crate::config::SmtMode;
    use p10_isa::{Inst, Machine, ProgramBuilder, Reg, Trace};

    #[test]
    fn divides_serialize_on_the_unpipelined_unit() {
        // Back-to-back independent divides: throughput limited by the
        // divider being busy, not by dependencies.
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 1000);
        b.li(Reg::gpr(2), 7);
        b.li(Reg::gpr(4), 100);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        for t in 0..4u16 {
            b.push(Inst::Divd {
                rt: Reg::gpr(10 + t),
                ra: Reg::gpr(1),
                rb: Reg::gpr(2),
            });
        }
        b.bdnz(top);
        let t = Machine::new().run(&b.build(), 100_000).unwrap();
        let cfg = CoreConfig::power10();
        let div_lat = u64::from(cfg.div_latency);
        let r = Core::new(cfg).run(vec![t], 10_000_000);
        // 400 divides, each occupying the divider for div_latency cycles.
        assert!(
            r.activity.cycles >= 400 * div_lat,
            "divides must serialize: {} cycles for 400 divides of {div_lat}",
            r.activity.cycles
        );
    }

    #[test]
    fn prefixed_instructions_consume_two_fetch_slots() {
        // A loop of prefixed (large-immediate) li ops fetches at half
        // rate; compare against plain adds.
        let make = |prefixed: bool| -> Trace {
            let mut b = ProgramBuilder::new();
            b.li(Reg::gpr(4), 1500);
            b.mtctr(Reg::gpr(4));
            let top = b.bind_label();
            for k in 0..8u16 {
                if prefixed {
                    b.li(Reg::gpr(5 + k % 8), 1 << 20); // prefixed form
                } else {
                    b.li(Reg::gpr(5 + k % 8), 1); // plain form
                }
            }
            b.bdnz(top);
            Machine::new().run(&b.build(), 1_000_000).unwrap()
        };
        let plain = Core::new(CoreConfig::power10()).run(vec![make(false)], 10_000_000);
        let pfx = Core::new(CoreConfig::power10()).run(vec![make(true)], 10_000_000);
        assert_eq!(plain.activity.completed, pfx.activity.completed);
        assert!(
            pfx.activity.cycles as f64 > plain.activity.cycles as f64 * 1.15,
            "prefixed fetch must cost more: {} vs {}",
            plain.activity.cycles,
            pfx.activity.cycles
        );
    }

    #[test]
    fn lmq_limits_outstanding_misses() {
        // A stream of independent far-apart loads: memory-level
        // parallelism is capped by the load-miss queue.
        let make_trace = || {
            let mut b = ProgramBuilder::new();
            b.li(Reg::gpr(1), 0x100_0000);
            b.li(Reg::gpr(4), 400);
            b.mtctr(Reg::gpr(4));
            let top = b.bind_label();
            for k in 0..4u16 {
                b.ld(Reg::gpr(10 + k), Reg::gpr(1), i64::from(k) * 1_048_576);
            }
            b.addi(Reg::gpr(1), Reg::gpr(1), 8192);
            b.bdnz(top);
            Machine::new().run(&b.build(), 1_000_000).unwrap()
        };
        let mut narrow = CoreConfig::power10();
        narrow.prefetch_streams = 0;
        narrow.load_miss_queue = 1;
        let mut wide = narrow.clone();
        wide.load_miss_queue = 12;
        let r1 = Core::new(narrow).run(vec![make_trace()], 10_000_000);
        let r12 = Core::new(wide).run(vec![make_trace()], 10_000_000);
        assert!(
            r1.activity.cycles as f64 > r12.activity.cycles as f64 * 1.5,
            "MLP must be LMQ-limited: lmq1 {} vs lmq12 {}",
            r1.activity.cycles,
            r12.activity.cycles
        );
    }

    #[test]
    fn smt4_runs_four_threads_fairly() {
        let mk = |seed: i64| {
            let mut b = ProgramBuilder::new();
            b.li(Reg::gpr(4), 1000 + seed);
            b.mtctr(Reg::gpr(4));
            let top = b.bind_label();
            for k in 0..6u16 {
                b.addi(Reg::gpr(5 + k), Reg::gpr(5 + k), 1);
            }
            b.bdnz(top);
            Machine::new().run(&b.build(), 25_000).unwrap()
        };
        let mut cfg = CoreConfig::power10();
        cfg.smt = SmtMode::Smt4;
        let traces = vec![mk(0), mk(1), mk(2), mk(3)];
        let lens: Vec<u64> = traces.iter().map(|t| t.len() as u64).collect();
        let r = Core::new(cfg).run(traces, 10_000_000);
        assert_eq!(r.per_thread_completed, lens);
        assert_eq!(r.threads, 4);
    }

    #[test]
    fn fused_store_pair_uses_single_sq_entry() {
        // Two 8-byte stores to consecutive addresses with a tiny store
        // queue: with fusion the pair shares one entry, so POWER10 with
        // SQ=2/thread makes progress a no-fusion config chokes on.
        let mk = || {
            let mut b = ProgramBuilder::new();
            b.li(Reg::gpr(1), 0x20_0000);
            b.li(Reg::gpr(4), 800);
            b.mtctr(Reg::gpr(4));
            let top = b.bind_label();
            b.std(Reg::gpr(5), Reg::gpr(1), 0);
            b.std(Reg::gpr(5), Reg::gpr(1), 8);
            b.addi(Reg::gpr(1), Reg::gpr(1), 64);
            b.bdnz(top);
            Machine::new().run(&b.build(), 1_000_000).unwrap()
        };
        let mut fused = CoreConfig::power10();
        fused.store_queue = 4; // 2 per thread in ST accounting
        let mut unfused = fused.clone();
        unfused.fusion = false;
        let rf = Core::new(fused).run(vec![mk()], 10_000_000);
        let ru = Core::new(unfused).run(vec![mk()], 10_000_000);
        assert_eq!(rf.activity.completed, ru.activity.completed);
        assert!(rf.activity.fused_pairs > 700, "pairs must fuse");
        assert!(
            rf.activity.cycles <= ru.activity.cycles,
            "shared SQ entries must not be slower: fused {} vs unfused {}",
            rf.activity.cycles,
            ru.activity.cycles
        );
    }

    #[test]
    fn wrong_path_estimate_zero_without_branches() {
        let mut b = ProgramBuilder::new();
        for _ in 0..500 {
            b.addi(Reg::gpr(5), Reg::gpr(5), 1);
        }
        let t = Machine::new().run(&b.build(), 10_000).unwrap();
        let r = Core::new(CoreConfig::power10()).run(vec![t], 100_000);
        assert_eq!(r.activity.wrong_path_fetched, 0);
        assert_eq!(r.activity.branch_mispredicts, 0);
    }
}

#[cfg(test)]
mod attribution_tests {
    use super::*;
    use p10_isa::{Inst, Machine, ProgramBuilder, Reg, Trace};

    fn alu_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(4), iters);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        for k in 0..8u16 {
            b.addi(Reg::gpr(5 + k % 8), Reg::gpr(5 + k % 8), 1);
        }
        b.bdnz(top);
        Machine::new().run(&b.build(), 1_000_000).unwrap()
    }

    fn chase_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x40_0000);
        b.li(Reg::gpr(4), 300);
        b.mtctr(Reg::gpr(4));
        let top = b.bind_label();
        b.ld(Reg::gpr(2), Reg::gpr(1), 0);
        b.add(Reg::gpr(3), Reg::gpr(3), Reg::gpr(2));
        b.addi(Reg::gpr(1), Reg::gpr(1), 4096);
        b.bdnz(top);
        Machine::new().run(&b.build(), 1_000_000).unwrap()
    }

    fn mma_cold_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
        b.li(Reg::gpr(6), 100);
        b.mtctr(Reg::gpr(6));
        let kloop = b.bind_label();
        b.push(Inst::Xvf64gerpp {
            at: Reg::acc(0),
            xa: Reg::vsr(34),
            xb: Reg::vsr(36),
        });
        b.bdnz(kloop);
        Machine::new().run(&b.build(), 1_000_000).unwrap()
    }

    fn assert_partitions(r: &SimResult) {
        assert_eq!(
            r.attribution.total(),
            r.activity.cycles,
            "attribution must partition the cycle count ({:?})",
            r.attribution
        );
        assert_eq!(
            r.attribution.active, r.activity.active_cycles,
            "active bucket must equal the existing active_cycles counter"
        );
    }

    #[test]
    fn buckets_partition_cycles_on_every_preset() {
        for (trace, mma_only) in [
            (alu_trace(1000), false),
            (chase_trace(), false),
            (mma_cold_trace(), true), // P9 has no MMA unit to run it on
        ] {
            for cfg in [CoreConfig::power9(), CoreConfig::power10()] {
                if mma_only && cfg.mma.is_none() {
                    continue;
                }
                for sched in [Scheduler::Polled, Scheduler::EventDriven] {
                    let mut cfg = cfg.clone();
                    cfg.scheduler = sched;
                    let r = Core::new(cfg).run(vec![trace.clone()], 10_000_000);
                    assert_partitions(&r);
                }
            }
        }
    }

    #[test]
    fn memory_bound_code_attributes_to_memory() {
        let mut cfg = CoreConfig::power10();
        cfg.prefetch_streams = 0;
        let r = Core::new(cfg).run(vec![chase_trace()], 10_000_000);
        assert_partitions(&r);
        assert!(
            r.attribution.memory_bound > r.activity.cycles / 2,
            "a page-striding pointer chase should be mostly memory-bound: {:?} of {} cycles",
            r.attribution,
            r.activity.cycles
        );
    }

    #[test]
    fn cold_mma_start_attributes_gated_cycles() {
        let r = Core::new(CoreConfig::power10()).run(vec![mma_cold_trace()], 1_000_000);
        assert_partitions(&r);
        assert!(
            r.attribution.mma_gated > 0,
            "a cold MMA burst must show gated cycles: {:?}",
            r.attribution
        );
    }

    #[test]
    fn compute_code_is_mostly_active() {
        let r = Core::new(CoreConfig::power10()).run(vec![alu_trace(2000)], 10_000_000);
        assert_partitions(&r);
        assert!(
            r.attribution.active > r.activity.cycles / 2,
            "an L1-resident ALU loop should be mostly active: {:?}",
            r.attribution
        );
    }

    #[test]
    fn attribution_identical_with_observer_replay() {
        // The observer path replays fast-forwarded stretches one cycle at
        // a time; the attribution must come out the same either way.
        let mut cfg = CoreConfig::power10();
        cfg.scheduler = Scheduler::EventDriven;
        let plain = Core::new(cfg.clone()).run(vec![chase_trace()], 10_000_000);
        let observed = Core::new(cfg).run_observed(vec![chase_trace()], 10_000_000, |_, _| {});
        assert_eq!(plain.attribution, observed.attribution);
        assert_partitions(&observed);
    }
}
