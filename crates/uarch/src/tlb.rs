//! Address translation: ERAT (effective-to-real address translation
//! cache) and TLB.
//!
//! The paper calls out that effective-to-real translation is a relatively
//! power-hungry operation that POWER9 performs on *every* access to its
//! real-address-tagged L1 caches, while POWER10's EA-tagged L1 needs it
//! only on L1 misses (§II-B). The pipeline model decides *when* to call
//! [`Mmu::translate`]; this module models *what happens* when it is called
//! and counts the lookups the power model charges for.

use crate::config::CoreConfig;
use crate::stats::Activity;

const PAGE_SHIFT: u32 = 16; // 64 KiB pages (common AIX/Linux-on-Power size)

/// Which side of the machine a translation serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateSide {
    /// Instruction fetch.
    Inst,
    /// Data access.
    Data,
}

/// A fully-associative, true-LRU ERAT backed by a set-associative TLB.
#[derive(Debug, Clone)]
pub struct Mmu {
    /// ERAT pages in LRU order (front = most recent).
    erat: Vec<u64>,
    erat_capacity: usize,
    /// TLB: 4-way set-associative over page numbers.
    tlb: Vec<[u64; 4]>,
    tlb_sets: usize,
    erat_miss_latency: u32,
    walk_latency: u32,
}

impl Mmu {
    /// Builds the MMU from a core configuration.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        let tlb_sets = (cfg.tlb_entries as usize / 4).max(1);
        Mmu {
            erat: Vec::with_capacity(cfg.erat_entries as usize),
            erat_capacity: cfg.erat_entries as usize,
            tlb: vec![[u64::MAX; 4]; tlb_sets],
            tlb_sets,
            erat_miss_latency: 8,
            walk_latency: cfg.walk_latency,
        }
    }

    /// Translates the address, returning the *extra* latency beyond a hit
    /// (0 on ERAT hit) and updating counters.
    pub fn translate(&mut self, addr: u64, side: TranslateSide, act: &mut Activity) -> u32 {
        match side {
            TranslateSide::Inst => act.ierat_lookups += 1,
            TranslateSide::Data => act.derat_lookups += 1,
        }
        let page = addr >> PAGE_SHIFT;
        // ERAT: move-to-front LRU.
        if let Some(pos) = self.erat.iter().position(|&p| p == page) {
            if pos != 0 {
                let p = self.erat.remove(pos);
                self.erat.insert(0, p);
            }
            return 0;
        }
        act.erat_misses += 1;
        // Fill ERAT.
        if self.erat.len() == self.erat_capacity {
            self.erat.pop();
        }
        self.erat.insert(0, page);
        // TLB lookup.
        let set = (page as usize) % self.tlb_sets;
        let ways = &mut self.tlb[set];
        if let Some(pos) = ways.iter().position(|&p| p == page) {
            // Move-to-front within the set (approximate LRU).
            ways[..=pos].rotate_right(1);
            return self.erat_miss_latency;
        }
        act.tlb_misses += 1;
        // Walk + fill TLB (evict last way).
        ways.rotate_right(1);
        ways[0] = page;
        self.erat_miss_latency + self.walk_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Mmu {
        let mut cfg = CoreConfig::power9();
        cfg.erat_entries = 4;
        cfg.tlb_entries = 16; // 4 sets x 4 ways
        Mmu::new(&cfg)
    }

    const PAGE: u64 = 1 << PAGE_SHIFT;

    #[test]
    fn erat_hit_costs_nothing_after_first_access() {
        let mut m = mmu();
        let mut act = Activity::default();
        let cold = m.translate(0x10_0000, TranslateSide::Data, &mut act);
        assert!(cold > 0);
        let warm = m.translate(0x10_0008, TranslateSide::Data, &mut act);
        assert_eq!(warm, 0);
        assert_eq!(act.derat_lookups, 2);
        assert_eq!(act.erat_misses, 1);
    }

    #[test]
    fn erat_capacity_evicts_lru() {
        let mut m = mmu();
        let mut act = Activity::default();
        for i in 0..4u64 {
            m.translate(i * PAGE, TranslateSide::Data, &mut act);
        }
        // Touch page 0 to make page 1 the LRU.
        m.translate(0, TranslateSide::Data, &mut act);
        // New page evicts page 1 from ERAT.
        m.translate(9 * PAGE, TranslateSide::Data, &mut act);
        let before = act.erat_misses;
        m.translate(PAGE, TranslateSide::Data, &mut act); // page 1: ERAT miss
        assert_eq!(act.erat_misses, before + 1);
    }

    #[test]
    fn tlb_caches_walks() {
        let mut m = mmu();
        let mut act = Activity::default();
        let first = m.translate(5 * PAGE, TranslateSide::Data, &mut act);
        assert_eq!(act.tlb_misses, 1);
        // Evict from the small ERAT but not the TLB.
        for i in 10..14u64 {
            m.translate(i * PAGE, TranslateSide::Data, &mut act);
        }
        let again = m.translate(5 * PAGE, TranslateSide::Data, &mut act);
        assert!(again < first, "TLB hit must be cheaper than a walk");
    }

    #[test]
    fn inst_and_data_sides_counted_separately() {
        let mut m = mmu();
        let mut act = Activity::default();
        m.translate(0, TranslateSide::Inst, &mut act);
        m.translate(0, TranslateSide::Data, &mut act);
        assert_eq!(act.ierat_lookups, 1);
        assert_eq!(act.derat_lookups, 1);
    }

    #[test]
    fn bigger_tlb_walks_less_on_page_sweep() {
        let mut small_cfg = CoreConfig::power9();
        small_cfg.tlb_entries = 16;
        small_cfg.erat_entries = 4; // keep the ERAT from hiding the TLB
        let mut big_cfg = CoreConfig::power9();
        big_cfg.tlb_entries = 256;
        big_cfg.erat_entries = 4;
        let mut small = Mmu::new(&small_cfg);
        let mut big = Mmu::new(&big_cfg);
        let mut act_s = Activity::default();
        let mut act_b = Activity::default();
        // Two sweeps over 64 pages: second sweep hits in the big TLB only.
        for _ in 0..2 {
            for i in 0..64u64 {
                small.translate(i * PAGE, TranslateSide::Data, &mut act_s);
                big.translate(i * PAGE, TranslateSide::Data, &mut act_b);
            }
        }
        assert!(act_b.tlb_misses < act_s.tlb_misses);
    }
}
