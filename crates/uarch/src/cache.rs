//! Set-associative caches, the three-level hierarchy, and the stream
//! prefetcher.
//!
//! The hierarchy is modeled inclusively: a miss at level N fills levels
//! N and above. Latencies are the configured hit latencies of the level
//! that serviced the access (plus memory latency when everything misses).

use crate::config::{CacheConfig, CoreConfig};
use crate::stats::Activity;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    /// Set when the line was brought in by the prefetcher and not yet used.
    prefetched: bool,
}

/// A set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    sets: u64,
    ways: usize,
    line_shift: u32,
    stamp: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the hit line had been installed by the prefetcher and this
    /// is its first demand use.
    pub prefetch_hit: bool,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            lines: vec![Line::default(); (sets as usize) * cfg.ways as usize],
            sets,
            ways: cfg.ways as usize,
            line_shift: cfg.line_bytes.trailing_zeros(),
            stamp: 0,
        }
    }

    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr % self.sets) as usize;
        (set * self.ways, line_addr / self.sets)
    }

    /// Accesses `addr`: on miss, allocates the line (LRU victim).
    pub fn access(&mut self, addr: u64) -> CacheOutcome {
        self.access_inner(addr, false)
    }

    /// Installs `addr` as a prefetch (no demand-use semantics). Returns
    /// `true` if the line was already present.
    pub fn prefetch(&mut self, addr: u64) -> bool {
        self.access_inner(addr, true).hit
    }

    fn access_inner(&mut self, addr: u64, is_prefetch: bool) -> CacheOutcome {
        self.stamp += 1;
        let (base, tag) = self.set_range(addr);
        let ways = &mut self.lines[base..base + self.ways];
        // Hit?
        for l in ways.iter_mut() {
            if l.valid && l.tag == tag {
                l.lru = self.stamp;
                let was_prefetched = l.prefetched;
                if !is_prefetch {
                    l.prefetched = false;
                }
                return CacheOutcome {
                    hit: true,
                    prefetch_hit: was_prefetched && !is_prefetch,
                };
            }
        }
        // Miss: evict LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways >= 1");
        *victim = Line {
            tag,
            valid: true,
            lru: self.stamp,
            prefetched: is_prefetch,
        };
        CacheOutcome {
            hit: false,
            prefetch_hit: false,
        }
    }

    /// Whether `addr` is currently resident (no state change).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    next_line: u64,
    dir: i64,
    confidence: u8,
    valid: bool,
    lru: u64,
}

/// A stride-1 stream prefetcher with a fixed number of streams
/// (POWER10: 16, POWER9: 8 in this model).
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    stamp: u64,
    /// Prefetch depth: how many lines ahead to run.
    depth: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with `streams` stream slots (0 disables).
    #[must_use]
    pub fn new(streams: u32) -> Self {
        StreamPrefetcher {
            streams: vec![Stream::default(); streams as usize],
            stamp: 0,
            depth: 4,
        }
    }

    /// Observes a demand miss at `line_addr` (line-granular address) and
    /// returns the line addresses to prefetch.
    pub fn observe_miss(&mut self, line_addr: u64) -> Vec<u64> {
        if self.streams.is_empty() {
            return Vec::new();
        }
        self.stamp += 1;
        // Existing stream this miss extends?
        for s in &mut self.streams {
            if s.valid && line_addr == s.next_line {
                s.confidence = (s.confidence + 1).min(4);
                s.lru = self.stamp;
                let dir = s.dir;
                s.next_line = line_addr.wrapping_add(dir as u64);
                if s.confidence >= 2 {
                    return (1..=self.depth)
                        .map(|k| line_addr.wrapping_add((dir * k as i64) as u64))
                        .collect();
                }
                return Vec::new();
            }
        }
        // Allocate ascending and mark neighbour expectations.
        let victim = self
            .streams
            .iter_mut()
            .min_by_key(|s| if s.valid { s.lru } else { 0 })
            .expect("streams >= 1");
        *victim = Stream {
            next_line: line_addr + 1,
            dir: 1,
            confidence: 0,
            valid: true,
            lru: self.stamp,
        };
        Vec::new()
    }
}

/// The level that serviced a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// L1 data cache hit.
    L1,
    /// L2 hit.
    L2,
    /// L3 hit.
    L3,
    /// Serviced from memory.
    Mem,
}

/// The unified memory hierarchy used by the fetch and load/store pipelines.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    prefetcher: StreamPrefetcher,
    l1i_latency: u32,
    l1d_latency: u32,
    l2_latency: u32,
    l3_latency: u32,
    mem_latency: u32,
    perfect_l2: bool,
    line_shift: u32,
}

impl MemHierarchy {
    /// Builds the hierarchy from a core configuration.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        MemHierarchy {
            l1i: Cache::new(&cfg.l1i),
            l1d: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            l3: Cache::new(&cfg.l3),
            prefetcher: StreamPrefetcher::new(cfg.prefetch_streams),
            l1i_latency: cfg.l1i.latency,
            l1d_latency: cfg.l1d.latency,
            l2_latency: cfg.l2.latency,
            l3_latency: cfg.l3.latency,
            mem_latency: cfg.mem_latency,
            perfect_l2: cfg.perfect_l2,
            line_shift: cfg.l1d.line_bytes.trailing_zeros(),
        }
    }

    /// Performs a data access, updating counters; returns the total
    /// latency and the servicing level.
    pub fn access_data(&mut self, addr: u64, act: &mut Activity) -> (u32, HitLevel) {
        act.l1d_accesses += 1;
        let o = self.l1d.access(addr);
        if o.prefetch_hit {
            act.prefetch_hits += 1;
        }
        if o.hit {
            return (self.l1d_latency, HitLevel::L1);
        }
        act.l1d_misses += 1;
        // Prefetcher observes L1 demand misses.
        let line = addr >> self.line_shift;
        for pf_line in self.prefetcher.observe_miss(line) {
            let pf_addr = pf_line << self.line_shift;
            if !self.l1d.probe(pf_addr) {
                act.prefetches_issued += 1;
                self.l1d.prefetch(pf_addr);
                self.l2.prefetch(pf_addr);
            }
        }
        let (lat, lvl) = self.lower_levels(addr, act);
        (self.l1d_latency + lat, lvl)
    }

    /// Performs an instruction fetch access; returns latency and whether
    /// it hit in the L1I.
    pub fn access_inst(&mut self, addr: u64, act: &mut Activity) -> (u32, bool) {
        act.icache_accesses += 1;
        if self.l1i.access(addr).hit {
            return (self.l1i_latency, true);
        }
        act.icache_misses += 1;
        let (lat, _) = self.lower_levels(addr, act);
        (self.l1i_latency + lat, false)
    }

    fn lower_levels(&mut self, addr: u64, act: &mut Activity) -> (u32, HitLevel) {
        act.l2_accesses += 1;
        if self.perfect_l2 || self.l2.access(addr).hit {
            return (self.l2_latency, HitLevel::L2);
        }
        act.l2_misses += 1;
        act.l3_accesses += 1;
        if self.l3.access(addr).hit {
            return (self.l3_latency, HitLevel::L3);
        }
        act.l3_misses += 1;
        (self.mem_latency, HitLevel::Mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(&CacheConfig {
            size_bytes: 4 * 128 * 2, // 2 sets, 4 ways
            ways: 4,
            line_bytes: 128,
            latency: 1,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache();
        assert!(!c.access(0x1000).hit);
        assert!(c.access(0x1000).hit);
        assert!(c.access(0x1040).hit); // same 128B line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        // Fill one set: with 2 sets and 128B lines, same set = stride 256.
        for i in 0..4u64 {
            c.access(i * 256);
        }
        c.access(0); // refresh line 0
        c.access(4 * 256); // evicts line at 256 (LRU), not 0
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(4 * 256));
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = small_cache();
        assert!(!c.probe(0x2000));
        assert!(!c.access(0x2000).hit);
    }

    #[test]
    fn prefetched_line_first_use_is_flagged_once() {
        let mut c = small_cache();
        c.prefetch(0x3000);
        let first = c.access(0x3000);
        assert!(first.hit && first.prefetch_hit);
        let second = c.access(0x3000);
        assert!(second.hit && !second.prefetch_hit);
    }

    #[test]
    fn stream_prefetcher_detects_ascending_stream() {
        let mut p = StreamPrefetcher::new(4);
        assert!(p.observe_miss(100).is_empty()); // allocate
        assert!(p.observe_miss(101).is_empty()); // confidence 1
        let pf = p.observe_miss(102); // confidence 2 -> fire
        assert_eq!(pf, vec![103, 104, 105, 106]);
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StreamPrefetcher::new(0);
        assert!(p.observe_miss(1).is_empty());
        assert!(p.observe_miss(2).is_empty());
        assert!(p.observe_miss(3).is_empty());
    }

    #[test]
    fn hierarchy_counts_levels() {
        let cfg = CoreConfig::power9();
        let mut h = MemHierarchy::new(&cfg);
        let mut act = Activity::default();
        let (lat, lvl) = h.access_data(0x10_0000, &mut act);
        assert_eq!(lvl, HitLevel::Mem);
        assert_eq!(lat, cfg.l1d.latency + cfg.mem_latency);
        assert_eq!(act.l1d_misses, 1);
        assert_eq!(act.l2_misses, 1);
        assert_eq!(act.l3_misses, 1);
        let (lat2, lvl2) = h.access_data(0x10_0000, &mut act);
        assert_eq!(lvl2, HitLevel::L1);
        assert_eq!(lat2, cfg.l1d.latency);
        assert_eq!(act.l1d_accesses, 2);
        assert_eq!(act.l1d_misses, 1);
    }

    #[test]
    fn perfect_l2_never_misses_beyond_l2() {
        let mut cfg = CoreConfig::power9();
        cfg.perfect_l2 = true;
        let mut h = MemHierarchy::new(&cfg);
        let mut act = Activity::default();
        for i in 0..10_000u64 {
            let (_, lvl) = h.access_data(i * 4096, &mut act);
            assert!(lvl == HitLevel::L1 || lvl == HitLevel::L2);
        }
        assert_eq!(act.l3_accesses, 0);
    }

    #[test]
    fn inst_side_counts_separately() {
        let cfg = CoreConfig::power9();
        let mut h = MemHierarchy::new(&cfg);
        let mut act = Activity::default();
        let (_, hit) = h.access_inst(0x1_0000, &mut act);
        assert!(!hit);
        let (lat, hit2) = h.access_inst(0x1_0000, &mut act);
        assert!(hit2);
        assert_eq!(lat, cfg.l1i.latency);
        assert_eq!(act.icache_accesses, 2);
        assert_eq!(act.icache_misses, 1);
        assert_eq!(act.l1d_accesses, 0);
    }

    #[test]
    fn sequential_stream_gets_prefetch_hits() {
        let cfg = CoreConfig::power9();
        let mut h = MemHierarchy::new(&cfg);
        let mut act = Activity::default();
        for i in 0..256u64 {
            h.access_data(0x40_0000 + i * 128, &mut act);
        }
        assert!(
            act.prefetches_issued > 0,
            "prefetcher must fire on a stream"
        );
        assert!(act.prefetch_hits > 0, "prefetched lines must get used");
        // With prefetching, misses should be well below 256.
        assert!(
            act.l1d_misses < 200,
            "prefetching should cut misses, got {}",
            act.l1d_misses
        );
    }
}
