//! Functional warming: timing-free replay of ops through the
//! long-lived microarchitectural state (caches, TLBs, branch predictor).
//!
//! Sampled simulation measures only representative intervals in detail.
//! Cache and predictor state, however, warms over timescales far longer
//! than any affordable detailed warmup prefix (a pointer chase over a
//! 288 KB footprint takes hundreds of thousands of ops to reach steady
//! state). The warmer replays every skipped op against just that state
//! — no pipeline, no timing — so each measured interval starts from the
//! cache/predictor contents the exact run would have had.

use crate::branch::BranchPredictor;
use crate::cache::MemHierarchy;
use crate::config::CoreConfig;
use crate::stats::Activity;
use crate::tlb::{Mmu, TranslateSide};
use p10_isa::{DynOp, TraceView};

/// The long-lived microarchitectural state shared between functional
/// warming and detailed simulation: branch predictor, cache hierarchy,
/// and TLBs. Cheap to clone; snapshot it at an interval boundary and
/// hand it to [`crate::Core::with_state`] to start a detailed run warm.
#[derive(Debug, Clone)]
pub struct WarmState {
    pub(crate) predictor: BranchPredictor,
    pub(crate) mem: MemHierarchy,
    pub(crate) mmu: Mmu,
}

impl WarmState {
    /// Cold state for the given configuration.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        WarmState {
            predictor: BranchPredictor::new(&cfg.branch),
            mem: MemHierarchy::new(cfg),
            mmu: Mmu::new(cfg),
        }
    }
}

/// Replays ops in program order, updating only a [`WarmState`].
///
/// Per op this touches the I-cache (once per fetched line, mirroring the
/// pipeline's one-access-per-fetch-group policy), trains the branch
/// predictor, and sends loads/stores through the TLB and data hierarchy.
/// All counter side effects land in a scratch [`Activity`] that is never
/// reported.
#[derive(Debug)]
pub struct FunctionalWarmer {
    state: WarmState,
    scratch: Activity,
    /// Last I-line accessed per thread, so sequential fetch within a
    /// line costs one access like the detailed fetch stage.
    last_iline: [u64; 4],
    iline_shift: u32,
    ops: u64,
}

impl FunctionalWarmer {
    /// A cold warmer for the given configuration.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        FunctionalWarmer {
            state: WarmState::new(cfg),
            scratch: Activity::default(),
            last_iline: [u64::MAX; 4],
            iline_shift: cfg.l1i.line_bytes.trailing_zeros(),
            ops: 0,
        }
    }

    /// Replays one trace slice per hardware thread through the state.
    pub fn observe(&mut self, views: &[TraceView]) {
        for (tid, v) in views.iter().enumerate() {
            let tid = tid.min(3);
            for op in v.ops() {
                self.observe_op(tid, op);
            }
        }
    }

    fn observe_op(&mut self, tid: usize, op: &DynOp) {
        self.ops += 1;
        let iline = op.pc >> self.iline_shift;
        if iline != self.last_iline[tid] {
            self.last_iline[tid] = iline;
            self.state
                .mmu
                .translate(op.pc, TranslateSide::Inst, &mut self.scratch);
            self.state.mem.access_inst(op.pc, &mut self.scratch);
        }
        if let Some(info) = op.branch {
            self.state
                .predictor
                .predict_and_train(tid, op.pc, &info, op.pc + 4);
        }
        if let Some(m) = op.mem {
            self.state
                .mmu
                .translate(m.addr, TranslateSide::Data, &mut self.scratch);
            self.state.mem.access_data(m.addr, &mut self.scratch);
        }
    }

    /// Ops replayed so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Cumulative counter side effects of the replay (cache and TLB
    /// access/miss counts). Timing-free, but exactly the signal that
    /// distinguishes a cold cache transient from steady state — diff
    /// snapshots of this between intervals to get per-interval rates.
    #[must_use]
    pub fn activity(&self) -> &Activity {
        &self.scratch
    }

    /// The current warmed state (snapshot with `.clone()`).
    #[must_use]
    pub fn state(&self) -> &WarmState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_isa::{MemRef, OpClass};

    fn chase_trace(lines: u64) -> TraceView {
        let ops: Vec<DynOp> = (0..lines)
            .map(|i| {
                let mut op = DynOp::new(i * 4, OpClass::Load);
                op.mem = Some(MemRef {
                    addr: (i * 131) % lines * 128,
                    size: 8,
                });
                op
            })
            .collect();
        TraceView::from(ops)
    }

    #[test]
    fn warming_fills_the_caches() {
        let cfg = CoreConfig::power10();
        let view = chase_trace(4096);
        let mut w = FunctionalWarmer::new(&cfg);
        w.observe(std::slice::from_ref(&view));
        assert_eq!(w.ops(), 4096);
        // After replaying the whole footprint (512 KB — larger than L1,
        // within L2), a second pass should hit overwhelmingly below L1:
        // replay again and compare the scratch L2-miss deltas.
        let before = w.scratch.l2_misses;
        w.observe(&[view]);
        let second_pass = w.scratch.l2_misses - before;
        assert!(
            second_pass * 4 < before,
            "second pass misses {second_pass} not << first pass {before}"
        );
    }

    #[test]
    fn warm_state_clones_are_independent() {
        let cfg = CoreConfig::power10();
        let mut w = FunctionalWarmer::new(&cfg);
        let cold = w.state().clone();
        w.observe(&[chase_trace(512)]);
        let mut scratch = Activity::default();
        let mut warm = w.state().clone();
        let mut cold = cold;
        let (_, warm_lvl) = warm.mem.access_data(0, &mut scratch);
        let (_, cold_lvl) = cold.mem.access_data(0, &mut scratch);
        assert_ne!(
            (warm_lvl, cold_lvl),
            (crate::cache::HitLevel::Mem, crate::cache::HitLevel::L1),
            "sanity: warm state should not be colder than cold state"
        );
    }
}
