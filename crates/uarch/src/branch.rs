//! Branch prediction.
//!
//! POWER10 improved branch prediction through new direction and indirect
//! target predictors plus doubling of selective resources, cutting wasted
//! (flushed) instructions by 25% on SPECint relative to POWER9 (§II-B).
//! The model captures that with:
//!
//! * a gshare-style base direction predictor (table size = configuration),
//! * an optional tagged long-history component ("TAGE-lite") that POWER10
//!   enables,
//! * an indirect target cache indexed with path history, and
//! * a return-address stack.
//!
//! Prediction and training happen at fetch (immediate-update trace-driven
//! simplification); the pipeline charges the redirect penalty when the
//! branch executes.

use crate::config::BranchConfig;
use p10_isa::{BranchInfo, BranchKind};
use serde::{Deserialize, Serialize};

/// Outcome of one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prediction {
    /// Whether direction and target were both predicted correctly.
    pub correct: bool,
    /// Whether this branch consulted the dynamic predictor (unconditional
    /// direct branches do not).
    pub predicted: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    ctr: i8,
    valid: bool,
}

/// The per-core branch prediction unit (tables shared across threads,
/// history kept per thread — matching real SMT designs).
///
/// Direction prediction is a classic combining predictor: a PC-indexed
/// bimodal table and a history-hashed gshare table, arbitrated by a
/// PC-indexed chooser. POWER10's new predictors are modeled as an
/// additional *tagged long-history* component that overrides on tag hit.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BranchConfig,
    /// 2-bit saturating counters, PC-indexed.
    bimodal: Vec<u8>,
    /// 2-bit saturating counters, history-hashed.
    gshare: Vec<u8>,
    /// 2-bit chooser: <2 trusts bimodal, >=2 trusts gshare.
    chooser: Vec<u8>,
    /// Tagged long-history component (present iff `cfg.long_history`).
    tage: Vec<TageEntry>,
    /// Indirect target cache.
    indirect: Vec<u64>,
    /// Per-thread return stacks.
    ras: Vec<Vec<u64>>,
    /// Per-thread global history.
    history: Vec<u64>,
    /// Per-branch-site local history (shared, pc-indexed) feeding the
    /// long-history component.
    local_hist: Vec<u64>,
    /// Per-thread path history (for indirect indexing).
    path: Vec<u64>,
}

const MAX_THREADS: usize = 4;
/// History bits folded into the gshare index.
const GSHARE_HIST_BITS: u32 = 12;
/// Path-history bits for indirect prediction (small so that repeating
/// call sequences converge to a steady-state path value quickly).
const PATH_BITS: u32 = 15;

impl BranchPredictor {
    /// Creates a predictor with the given resources.
    #[must_use]
    pub fn new(cfg: &BranchConfig) -> Self {
        let tage_size = cfg.long_history_entries as usize;
        let n = (cfg.direction_entries as usize).max(1);
        BranchPredictor {
            cfg: *cfg,
            bimodal: vec![1; n], // weakly not-taken
            gshare: vec![1; n],
            chooser: vec![0; n], // strongly trust bimodal initially
            tage: vec![TageEntry::default(); tage_size],
            indirect: vec![0; (cfg.indirect_entries as usize).max(1)],
            ras: vec![Vec::new(); MAX_THREADS],
            history: vec![0; MAX_THREADS],
            local_hist: vec![0; n.min(1024)],
            path: vec![0; MAX_THREADS],
        }
    }

    /// The configured mispredict redirect penalty in cycles.
    #[must_use]
    pub fn mispredict_penalty(&self) -> u32 {
        self.cfg.mispredict_penalty
    }

    fn pc_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize % self.bimodal.len()
    }

    fn gshare_index(&self, tid: usize, pc: u64) -> usize {
        let h = self.history[tid] & ((1 << GSHARE_HIST_BITS) - 1);
        ((pc >> 2) ^ h) as usize % self.gshare.len()
    }

    fn local_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize % self.local_hist.len()
    }

    /// The long-history component is keyed on *local* (per-branch-site)
    /// history, so one branch's long-period pattern is not polluted by
    /// other branches' outcomes.
    fn tage_index(&self, pc: u64, local: u64) -> usize {
        let h = local & ((1u64 << self.cfg.long_history_bits.min(63)) - 1);
        ((pc >> 2)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(h.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))) as usize
            % self.tage.len()
    }

    fn tage_tag(&self, pc: u64, local: u64) -> u16 {
        let h = local & ((1u64 << self.cfg.long_history_bits.min(63)) - 1);
        (((pc >> 2) ^ (h >> 3) ^ (h >> 17) ^ h) & 0xffff) as u16
    }

    fn indirect_index(&self, tid: usize, pc: u64) -> usize {
        // The path-context window is a design parameter: POWER9 uses very
        // little (count-cache style); POWER10's new indirect predictor
        // disambiguates repeating dispatch sequences with more context.
        let mask = (1u64 << self.cfg.indirect_path_bits.min(32)) - 1;
        let p = self.path[tid] & mask;
        ((pc >> 2) ^ p) as usize % self.indirect.len()
    }

    /// Predicts the branch described by `info` at `pc` for thread `tid`,
    /// trains the predictor with the actual outcome, and reports whether
    /// the prediction was correct.
    ///
    /// `fallthrough` is the sequential next-instruction address (the
    /// not-taken target).
    ///
    /// # Panics
    ///
    /// Panics if `tid >= 4`.
    pub fn predict_and_train(
        &mut self,
        tid: usize,
        pc: u64,
        info: &BranchInfo,
        fallthrough: u64,
    ) -> Prediction {
        assert!(tid < MAX_THREADS);
        match info.kind {
            BranchKind::Direct => Prediction {
                correct: true,
                predicted: false,
            },
            BranchKind::Call => {
                let stack = &mut self.ras[tid];
                if stack.len() >= self.cfg.return_stack as usize {
                    stack.remove(0);
                }
                stack.push(fallthrough);
                Prediction {
                    correct: true,
                    predicted: false,
                }
            }
            BranchKind::Return => {
                let predicted_target = self.ras[tid].pop();
                Prediction {
                    correct: predicted_target == Some(info.target),
                    predicted: true,
                }
            }
            BranchKind::Conditional | BranchKind::Counter => {
                let correct = self.predict_direction(tid, pc, info.taken);
                self.note_history(tid, pc, info.taken);
                Prediction {
                    correct,
                    predicted: true,
                }
            }
            BranchKind::Indirect => {
                let idx = self.indirect_index(tid, pc);
                let correct = self.indirect[idx] == info.target;
                self.indirect[idx] = info.target;
                // ITTAGE-style: fold the resolved *target* into the path
                // so repeating target sequences become predictable.
                self.note_path(tid, pc ^ (info.target >> 1));
                Prediction {
                    correct,
                    predicted: true,
                }
            }
        }
    }

    fn predict_direction(&mut self, tid: usize, pc: u64, taken: bool) -> bool {
        let pi = self.pc_index(pc);
        let gi = self.gshare_index(tid, pc);
        let bimodal_pred = self.bimodal[pi] >= 2;
        let gshare_pred = self.gshare[gi] >= 2;
        let mut pred = if self.chooser[pi] >= 2 {
            gshare_pred
        } else {
            bimodal_pred
        };

        // Long-history component (if present) overrides on tag hit.
        let local = if self.local_hist.is_empty() {
            0
        } else {
            self.local_hist[self.local_index(pc)]
        };
        let mut used_tage = false;
        if !self.tage.is_empty() {
            let ti = self.tage_index(pc, local);
            let tag = self.tage_tag(pc, local);
            let e = self.tage[ti];
            if e.valid && e.tag == tag {
                pred = e.ctr >= 0;
                used_tage = true;
            }
        }
        let correct = pred == taken;

        // Train the component tables.
        let bump = |c: &mut u8| {
            if taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        };
        bump(&mut self.bimodal[pi]);
        bump(&mut self.gshare[gi]);
        // Chooser trains toward whichever component was right (only when
        // they disagree).
        if bimodal_pred != gshare_pred {
            let ch = &mut self.chooser[pi];
            if gshare_pred == taken {
                *ch = (*ch + 1).min(3);
            } else {
                *ch = ch.saturating_sub(1);
            }
        }

        // Train / allocate the long-history entry.
        if !self.tage.is_empty() {
            let ti = self.tage_index(pc, local);
            let tag = self.tage_tag(pc, local);
            let e = &mut self.tage[ti];
            if e.valid && e.tag == tag {
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
            } else if !correct && !used_tage {
                // Allocate on a base-predictor mispredict.
                *e = TageEntry {
                    tag,
                    ctr: if taken { 0 } else { -1 },
                    valid: true,
                };
            }
        }
        correct
    }

    fn note_history(&mut self, tid: usize, pc: u64, taken: bool) {
        self.history[tid] = (self.history[tid] << 1) | u64::from(taken);
        if !self.local_hist.is_empty() {
            let li = self.local_index(pc);
            self.local_hist[li] = (self.local_hist[li] << 1) | u64::from(taken);
        }
    }

    /// Path history records *indirect* control flow only (the context an
    /// ITTAGE-style target predictor keys on); calls/returns are handled
    /// by the return stack and would dilute the dispatch context.
    fn note_path(&mut self, tid: usize, pc: u64) {
        self.path[tid] = ((self.path[tid] << 3) ^ (pc >> 2)) & ((1 << PATH_BITS) - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(long_history: bool) -> BranchConfig {
        BranchConfig {
            direction_entries: 1024,
            long_history_entries: if long_history { 2048 } else { 0 },
            long_history_bits: 32,
            indirect_entries: 64,
            indirect_path_bits: 9,
            return_stack: 8,
            mispredict_penalty: 13,
        }
    }

    fn cond(taken: bool, target: u64) -> BranchInfo {
        BranchInfo {
            kind: BranchKind::Conditional,
            taken,
            target,
        }
    }

    #[test]
    fn unconditional_direct_always_correct() {
        let mut p = BranchPredictor::new(&cfg(false));
        let info = BranchInfo {
            kind: BranchKind::Direct,
            taken: true,
            target: 0x100,
        };
        let r = p.predict_and_train(0, 0x10, &info, 0x14);
        assert!(r.correct);
        assert!(!r.predicted);
    }

    #[test]
    fn biased_branch_learned_quickly() {
        let mut p = BranchPredictor::new(&cfg(false));
        let mut wrong = 0;
        for _ in 0..100 {
            if !p
                .predict_and_train(0, 0x40, &cond(true, 0x100), 0x44)
                .correct
            {
                wrong += 1;
            }
        }
        assert!(
            wrong <= 2,
            "biased branch should mispredict <= 2 times, got {wrong}"
        );
    }

    #[test]
    fn alternating_pattern_learned_with_history() {
        // T,N,T,N … is captured by gshare once history differentiates.
        let mut p = BranchPredictor::new(&cfg(false));
        let mut wrong_late = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let r = p.predict_and_train(0, 0x80, &cond(taken, 0x200), 0x84);
            if i >= 100 && !r.correct {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late <= 5,
            "alternating pattern should be learned, late mispredicts = {wrong_late}"
        );
    }

    #[test]
    fn long_history_component_improves_long_period_pattern() {
        // Period-24 pattern: 23 taken then 1 not-taken. The base 2-bit
        // counter mispredicts the rare not-taken every period; the tagged
        // long-history component can learn it.
        let run = |long: bool| -> u32 {
            let mut p = BranchPredictor::new(&cfg(long));
            let mut wrong = 0;
            for i in 0..4800 {
                let taken = i % 24 != 23;
                let r = p.predict_and_train(0, 0xc0, &cond(taken, 0x300), 0xc4);
                if i >= 2400 && !r.correct {
                    wrong += 1;
                }
            }
            wrong
        };
        let base_wrong = run(false);
        let tage_wrong = run(true);
        assert!(
            tage_wrong < base_wrong,
            "long-history must help: base {base_wrong}, tage {tage_wrong}"
        );
    }

    #[test]
    fn return_stack_predicts_nested_returns() {
        let mut p = BranchPredictor::new(&cfg(false));
        let call = |p: &mut BranchPredictor, pc: u64, ret: u64| {
            p.predict_and_train(
                0,
                pc,
                &BranchInfo {
                    kind: BranchKind::Call,
                    taken: true,
                    target: 0x1000,
                },
                ret,
            );
        };
        call(&mut p, 0x10, 0x14);
        call(&mut p, 0x1008, 0x100c);
        let r1 = p.predict_and_train(
            0,
            0x2000,
            &BranchInfo {
                kind: BranchKind::Return,
                taken: true,
                target: 0x100c,
            },
            0x2004,
        );
        let r2 = p.predict_and_train(
            0,
            0x1010,
            &BranchInfo {
                kind: BranchKind::Return,
                taken: true,
                target: 0x14,
            },
            0x1014,
        );
        assert!(r1.correct);
        assert!(r2.correct);
    }

    #[test]
    fn return_without_call_mispredicts() {
        let mut p = BranchPredictor::new(&cfg(false));
        let r = p.predict_and_train(
            0,
            0x2000,
            &BranchInfo {
                kind: BranchKind::Return,
                taken: true,
                target: 0x14,
            },
            0x2004,
        );
        assert!(!r.correct);
    }

    #[test]
    fn indirect_repeating_target_learned() {
        let mut p = BranchPredictor::new(&cfg(false));
        let info = BranchInfo {
            kind: BranchKind::Indirect,
            taken: true,
            target: 0x4000,
        };
        let first = p.predict_and_train(0, 0x300, &info, 0x304);
        assert!(!first.correct); // cold
                                 // The path history converges to a steady state after a few
                                 // occurrences; from then on the target cache hits.
        let mut late_wrong = 0;
        for i in 0..30 {
            let r = p.predict_and_train(0, 0x300, &info, 0x304);
            if i >= 10 && !r.correct {
                late_wrong += 1;
            }
        }
        assert_eq!(
            late_wrong, 0,
            "steady-state indirect target must be predicted"
        );
    }

    #[test]
    fn threads_have_independent_history() {
        let mut p = BranchPredictor::new(&cfg(false));
        // Train thread 0 heavily taken at one PC; thread 1's RAS stays its own.
        for _ in 0..50 {
            p.predict_and_train(0, 0x40, &cond(true, 0x100), 0x44);
        }
        // Thread 1's return stack is empty even after thread 0 calls.
        p.predict_and_train(
            0,
            0x10,
            &BranchInfo {
                kind: BranchKind::Call,
                taken: true,
                target: 0x1000,
            },
            0x14,
        );
        let r = p.predict_and_train(
            1,
            0x2000,
            &BranchInfo {
                kind: BranchKind::Return,
                taken: true,
                target: 0x14,
            },
            0x2004,
        );
        assert!(!r.correct, "thread 1 must not see thread 0's RAS");
    }
}
