//! The MMA power-gating controller (paper §IV-A).
//!
//! The MMA can be dynamically powered off to save leakage (reclaimed by
//! WOF for frequency). The architecture avoids expensive state
//! save/restore (no array initialization or scan-ring restoration), and
//! provides *wake-up hint* instructions so software can hide the power-on
//! latency; firmware selects how long the unit must be idle before
//! gating.

use serde::{Deserialize, Serialize};

/// Controller parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GatingConfig {
    /// Idle cycles before the unit is powered off (firmware-selected).
    pub idle_threshold: u64,
    /// Cycles to power the unit back on.
    pub wake_latency: u64,
    /// Leakage power of the unit while on (saved while gated).
    pub unit_leakage: f64,
}

impl Default for GatingConfig {
    fn default() -> Self {
        GatingConfig {
            idle_threshold: 2_000,
            wake_latency: 64,
            unit_leakage: 5.0,
        }
    }
}

/// Events the controller observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmaEvent {
    /// An MMA compute/move instruction wants to execute at this cycle.
    Use(u64),
    /// A wake-up hint executed at this cycle.
    Hint(u64),
}

/// Result of replaying an event sequence through the controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatingOutcome {
    /// Cycles the unit spent powered off.
    pub gated_cycles: u64,
    /// Leakage-cycles saved (gated_cycles × unit leakage).
    pub leakage_saved: f64,
    /// Total stall cycles MMA uses spent waiting for power-on.
    pub wake_stall_cycles: u64,
    /// Number of power-off events.
    pub gate_events: u64,
}

/// Replays a sorted event sequence over `total_cycles` and reports the
/// savings/penalty balance.
///
/// # Panics
///
/// Panics if events are not sorted by cycle.
#[must_use]
pub fn simulate(cfg: &GatingConfig, events: &[MmaEvent], total_cycles: u64) -> GatingOutcome {
    let mut last_cycle = 0u64;
    // Unit starts powered off (nothing used it yet).
    let mut powered_until: Option<u64> = None; // Some(ready_at) while on/warming
    let mut last_use: Option<u64> = None;
    let mut gated_cycles = 0u64;
    let mut wake_stall = 0u64;
    let mut gate_events = 0u64;
    let mut on_since: Option<u64> = None;
    let mut ever_powered = false;

    let power_on = |at: u64,
                    powered_until: &mut Option<u64>,
                    on_since: &mut Option<u64>,
                    gated_cycles: &mut u64,
                    ever_powered: &mut bool| {
        if powered_until.is_none() {
            *powered_until = Some(at + cfg.wake_latency);
            *on_since = Some(at);
            if !*ever_powered {
                // The unit was gated from reset until now.
                *gated_cycles += at;
                *ever_powered = true;
            }
        }
    };

    for ev in events {
        let cycle = match *ev {
            MmaEvent::Use(c) | MmaEvent::Hint(c) => c,
        };
        assert!(cycle >= last_cycle, "events must be sorted");
        // Idle-gate check: if the unit has been on and idle long enough,
        // it powered off at last_use + threshold.
        if let (Some(ready), Some(used)) = (powered_until.as_ref().copied(), last_use) {
            let gate_at = used.max(ready) + cfg.idle_threshold;
            if cycle > gate_at {
                // It turned off in the interim.
                powered_until = None;
                on_since = None;
                gate_events += 1;
                gated_cycles += cycle - gate_at;
            }
        }
        match *ev {
            MmaEvent::Hint(c) => {
                power_on(
                    c,
                    &mut powered_until,
                    &mut on_since,
                    &mut gated_cycles,
                    &mut ever_powered,
                );
            }
            MmaEvent::Use(c) => {
                if powered_until.is_none() {
                    power_on(
                        c,
                        &mut powered_until,
                        &mut on_since,
                        &mut gated_cycles,
                        &mut ever_powered,
                    );
                }
                let ready = powered_until.expect("just powered on");
                if c < ready {
                    wake_stall += ready - c;
                }
                last_use = Some(c.max(ready));
            }
        }
        last_cycle = cycle;
    }
    // Tail: unit gates after the last use (+threshold) if still on.
    if let Some(used) = last_use {
        let gate_at = used + cfg.idle_threshold;
        if total_cycles > gate_at {
            gated_cycles += total_cycles - gate_at;
            gate_events += 1;
        }
    } else if on_since.is_none() {
        // Never used at all: gated the whole time.
        gated_cycles += total_cycles;
    }

    GatingOutcome {
        gated_cycles,
        leakage_saved: gated_cycles as f64 * cfg.unit_leakage,
        wake_stall_cycles: wake_stall,
        gate_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unused_unit_is_gated_the_whole_run() {
        let cfg = GatingConfig::default();
        let o = simulate(&cfg, &[], 100_000);
        assert_eq!(o.gated_cycles, 100_000);
        assert_eq!(o.wake_stall_cycles, 0);
        assert!((o.leakage_saved - 500_000.0).abs() < 1e-9);
    }

    #[test]
    fn cold_use_pays_wake_latency() {
        let cfg = GatingConfig::default();
        let o = simulate(&cfg, &[MmaEvent::Use(10_000)], 50_000);
        assert_eq!(o.wake_stall_cycles, cfg.wake_latency);
        // Gated before the use and after use+threshold.
        assert!(o.gated_cycles > 40_000);
    }

    #[test]
    fn hint_hides_wake_latency() {
        let cfg = GatingConfig::default();
        let hinted = simulate(
            &cfg,
            &[MmaEvent::Hint(9_900), MmaEvent::Use(10_000)],
            50_000,
        );
        assert_eq!(
            hinted.wake_stall_cycles, 0,
            "a hint {} cycles early must hide the {}-cycle wake",
            100, cfg.wake_latency
        );
    }

    #[test]
    fn back_to_back_uses_keep_the_unit_on() {
        let cfg = GatingConfig::default();
        let events: Vec<MmaEvent> = (0..50).map(|i| MmaEvent::Use(10_000 + i * 100)).collect();
        let o = simulate(&cfg, &events, 100_000);
        assert_eq!(
            o.wake_stall_cycles, cfg.wake_latency,
            "only the first use stalls"
        );
        assert_eq!(o.gate_events, 1, "one gate-off at the end");
    }

    #[test]
    fn longer_idle_threshold_trades_leakage_for_stalls() {
        let quick = GatingConfig {
            idle_threshold: 500,
            ..GatingConfig::default()
        };
        let lazy = GatingConfig {
            idle_threshold: 50_000,
            ..GatingConfig::default()
        };
        // Two bursts separated by a long gap.
        let mut events: Vec<MmaEvent> = (0..10).map(|i| MmaEvent::Use(1_000 + i * 10)).collect();
        events.extend((0..10).map(|i| MmaEvent::Use(80_000 + i * 10)));
        let q = simulate(&quick, &events, 120_000);
        let l = simulate(&lazy, &events, 120_000);
        assert!(
            q.leakage_saved > l.leakage_saved,
            "quick gating saves more leakage"
        );
        assert!(
            q.wake_stall_cycles >= l.wake_stall_cycles,
            "but may stall more on re-wake"
        );
    }
}
