//! Workload Optimized Frequency.
//!
//! The socket runs each workload at the highest frequency that keeps it
//! just under the power/thermal envelope (paper §IV-A). The inputs are
//! exactly what the paper describes: the workload's *effective
//! capacitance ratio* relative to the system design-point workload
//! (extracted via APEX + Einspower in the paper; via the activity/power
//! models here), and any leakage reclaimed by power-gating idle units
//! (the MMA). IBM's WOF is deterministic: same sort, same configuration,
//! same workload → same frequency.

use crate::dvfs::{scale_dynamic, scale_leakage, OperatingPoint, VfCurve};
use serde::{Deserialize, Serialize};

/// WOF solver configuration (the "sort" / offering parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WofConfig {
    /// Socket power budget (same relative units as the power model).
    pub power_budget: f64,
    /// Dynamic power of the *design-point* (TDP reference) workload at
    /// nominal frequency.
    pub ref_dynamic_power: f64,
    /// Leakage power at nominal voltage.
    pub leakage_power: f64,
    /// Voltage/frequency curve.
    pub vf: VfCurve,
    /// Minimum deliverable frequency (GHz).
    pub fmin: f64,
    /// Maximum boost frequency (GHz).
    pub fmax: f64,
}

impl WofConfig {
    /// A representative configuration whose design-point workload
    /// (`ceff = 1.0`) lands exactly at nominal frequency.
    #[must_use]
    pub fn typical() -> Self {
        let vf = VfCurve::nominal();
        let ref_dynamic = 100.0;
        let leakage = 20.0;
        WofConfig {
            power_budget: ref_dynamic + leakage,
            ref_dynamic_power: ref_dynamic,
            leakage_power: leakage,
            vf,
            fmin: 2.8,
            fmax: 4.8,
        }
    }
}

/// The WOF decision for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WofDecision {
    /// Chosen operating point.
    pub point: OperatingPoint,
    /// Frequency boost relative to nominal (1.0 = no boost).
    pub boost: f64,
    /// Projected total power at the chosen point.
    pub power: f64,
}

/// Total power at frequency `f` for a workload with the given effective
/// capacitance ratio; `reclaimed_leakage` is subtracted (power-gated
/// units).
fn power_at(cfg: &WofConfig, ceff_ratio: f64, reclaimed_leakage: f64, f: f64) -> f64 {
    let point = OperatingPoint::at(&cfg.vf, f);
    scale_dynamic(cfg.ref_dynamic_power * ceff_ratio, &cfg.vf, point)
        + scale_leakage(
            (cfg.leakage_power - reclaimed_leakage).max(0.0),
            &cfg.vf,
            point,
        )
}

/// Solves the WOF frequency for a workload.
///
/// `ceff_ratio` is the workload's effective capacitance relative to the
/// design-point workload (< 1 for lighter workloads, which therefore get
/// a boost). Deterministic bisection to 1 MHz.
#[must_use]
pub fn solve(cfg: &WofConfig, ceff_ratio: f64, reclaimed_leakage: f64) -> WofDecision {
    let (mut lo, mut hi) = (cfg.fmin, cfg.fmax);
    // If even fmax fits the budget, take it.
    let f = if power_at(cfg, ceff_ratio, reclaimed_leakage, hi) <= cfg.power_budget {
        hi
    } else if power_at(cfg, ceff_ratio, reclaimed_leakage, lo) > cfg.power_budget {
        lo // throttling must handle the rest (see `throttle`)
    } else {
        while hi - lo > 1e-3 {
            let mid = 0.5 * (lo + hi);
            if power_at(cfg, ceff_ratio, reclaimed_leakage, mid) <= cfg.power_budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    };
    WofDecision {
        point: OperatingPoint::at(&cfg.vf, f),
        boost: f / cfg.vf.f0,
        power: power_at(cfg, ceff_ratio, reclaimed_leakage, f),
    }
}

/// Computes a workload's effective capacitance ratio from measured
/// dynamic powers at iso voltage/frequency (workload / reference).
#[must_use]
pub fn ceff_ratio(workload_dynamic_power: f64, ref_dynamic_power: f64) -> f64 {
    workload_dynamic_power / ref_dynamic_power.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_point_workload_runs_at_nominal() {
        let cfg = WofConfig::typical();
        let d = solve(&cfg, 1.0, 0.0);
        assert!(
            (d.point.freq - cfg.vf.f0).abs() < 0.01,
            "ceff=1 must land at nominal, got {}",
            d.point.freq
        );
        assert!(d.power <= cfg.power_budget + 1e-6);
    }

    #[test]
    fn light_workloads_get_boosted() {
        let cfg = WofConfig::typical();
        let d = solve(&cfg, 0.7, 0.0);
        assert!(d.boost > 1.05, "light workload boost {}", d.boost);
        assert!(d.point.freq <= cfg.fmax);
        assert!(d.power <= cfg.power_budget + 1e-6);
    }

    #[test]
    fn heavy_workloads_clamp_to_fmin() {
        let cfg = WofConfig::typical();
        let d = solve(&cfg, 2.5, 0.0);
        assert!((d.point.freq - cfg.fmin).abs() < 1e-9);
        // At fmin the budget may still be exceeded — instruction
        // throttling takes over (paper §IV-B).
        assert!(d.power > 0.0);
    }

    #[test]
    fn mma_power_gating_buys_extra_frequency() {
        // Paper: the gated MMA's leakage "is instead applied to achieve
        // higher performance".
        let cfg = WofConfig::typical();
        let without = solve(&cfg, 0.95, 0.0);
        let with = solve(&cfg, 0.95, 4.0);
        assert!(
            with.point.freq > without.point.freq,
            "reclaimed leakage must raise WOF frequency: {} vs {}",
            without.point.freq,
            with.point.freq
        );
    }

    #[test]
    fn wof_is_deterministic() {
        let cfg = WofConfig::typical();
        let a = solve(&cfg, 0.83, 1.0);
        let b = solve(&cfg, 0.83, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn boost_is_monotone_in_lightness() {
        let cfg = WofConfig::typical();
        let mut last = f64::INFINITY;
        for ceff in [0.5, 0.7, 0.9, 1.1, 1.4] {
            let d = solve(&cfg, ceff, 0.0);
            assert!(d.point.freq <= last + 1e-9, "freq must fall as ceff rises");
            last = d.point.freq;
        }
    }
}
