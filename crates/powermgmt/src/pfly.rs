//! Power-Frequency Limited Yield (PFLY) and Core Limited Yield (CLY).
//!
//! The paper feeds APEX-based absolute power projections into PFLY/CLY
//! analysis to pick product offering points (frequency sorts and core
//! counts). Here a deterministic synthetic process population provides
//! per-chip frequency capability and leakage spread, and yields are
//! evaluated against candidate offerings.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One manufactured chip in the population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Chip {
    /// Per-core maximum frequency capability (GHz).
    pub core_fmax: Vec<f64>,
    /// Per-core leakage multiplier (1.0 = typical).
    pub core_leak: Vec<f64>,
    /// Cores that are functional at all.
    pub functional: Vec<bool>,
}

/// Process-variation population parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProcessParams {
    /// Cores fabricated per chip.
    pub cores_per_chip: usize,
    /// Mean core fmax (GHz).
    pub fmax_mean: f64,
    /// Fmax spread (uniform half-width, GHz).
    pub fmax_spread: f64,
    /// Leakage spread (uniform half-width around 1.0).
    pub leak_spread: f64,
    /// Probability a core is non-functional (defects).
    pub defect_rate: f64,
}

impl Default for ProcessParams {
    fn default() -> Self {
        ProcessParams {
            cores_per_chip: 16,
            fmax_mean: 4.2,
            fmax_spread: 0.5,
            leak_spread: 0.35,
            defect_rate: 0.04,
        }
    }
}

/// Generates a deterministic chip population.
#[must_use]
pub fn population(params: &ProcessParams, chips: usize, seed: u64) -> Vec<Chip> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..chips)
        .map(|_| {
            // Chip-level mean (die-to-die) plus core-level (within-die)
            // variation; fast silicon leaks more (classic correlation).
            let chip_speed: f64 = rng.gen_range(-1.0..1.0);
            let mut core_fmax = Vec::with_capacity(params.cores_per_chip);
            let mut core_leak = Vec::with_capacity(params.cores_per_chip);
            let mut functional = Vec::with_capacity(params.cores_per_chip);
            for _ in 0..params.cores_per_chip {
                let within: f64 = rng.gen_range(-0.5..0.5);
                let f = params.fmax_mean + params.fmax_spread * (0.7 * chip_speed + within);
                let leak =
                    1.0 + params.leak_spread * (0.6 * chip_speed + rng.gen_range(-0.4..0.4f64));
                core_fmax.push(f);
                core_leak.push(leak.max(0.3));
                functional.push(rng.gen::<f64>() >= params.defect_rate);
            }
            Chip {
                core_fmax,
                core_leak,
                functional,
            }
        })
        .collect()
}

/// A product offering point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Offering {
    /// Shipping frequency (GHz) every enabled core must sustain.
    pub freq: f64,
    /// Cores that must be enabled.
    pub enabled_cores: usize,
    /// Per-chip power limit at the shipping point.
    pub power_limit: f64,
    /// Per-core dynamic power at the shipping frequency (typical).
    pub core_dynamic_power: f64,
    /// Per-core leakage power (typical multiplier = 1.0).
    pub core_leakage_power: f64,
}

/// Yield results for one offering.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct YieldResult {
    /// Fraction of chips with enough functional cores (CLY).
    pub core_limited_yield: f64,
    /// Fraction of chips also meeting frequency and power (PFLY).
    pub power_freq_limited_yield: f64,
}

/// Evaluates an offering against a population.
///
/// A chip ships if it has `enabled_cores` functional cores that each
/// sustain `freq`, and the total power of the best such core subset fits
/// the power limit.
#[must_use]
pub fn evaluate(offering: &Offering, chips: &[Chip]) -> YieldResult {
    let mut cly = 0usize;
    let mut pfly = 0usize;
    for chip in chips {
        let functional: usize = chip.functional.iter().filter(|&&f| f).count();
        if functional >= offering.enabled_cores {
            cly += 1;
        } else {
            continue;
        }
        // Candidate cores meeting frequency, sorted by leakage (prefer
        // the coolest cores).
        let mut candidates: Vec<f64> = chip
            .core_fmax
            .iter()
            .zip(chip.core_leak.iter())
            .zip(chip.functional.iter())
            .filter(|((f, _), &ok)| ok && **f >= offering.freq)
            .map(|((_, leak), _)| *leak)
            .collect();
        if candidates.len() < offering.enabled_cores {
            continue;
        }
        candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let power: f64 = candidates[..offering.enabled_cores]
            .iter()
            .map(|leak| offering.core_dynamic_power + offering.core_leakage_power * leak)
            .sum();
        if power <= offering.power_limit {
            pfly += 1;
        }
    }
    let n = chips.len().max(1) as f64;
    YieldResult {
        core_limited_yield: cly as f64 / n,
        power_freq_limited_yield: pfly as f64 / n,
    }
}

/// Sweeps shipping frequency, producing the PFLY curve used for offering
/// selection.
#[must_use]
pub fn frequency_sweep(base: &Offering, chips: &[Chip], freqs: &[f64]) -> Vec<(f64, YieldResult)> {
    freqs
        .iter()
        .map(|&f| {
            let mut o = *base;
            o.freq = f;
            (f, evaluate(&o, chips))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_offering() -> Offering {
        Offering {
            freq: 4.0,
            enabled_cores: 12,
            power_limit: 12.0 * 14.0,
            core_dynamic_power: 10.0,
            core_leakage_power: 3.0,
        }
    }

    #[test]
    fn population_is_deterministic() {
        let p = ProcessParams::default();
        let a = population(&p, 50, 9);
        let b = population(&p, 50, 9);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[7].core_fmax, b[7].core_fmax);
    }

    #[test]
    fn pfly_never_exceeds_cly() {
        let chips = population(&ProcessParams::default(), 500, 1);
        let y = evaluate(&base_offering(), &chips);
        assert!(y.power_freq_limited_yield <= y.core_limited_yield);
        assert!(y.core_limited_yield > 0.5);
    }

    #[test]
    fn higher_frequency_lowers_yield() {
        let chips = population(&ProcessParams::default(), 500, 2);
        let sweep = frequency_sweep(&base_offering(), &chips, &[3.6, 4.0, 4.4, 4.8]);
        for pair in sweep.windows(2) {
            assert!(
                pair[0].1.power_freq_limited_yield >= pair[1].1.power_freq_limited_yield,
                "yield must not rise with frequency"
            );
        }
        assert!(sweep[0].1.power_freq_limited_yield > sweep[3].1.power_freq_limited_yield);
    }

    #[test]
    fn fewer_enabled_cores_raises_yield() {
        let chips = population(&ProcessParams::default(), 500, 3);
        let mut o = base_offering();
        let strict = evaluate(&o, &chips);
        o.enabled_cores = 8;
        o.power_limit = 8.0 * 14.0;
        let relaxed = evaluate(&o, &chips);
        assert!(relaxed.core_limited_yield >= strict.core_limited_yield);
    }

    #[test]
    fn tight_power_limit_cuts_pfly() {
        let chips = population(&ProcessParams::default(), 500, 4);
        let mut o = base_offering();
        let loose = evaluate(&o, &chips);
        o.power_limit *= 0.9;
        let tight = evaluate(&o, &chips);
        assert!(tight.power_freq_limited_yield < loose.power_freq_limited_yield);
        assert_eq!(tight.core_limited_yield, loose.core_limited_yield);
    }
}
