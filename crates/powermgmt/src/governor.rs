//! The firmware governor: the closed loop that ties WOF, the power
//! proxy, and instruction throttling together (the paper's OCC-style
//! §IV stack in one controller).
//!
//! Each control interval the governor:
//! 1. reads the power-proxy estimate for the last interval,
//! 2. updates its effective-capacitance estimate for the running
//!    workload (exponential smoothing — "faster learning" with a better
//!    proxy),
//! 3. re-solves the WOF frequency for that estimate,
//! 4. if the socket is already at Fmin and still over budget, engages
//!    the fine-grained instruction throttle instead.

use crate::dvfs::{scale_dynamic, scale_leakage, OperatingPoint};
use crate::throttle::FineThrottle;
use crate::wof::{solve, WofConfig};
use serde::{Deserialize, Serialize};

/// Governor configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// The WOF solver parameters (budget, VF curve, F range).
    pub wof: WofConfig,
    /// Smoothing factor for the Ceff estimate (0..1, higher = faster).
    pub ceff_alpha: f64,
    /// Throttle integral gain.
    pub throttle_gain: f64,
    /// Multiplicative proxy bias (1.0 = perfect proxy).
    pub proxy_bias: f64,
}

impl GovernorConfig {
    /// A typical configuration with a perfect proxy.
    #[must_use]
    pub fn typical() -> Self {
        GovernorConfig {
            wof: WofConfig::typical(),
            ceff_alpha: 0.35,
            throttle_gain: 0.3,
            proxy_bias: 1.0,
        }
    }
}

/// One interval of the governor trace.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GovernorSample {
    /// Chosen operating point.
    pub point: OperatingPoint,
    /// Throttle level in effect.
    pub throttle: f64,
    /// Actual total power this interval.
    pub power: f64,
    /// The governor's Ceff estimate.
    pub ceff_estimate: f64,
}

/// Runs the governor over a per-interval workload-intensity series
/// (`true Ceff` of whatever is running). Returns the control trace.
#[must_use]
pub fn run_governor(cfg: &GovernorConfig, ceff_series: &[f64]) -> Vec<GovernorSample> {
    let mut est = 1.0f64;
    let mut throttle = FineThrottle::new(cfg.wof.power_budget, cfg.throttle_gain);
    let mut out = Vec::with_capacity(ceff_series.len());
    for &true_ceff in ceff_series {
        // Decide the operating point from the current estimate.
        let decision = solve(&cfg.wof, est, 0.0);
        let at_fmin = (decision.point.freq - cfg.wof.fmin).abs() < 1e-6;

        // Actual power at that point for the *true* workload, reduced by
        // any throttling in effect.
        let dyn_p = scale_dynamic(
            cfg.wof.ref_dynamic_power * true_ceff,
            &cfg.wof.vf,
            decision.point,
        ) * (1.0 - throttle.level());
        let leak = scale_leakage(cfg.wof.leakage_power, &cfg.wof.vf, decision.point);
        let power = dyn_p + leak;

        // Proxy observation drives both loops.
        let observed = power * cfg.proxy_bias;
        if at_fmin {
            throttle.update(observed);
        } else if throttle.level() > 0.0 {
            // Frequency headroom exists again: release the throttle.
            throttle.update(0.0);
        }
        // Back out the Ceff the observation implies at this point, then
        // smooth.
        let implied = (observed - leak).max(0.0)
            / scale_dynamic(cfg.wof.ref_dynamic_power, &cfg.wof.vf, decision.point)
            / (1.0 - throttle.level()).max(0.05);
        if observed > cfg.wof.power_budget * 1.05 {
            // Asymmetric learning: react to overshoot immediately (the
            // budget is a hard limit); relax slowly on the way down.
            est = est.max(implied);
        } else {
            est = (1.0 - cfg.ceff_alpha) * est + cfg.ceff_alpha * implied;
        }

        out.push(GovernorSample {
            point: decision.point,
            throttle: throttle.level(),
            power,
            ceff_estimate: est,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_boosts_light_phases_and_stays_in_budget() {
        let cfg = GovernorConfig::typical();
        // Light phase, then heavy phase, then light again.
        let mut series = vec![0.6; 60];
        series.extend(vec![1.3; 60]);
        series.extend(vec![0.6; 60]);
        let trace = run_governor(&cfg, &series);

        // Steady-state light phase: boosted above nominal.
        let light = &trace[40..60];
        assert!(light.iter().all(|s| s.point.freq > cfg.wof.vf.f0 * 1.02));
        // Steady-state heavy phase: frequency pulled down.
        let heavy = &trace[100..120];
        assert!(heavy.iter().all(|s| s.point.freq < cfg.wof.vf.f0));
        // The phase switch produces one transient overshoot interval (the
        // decision predates the observation; sub-interval protection is
        // the droop sensor's job) — the governor must recover within a
        // few intervals and hold the budget in steady state.
        let over_intervals = trace
            .iter()
            .filter(|s| s.power > cfg.wof.power_budget * 1.10)
            .count();
        assert!(
            over_intervals <= 3,
            "overshoot must be transient, got {over_intervals} intervals"
        );
        let steady_heavy: f64 = heavy.iter().map(|s| s.power).sum::<f64>() / heavy.len() as f64;
        assert!(steady_heavy <= cfg.wof.power_budget * 1.02);
    }

    #[test]
    fn throttle_engages_only_at_fmin() {
        let cfg = GovernorConfig::typical();
        // A power virus far beyond what Fmin can absorb.
        let trace = run_governor(&cfg, &vec![3.0; 120]);
        let tail = &trace[80..];
        assert!(
            tail.iter()
                .all(|s| (s.point.freq - cfg.wof.fmin).abs() < 1e-6),
            "virus must pin the socket at Fmin"
        );
        assert!(
            tail.iter().all(|s| s.throttle > 0.1),
            "and the instruction throttle must engage"
        );
        let steady: f64 = tail.iter().map(|s| s.power).sum::<f64>() / tail.len() as f64;
        assert!(steady <= cfg.wof.power_budget * 1.05);
    }

    #[test]
    fn deterministic_boost_property() {
        // Same workload, same configuration => identical decisions (the
        // paper stresses WOF determinism as a customer requirement).
        let cfg = GovernorConfig::typical();
        let series = vec![0.8; 50];
        let a = run_governor(&cfg, &series);
        let b = run_governor(&cfg, &series);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.point, y.point);
            assert!((x.throttle - y.throttle).abs() < 1e-12);
        }
    }

    #[test]
    fn better_proxy_tracks_phases_faster() {
        let cfg_good = GovernorConfig::typical();
        let mut cfg_biased = GovernorConfig::typical();
        cfg_biased.proxy_bias = 0.7; // under-reading proxy
        let mut series = vec![0.6; 40];
        series.extend(vec![1.4; 80]);
        let good = run_governor(&cfg_good, &series);
        let biased = run_governor(&cfg_biased, &series);
        // The biased governor thinks the workload is lighter and
        // over-boosts during the heavy phase -> more power overshoot.
        let over = |t: &[GovernorSample]| {
            t[40..]
                .iter()
                .map(|s| (s.power - cfg_good.wof.power_budget).max(0.0))
                .sum::<f64>()
        };
        assert!(
            over(&biased) > over(&good),
            "biased proxy must overshoot more: {} vs {}",
            over(&biased),
            over(&good)
        );
    }
}
