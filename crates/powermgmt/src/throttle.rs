//! Core throttling: the fine-grained instruction-throttle control loop
//! with power-proxy feedback, and the coarse-grained droop response
//! driven by the Digital Droop Sensor (paper §IV-B).

use serde::{Deserialize, Serialize};

/// Fine-grained instruction throttle: an integral controller that trims
/// the dispatch rate to keep estimated power under a cap. Used when the
/// core must hold a fixed frequency or already sits at Fmin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineThrottle {
    /// Power cap.
    pub cap: f64,
    /// Integral gain.
    pub gain: f64,
    /// Current throttle level in [0, 0.95] (fraction of dispatch slots
    /// blocked).
    level: f64,
}

impl FineThrottle {
    /// Creates a controller for the given cap and gain.
    #[must_use]
    pub fn new(cap: f64, gain: f64) -> Self {
        FineThrottle {
            cap,
            gain,
            level: 0.0,
        }
    }

    /// Current throttle level.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// One control interval: `power_estimate` is the power-proxy reading
    /// for the last interval. Returns the new throttle level.
    pub fn update(&mut self, power_estimate: f64) -> f64 {
        let err = power_estimate - self.cap;
        self.level = (self.level + self.gain * err / self.cap.max(1e-12)).clamp(0.0, 0.95);
        self.level
    }
}

/// Simulates the closed loop: workload demand `demand[i]` is the
/// unthrottled power each interval; proxy error is a multiplicative bias
/// applied to the controller's observation (the paper: better proxies →
/// faster, more efficient adaptive control). Returns the per-interval
/// actual power.
#[must_use]
pub fn simulate_fine_loop(
    controller: &mut FineThrottle,
    demand: &[f64],
    proxy_bias: f64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(demand.len());
    for &d in demand {
        // Power scales with the un-blocked dispatch fraction.
        let actual = d * (1.0 - controller.level());
        out.push(actual);
        let observed = actual * proxy_bias;
        controller.update(observed);
    }
    out
}

/// The Digital Droop Sensor: detects timing-margin loss from a sudden
/// current swing (sub-nanosecond scale) and engages the coarse throttle.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DroopSensor {
    /// Voltage droop (fraction of nominal) that triggers the response.
    pub trigger: f64,
    /// Cycles the coarse throttle stays engaged per trigger.
    pub hold_cycles: u32,
    /// Issue-rate multiplier while engaged (e.g. 0.25 = quarter rate).
    pub throttle_factor: f64,
}

impl Default for DroopSensor {
    fn default() -> Self {
        DroopSensor {
            trigger: 0.04,
            hold_cycles: 8,
            throttle_factor: 0.25,
        }
    }
}

/// First-order power-delivery model: droop responds to the current step
/// (`di` term) plus IR drop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PdnModel {
    /// IR-drop coefficient (volts per unit current).
    pub r: f64,
    /// Inductive coefficient (volts per unit current step).
    pub l: f64,
}

impl Default for PdnModel {
    fn default() -> Self {
        PdnModel { r: 0.02, l: 0.10 }
    }
}

/// Result of a droop-event simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DroopTrace {
    /// Per-cycle voltage droop (fraction of nominal; positive = lower V).
    pub droop: Vec<f64>,
    /// Per-cycle delivered issue rate (1.0 = full).
    pub issue_rate: Vec<f64>,
    /// Worst droop seen.
    pub max_droop: f64,
    /// Number of throttle engagements.
    pub engagements: u32,
}

/// Simulates a current-demand step sequence through the PDN, with or
/// without the droop sensor engaged.
#[must_use]
pub fn simulate_droop(pdn: &PdnModel, sensor: Option<&DroopSensor>, demand: &[f64]) -> DroopTrace {
    let mut droop = Vec::with_capacity(demand.len());
    let mut issue_rate = Vec::with_capacity(demand.len());
    let mut prev_current = 0.0f64;
    let mut hold = 0u32;
    let mut engagements = 0u32;
    let mut max_droop = 0.0f64;
    for &d in demand {
        let mut rate = if hold > 0 {
            hold -= 1;
            sensor.map_or(1.0, |s| s.throttle_factor)
        } else {
            1.0
        };
        let mut current = d * rate;
        let mut v = pdn.r * current + pdn.l * (current - prev_current).max(0.0);
        // The DDS operates on a sub-cycle timescale: it clips the swing
        // within the same cycle it detects it.
        if let Some(s) = sensor {
            if v >= s.trigger && rate >= 1.0 {
                hold = s.hold_cycles;
                engagements += 1;
                rate = s.throttle_factor;
                current = d * rate;
                v = pdn.r * current + pdn.l * (current - prev_current).max(0.0);
            }
        }
        prev_current = current;
        max_droop = max_droop.max(v);
        droop.push(v);
        issue_rate.push(rate);
    }
    DroopTrace {
        droop,
        issue_rate,
        max_droop,
        engagements,
    }
}

/// A step-load demand profile: idle, then a power-virus burst.
#[must_use]
pub fn step_load(idle_cycles: usize, burst_cycles: usize, idle: f64, burst: f64) -> Vec<f64> {
    let mut v = vec![idle; idle_cycles];
    v.extend(std::iter::repeat_n(burst, burst_cycles));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_loop_converges_to_cap() {
        let mut c = FineThrottle::new(100.0, 0.4);
        let demand = vec![150.0; 200];
        let powers = simulate_fine_loop(&mut c, &demand, 1.0);
        let tail: f64 = powers[150..].iter().sum::<f64>() / 50.0;
        assert!(
            (tail - 100.0).abs() < 5.0,
            "steady-state power {tail} must approach the 100 cap"
        );
        assert!(c.level() > 0.2);
    }

    #[test]
    fn no_throttle_when_under_cap() {
        let mut c = FineThrottle::new(100.0, 0.4);
        let powers = simulate_fine_loop(&mut c, &vec![60.0; 100], 1.0);
        assert!(powers.iter().all(|&p| (p - 60.0).abs() < 1e-9));
        assert_eq!(c.level(), 0.0);
    }

    #[test]
    fn accurate_proxy_converges_faster_than_biased() {
        // The paper: proxy feedback yields faster learning / more
        // efficient control. An under-reading proxy lets power overshoot
        // for longer.
        let demand = vec![160.0; 300];
        let settle = |bias: f64| -> usize {
            let mut c = FineThrottle::new(100.0, 0.3);
            let powers = simulate_fine_loop(&mut c, &demand, bias);
            powers
                .iter()
                .position(|&p| p <= 105.0)
                .unwrap_or(powers.len())
        };
        let accurate = settle(1.0);
        let under_reading = settle(0.6);
        assert!(
            accurate < under_reading,
            "accurate proxy must settle sooner: {accurate} vs {under_reading}"
        );
    }

    #[test]
    fn droop_sensor_reduces_worst_droop() {
        let demand = step_load(20, 60, 0.2, 2.0);
        let pdn = PdnModel::default();
        let without = simulate_droop(&pdn, None, &demand);
        let with = simulate_droop(&pdn, Some(&DroopSensor::default()), &demand);
        assert!(
            with.max_droop < without.max_droop,
            "DDS must clip the droop: {} vs {}",
            with.max_droop,
            without.max_droop
        );
        assert!(with.engagements >= 1);
    }

    #[test]
    fn sensor_releases_after_hold() {
        let mut demand = step_load(10, 10, 0.2, 2.0);
        demand.extend(vec![0.2; 60]); // back to idle
        let t = simulate_droop(&PdnModel::default(), Some(&DroopSensor::default()), &demand);
        // Issue rate returns to full at the end.
        assert!((t.issue_rate.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throttle_level_bounded() {
        let mut c = FineThrottle::new(10.0, 5.0);
        for _ in 0..100 {
            c.update(1000.0);
        }
        assert!(c.level() <= 0.95);
    }
}

/// Derives a per-window current-demand series from measured power samples
/// (e.g. APEX extraction windows): demand is dynamic power normalized by
/// a reference, which is what the PDN actually sees across workload
/// transitions (paper §IV-B: droops are caused by sudden changes in
/// workload).
#[must_use]
pub fn demand_from_power(samples: &[f64], reference_power: f64) -> Vec<f64> {
    samples
        .iter()
        .map(|&p| p / reference_power.max(1e-12))
        .collect()
}

#[cfg(test)]
mod demand_tests {
    use super::*;

    #[test]
    fn demand_normalizes_against_reference() {
        let d = demand_from_power(&[50.0, 100.0, 200.0], 100.0);
        assert_eq!(d, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn workload_transition_droop_is_tamed_by_the_dds() {
        // An idle-to-kernel transition expressed as power samples.
        let mut power = vec![20.0; 30];
        power.extend(vec![180.0; 50]);
        let demand = demand_from_power(&power, 100.0);
        let pdn = PdnModel::default();
        let free = simulate_droop(&pdn, None, &demand);
        let protected = simulate_droop(&pdn, Some(&DroopSensor::default()), &demand);
        assert!(protected.max_droop < free.max_droop);
    }
}
