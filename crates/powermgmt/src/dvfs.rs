//! Voltage/frequency operating points and power scaling.

use serde::{Deserialize, Serialize};

/// A linear voltage-frequency curve: `v(f) = v0 + slope × (f − f0)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    /// Nominal frequency (GHz).
    pub f0: f64,
    /// Voltage at nominal frequency.
    pub v0: f64,
    /// Volts per GHz above/below nominal.
    pub slope: f64,
}

impl VfCurve {
    /// A representative server-class curve (nominal 4.0 GHz at 0.95 V).
    #[must_use]
    pub fn nominal() -> Self {
        VfCurve {
            f0: 4.0,
            v0: 0.95,
            slope: 0.08,
        }
    }

    /// Voltage required for frequency `f`.
    #[must_use]
    pub fn voltage(&self, f: f64) -> f64 {
        self.v0 + self.slope * (f - self.f0)
    }
}

/// One operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Frequency in GHz.
    pub freq: f64,
    /// Supply voltage.
    pub voltage: f64,
}

impl OperatingPoint {
    /// The point on a VF curve at frequency `f`.
    #[must_use]
    pub fn at(curve: &VfCurve, f: f64) -> Self {
        OperatingPoint {
            freq: f,
            voltage: curve.voltage(f),
        }
    }
}

/// Scales dynamic power measured at the curve's nominal point to another
/// operating point: `P ∝ V² × f`.
#[must_use]
pub fn scale_dynamic(p_nominal: f64, curve: &VfCurve, point: OperatingPoint) -> f64 {
    let vr = point.voltage / curve.v0;
    p_nominal * vr * vr * (point.freq / curve.f0)
}

/// Scales leakage power to another operating point: `P ∝ V²` (a common
/// first-order model at fixed temperature).
#[must_use]
pub fn scale_leakage(p_nominal: f64, curve: &VfCurve, point: OperatingPoint) -> f64 {
    let vr = point.voltage / curve.v0;
    p_nominal * vr * vr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_tracks_frequency() {
        let c = VfCurve::nominal();
        assert!((c.voltage(4.0) - 0.95).abs() < 1e-12);
        assert!(c.voltage(4.5) > c.voltage(4.0));
        assert!(c.voltage(3.0) < c.voltage(4.0));
    }

    #[test]
    fn dynamic_power_scaling_is_supralinear_in_frequency() {
        let c = VfCurve::nominal();
        let hi = scale_dynamic(100.0, &c, OperatingPoint::at(&c, 4.4));
        let nom = scale_dynamic(100.0, &c, OperatingPoint::at(&c, 4.0));
        assert!((nom - 100.0).abs() < 1e-9);
        // +10% frequency costs more than +10% power (voltage rises too).
        assert!(hi > 110.0);
    }

    #[test]
    fn leakage_scaling_is_frequency_independent() {
        let c = VfCurve::nominal();
        let p = OperatingPoint {
            freq: 5.0,
            voltage: 0.95,
        };
        assert!((scale_leakage(50.0, &c, p) - 50.0).abs() < 1e-9);
    }
}
