//! # p10-powermgmt
//!
//! The core power-management stack of paper §IV:
//!
//! * [`dvfs`] — voltage/frequency operating points and power scaling.
//! * [`wof`] — Workload Optimized Frequency: the deterministic frequency
//!   boost solved from a workload's effective-capacitance ratio against
//!   the socket power envelope, including the leakage reclaimed by
//!   power-gating an idle MMA.
//! * [`pfly`] — Power-Frequency Limited Yield and Core Limited Yield
//!   analysis over a synthetic process-variation population.
//! * [`throttle`] — fine-grained instruction throttling with power-proxy
//!   feedback (fixed-frequency / at-Fmin operation), plus the
//!   coarse-grained droop response driven by the Digital Droop Sensor.
//! * [`gating`] — the MMA power-gating controller with architected
//!   wake-up hints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dvfs;
pub mod gating;
pub mod governor;
pub mod pfly;
pub mod throttle;
pub mod wof;
