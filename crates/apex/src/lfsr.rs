//! LFSR switching counters.
//!
//! The paper's APEX methodology instruments the RTL with edge- and
//! level-triggered LFSR counters for ~8M signals and extracts the counts
//! in batches (§III-C). LFSRs are used instead of binary counters because
//! a maximal-length LFSR needs only a shift and an XOR per event; the
//! count is recovered offline from the final state via the sequence
//! position.
//!
//! [`Lfsr16`] is a 16-bit maximal-length Fibonacci LFSR (taps 16,15,13,4;
//! period 65535) with exact count recovery via a position table.

use std::sync::OnceLock;

const SEED: u16 = 0xACE1;
const PERIOD: u32 = 65_535;

/// A 16-bit maximal-length LFSR counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

impl Default for Lfsr16 {
    fn default() -> Self {
        Lfsr16::new()
    }
}

fn position_table() -> &'static Vec<u32> {
    static TABLE: OnceLock<Vec<u32>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = vec![0u32; 1 << 16];
        let mut s = SEED;
        for i in 0..PERIOD {
            table[s as usize] = i;
            s = step(s);
        }
        table
    })
}

/// One LFSR step (taps 16, 15, 13, 4 — maximal length).
#[inline]
fn step(s: u16) -> u16 {
    let bit = (s ^ (s >> 1) ^ (s >> 3) ^ (s >> 12)) & 1;
    (s >> 1) | (bit << 15)
}

impl Lfsr16 {
    /// A counter at position zero.
    #[must_use]
    pub fn new() -> Self {
        Lfsr16 { state: SEED }
    }

    /// Advances the counter by one event (shift + XOR — the cheap
    /// hardware operation).
    pub fn tick(&mut self) {
        self.state = step(self.state);
    }

    /// Advances the counter by `n` events.
    pub fn tick_n(&mut self, n: u64) {
        // Software shortcut via positions; hardware would just tick.
        let pos = self.position();
        let new_pos = (u64::from(pos) + n) % u64::from(PERIOD);
        *self = Lfsr16::at_position(new_pos as u32);
    }

    /// The raw register state (what batch extraction reads out).
    #[must_use]
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Decodes the state back to a count (sequence position).
    #[must_use]
    pub fn position(&self) -> u32 {
        position_table()[self.state as usize]
    }

    /// Constructs the counter at a given position (for decode tests).
    #[must_use]
    pub fn at_position(pos: u32) -> Self {
        let mut s = SEED;
        // Walk; fine for tests and window-sized counts.
        for _ in 0..(pos % PERIOD) {
            s = step(s);
        }
        Lfsr16 { state: s }
    }

    /// Events counted between an earlier extraction `start` and this
    /// state, assuming fewer than one full period elapsed.
    #[must_use]
    pub fn count_since(&self, start: &Lfsr16) -> u32 {
        let a = start.position();
        let b = self.position();
        if b >= a {
            b - a
        } else {
            PERIOD - a + b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_is_maximal() {
        let mut s = SEED;
        let mut n = 0u32;
        loop {
            s = step(s);
            n += 1;
            if s == SEED {
                break;
            }
            assert!(n <= PERIOD, "period exceeded 2^16-1");
        }
        assert_eq!(n, PERIOD, "LFSR must be maximal length");
    }

    #[test]
    fn exact_count_recovery() {
        let start = Lfsr16::new();
        let mut c = start;
        for _ in 0..12_345 {
            c.tick();
        }
        assert_eq!(c.count_since(&start), 12_345);
        assert_eq!(c.position(), 12_345);
    }

    #[test]
    fn wraparound_counting() {
        let start = Lfsr16::at_position(PERIOD - 10);
        let mut c = start;
        c.tick_n(25);
        assert_eq!(c.count_since(&start), 25);
    }

    #[test]
    fn tick_n_matches_individual_ticks() {
        let mut a = Lfsr16::new();
        let mut b = Lfsr16::new();
        for _ in 0..997 {
            a.tick();
        }
        b.tick_n(997);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_state_never_reached() {
        let mut s = SEED;
        for _ in 0..PERIOD {
            assert_ne!(s, 0, "all-zero state would lock the LFSR");
            s = step(s);
        }
    }
}
