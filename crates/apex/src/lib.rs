//! # p10-apex
//!
//! The APEX (Awan Power Extractor) analog: accelerated power extraction
//! via periodically sampled switching counters (paper §III-C).
//!
//! APEX instruments the design with LFSR switching counters and extracts
//! their values in batches at configurable intervals, producing power
//! estimates "on the fly using pre-extracted activity signal groupings
//! and associated effective capacitance" — a ~5000× speedup over software
//! RTL simulation *at identical accuracy* for the tracked signals.
//!
//! The analog here:
//!
//! * [`run_apex`] drives the same cycle model as `p10-rtlsim`, but instead
//!   of per-cycle latch bookkeeping it snapshots the hardware-style
//!   counters once per extraction window ([`WindowSample`]) and computes
//!   the simplified power estimate per window. Identical accuracy on
//!   tracked counters is by construction — the same counters are read,
//!   just less often — and the `window_sums_equal_final_counters` test
//!   verifies it.
//! * [`measure_speedup`] times detailed vs accelerated extraction on the
//!   same workload (the paper's 5000× came from hardware acceleration;
//!   the software-vs-software analog shows the same asymmetry, smaller).
//! * [`core_model`]/[`chip_model`] build the Fig. 10 configurations: the
//!   core-only model with infinite L2 versus the full chip model with the
//!   real cache/memory hierarchy, and [`run_fig10`] produces the
//!   power-vs-IPC scatter for SPECint-like snippets in SMT2 mode.
//! * [`lfsr`] implements the LFSR counters themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lfsr;

use p10_power::{PowerModel, PowerReport};
use p10_rtlsim::{run_detailed, Roi, ToggleDensity};
use p10_uarch::{Activity, Core, CoreConfig, SimResult, SmtMode, SpanObserver};
use p10_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One extraction window: the batch readout of all switching counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowSample {
    /// First cycle of the window (exclusive of prior windows).
    pub start_cycle: u64,
    /// Last cycle included.
    pub end_cycle: u64,
    /// Counter deltas over the window.
    pub activity: Activity,
    /// On-the-fly simplified power estimate (core total).
    pub power_estimate: f64,
}

/// The result of an accelerated (APEX-style) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApexReport {
    /// Timing result.
    pub sim: SimResult,
    /// Per-window samples (the "signal event trace" at window granularity;
    /// each sample doubles as a checkpoint for deep-dive debug).
    pub windows: Vec<WindowSample>,
    /// Power over the full run from the final counter state.
    pub power: PowerReport,
}

impl ApexReport {
    /// Sum of per-window activity — must equal the final counters
    /// (identical accuracy on tracked signals).
    #[must_use]
    pub fn windows_total(&self) -> Activity {
        self.windows
            .iter()
            .fold(Activity::default(), |acc, w| acc.sum(&w.activity))
    }
}

/// The span-aware window extractor behind [`run_apex`].
///
/// Extraction windows close on exact cycle boundaries
/// (`last_cycle + window_cycles`). A fast-forwarded span that straddles
/// one or more boundaries is split *exactly* with
/// [`Activity::span_prefix`] (span deltas are homogeneous, so the split
/// is lossless integer arithmetic), making every [`WindowSample`]
/// bit-identical to per-cycle extraction.
struct WindowExtractor<'m> {
    model: &'m PowerModel,
    window_cycles: u64,
    windows: Vec<WindowSample>,
    /// Cumulative activity at the last window close.
    last: Activity,
    last_cycle: u64,
    /// Cumulative activity through the last delivered cycle.
    cum: Activity,
    /// Observation-effectiveness counters: cycles delivered live vs via
    /// closed-form spans.
    live_cycles: u64,
    span_cycles: u64,
}

impl WindowExtractor<'_> {
    fn close_window(&mut self, cycle: u64, cum: Activity) {
        let delta = cum.delta(&self.last);
        let power_estimate = self.model.evaluate(&delta).core_total();
        self.windows.push(WindowSample {
            start_cycle: self.last_cycle + 1,
            end_cycle: cycle,
            activity: delta,
            power_estimate,
        });
        self.last = cum;
        self.last_cycle = cycle;
    }
}

impl SpanObserver for WindowExtractor<'_> {
    fn on_cycle(&mut self, cycle: u64, act: &Activity) {
        self.live_cycles += 1;
        self.cum = *act;
        if cycle - self.last_cycle >= self.window_cycles {
            self.close_window(cycle, *act);
        }
    }

    fn on_span(&mut self, start: u64, len: u64, delta: &Activity) {
        self.span_cycles += len;
        let end = start + len - 1;
        // Cumulative activity through `start - 1`.
        let base = self.cum;
        let mut boundary = self.last_cycle + self.window_cycles;
        while boundary <= end {
            let cum_at = base.sum(&delta.span_prefix(len, boundary - start + 1));
            self.close_window(boundary, cum_at);
            boundary = self.last_cycle + self.window_cycles;
        }
        self.cum = base.sum(delta);
    }
}

/// Runs the accelerated extraction: counters are read out every
/// `window_cycles` (the paper's configurable batch interval).
///
/// Rides the event-driven scheduler's fast path: fast-forwarded idle
/// stretches arrive as closed-form spans and are split exactly at window
/// boundaries, so the samples match per-cycle extraction bit for bit.
#[must_use]
pub fn run_apex<T: Into<p10_isa::TraceView>>(
    cfg: &CoreConfig,
    traces: Vec<T>,
    window_cycles: u64,
    max_cycles: u64,
) -> ApexReport {
    let model = PowerModel::for_config(cfg);
    let mut extractor = WindowExtractor {
        model: &model,
        window_cycles,
        windows: Vec::new(),
        last: Activity::default(),
        last_cycle: 0,
        cum: Activity::default(),
        live_cycles: 0,
        span_cycles: 0,
    };

    let sim = Core::new(cfg.clone()).run_spanned(traces, max_cycles, &mut extractor);
    p10_obs::counter("sim.observed_live_cycles", extractor.live_cycles);
    p10_obs::counter("sim.observed_span_cycles", extractor.span_cycles);
    let mut windows = extractor.windows;
    let last = extractor.last;
    let last_cycle = extractor.last_cycle;
    // Final partial window.
    let delta = sim.activity.delta(&last);
    if delta.cycles > 0 {
        windows.push(WindowSample {
            start_cycle: last_cycle + 1,
            end_cycle: sim.activity.cycles,
            activity: delta,
            power_estimate: model.evaluate(&delta).core_total(),
        });
    }
    let power = model.evaluate(&sim.activity);
    ApexReport {
        sim,
        windows,
        power,
    }
}

/// Timing comparison of detailed (RTLSim) versus accelerated (APEX)
/// power extraction on the same workload.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// Wall-clock seconds for the detailed run.
    pub detailed_secs: f64,
    /// Wall-clock seconds for the accelerated run.
    pub apex_secs: f64,
    /// Detailed / accelerated ratio.
    pub speedup: f64,
    /// Cycles the accelerated run simulated (deterministic, unlike the
    /// wall-clock fields — what byte-identical output checks can print).
    pub cycles: u64,
    /// Counter windows the accelerated run extracted (deterministic).
    pub windows: u64,
}

/// Measures the extraction speedup on one workload trace.
///
/// The paper reports ~5000× for hardware-accelerated simulation against
/// software RTL simulation; the software-vs-software analog here shows
/// the same direction with a smaller constant.
#[must_use]
pub fn measure_speedup(cfg: &CoreConfig, trace: &p10_isa::Trace, max_cycles: u64) -> SpeedupReport {
    let t0 = Instant::now();
    let _ = run_detailed(
        cfg,
        vec![trace.clone()],
        Roi::new(0, max_cycles),
        ToggleDensity::default(),
    );
    let detailed_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let apex = run_apex(cfg, vec![trace.clone()], 4096, max_cycles);
    let apex_secs = t1.elapsed().as_secs_f64();

    SpeedupReport {
        detailed_secs,
        apex_secs,
        speedup: detailed_secs / apex_secs.max(1e-9),
        cycles: apex.sim.activity.cycles,
        windows: apex.windows.len() as u64,
    }
}

/// The Fig. 10 "core model": the core simulated with an infinite L2
/// behind the L1s.
#[must_use]
pub fn core_model(mut cfg: CoreConfig) -> CoreConfig {
    cfg.perfect_l2 = true;
    cfg.name = format!("{}-core-model", cfg.name);
    cfg
}

/// The Fig. 10 "chip model": the full cache and memory hierarchy.
#[must_use]
pub fn chip_model(mut cfg: CoreConfig) -> CoreConfig {
    cfg.perfect_l2 = false;
    cfg.name = format!("{}-chip-model", cfg.name);
    cfg
}

/// Which simulation model produced a Fig. 10 point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApexModel {
    /// Core + infinite L2.
    Core,
    /// Full chip hierarchy.
    Chip,
}

/// One scatter point of Fig. 10.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Point {
    /// Benchmark name.
    pub bench: String,
    /// Snippet (simpoint-like) index.
    pub snippet: u32,
    /// Which model.
    pub model: ApexModel,
    /// Aggregate IPC (SMT2).
    pub ipc: f64,
    /// Core power.
    pub core_power: f64,
}

/// Runs the Fig. 10 experiment: `snippets` simpoint-like snippets per
/// benchmark, SMT2 mode, both the core model and the chip model.
#[must_use]
pub fn run_fig10(benchmarks: &[Benchmark], snippets: u32, ops_per_snippet: u64) -> Vec<Fig10Point> {
    let mut points = Vec::new();
    let mut base = CoreConfig::power10();
    base.smt = SmtMode::Smt2;
    for b in benchmarks {
        for s in 0..snippets {
            let traces: Vec<p10_isa::TraceView> = (0..2)
                .map(|t| {
                    b.workload(1000 + u64::from(s) * 17 + t)
                        .trace_view_or_panic(ops_per_snippet)
                })
                .collect();
            for (model, cfg) in [
                (ApexModel::Core, core_model(base.clone())),
                (ApexModel::Chip, chip_model(base.clone())),
            ] {
                let report = run_apex(&cfg, traces.clone(), 4096, ops_per_snippet * 40);
                points.push(Fig10Point {
                    bench: b.name.clone(),
                    snippet: s,
                    model,
                    ipc: report.sim.ipc(),
                    core_power: report.power.core_total(),
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    fn trace(bench: usize, ops: u64) -> p10_isa::Trace {
        specint_like()[bench].workload(5).trace_or_panic(ops)
    }

    #[test]
    fn window_sums_equal_final_counters() {
        // APEX's central claim: batch extraction loses nothing on tracked
        // signals.
        let cfg = CoreConfig::power10();
        let r = run_apex(&cfg, vec![trace(8, 12_000)], 1000, 1_000_000);
        let total = r.windows_total();
        assert_eq!(total.completed, r.sim.activity.completed);
        assert_eq!(total.l1d_accesses, r.sim.activity.l1d_accesses);
        assert_eq!(total.vsx_flops, r.sim.activity.vsx_flops);
        assert_eq!(total.cycles, r.sim.activity.cycles);
        assert!(r.windows.len() > 3);
    }

    #[test]
    fn apex_is_much_faster_than_detailed() {
        let cfg = CoreConfig::power10();
        let t = trace(8, 20_000);
        let s = measure_speedup(&cfg, &t, 1_000_000);
        assert!(
            s.speedup > 3.0,
            "accelerated extraction must win clearly, got {:.1}x",
            s.speedup
        );
    }

    #[test]
    fn chip_model_shows_memory_effects_core_model_hides() {
        // A memory-hostile workload must look different between the two
        // models (the gray points of Fig. 10).
        let mcf = &specint_like()[2]; // mcfish
        let t = mcf.workload(9).trace_or_panic(10_000);
        let base = CoreConfig::power10();
        let core = run_apex(&core_model(base.clone()), vec![t.clone()], 4096, 10_000_000);
        let chip = run_apex(&chip_model(base), vec![t], 4096, 10_000_000);
        assert!(
            core.sim.ipc() > chip.sim.ipc() * 1.5,
            "infinite L2 must flatter a memory-bound snippet: core {} chip {}",
            core.sim.ipc(),
            chip.sim.ipc()
        );
    }

    #[test]
    fn fig10_produces_paired_points() {
        let suite = specint_like();
        let pts = run_fig10(&suite[8..9], 2, 4_000);
        assert_eq!(pts.len(), 4); // 1 bench x 2 snippets x 2 models
        assert!(pts.iter().all(|p| p.ipc > 0.0 && p.core_power > 0.0));
        assert!(pts.iter().any(|p| p.model == ApexModel::Core));
        assert!(pts.iter().any(|p| p.model == ApexModel::Chip));
    }

    /// Property tests driving random live/span delivery patterns through
    /// the window extractor — the `window_sums_equal_final_counters`
    /// invariant under arbitrary span tilings, not just the one tiling
    /// the simulator happens to produce for a given workload.
    mod span_window_properties {
        use super::*;
        use proptest::prelude::*;

        /// One random observer delivery: either a live cycle with
        /// arbitrary counter bumps, or a homogeneous fast-forward span
        /// (only the four counters the span contract allows, each at a
        /// constant per-cycle rate).
        #[derive(Debug, Clone, Copy)]
        enum Delivery {
            Live {
                completed: u64,
                l1d: u64,
                flops: u64,
            },
            Span {
                len: u64,
                mma: bool,
                stall: bool,
                occ: u64,
            },
        }

        fn arb_delivery() -> impl Strategy<Value = Delivery> {
            prop_oneof![
                (0u64..6, 0u64..4, 0u64..9).prop_map(|(completed, l1d, flops)| {
                    Delivery::Live {
                        completed,
                        l1d,
                        flops,
                    }
                }),
                (1u64..300, 0u64..2, 0u64..2, 0u64..400).prop_map(|(len, mma, stall, occ)| {
                    Delivery::Span {
                        len,
                        mma: mma == 1,
                        stall: stall == 1,
                        occ,
                    }
                }),
            ]
        }

        fn fresh<'m>(model: &'m PowerModel, window_cycles: u64) -> WindowExtractor<'m> {
            WindowExtractor {
                model,
                window_cycles,
                windows: Vec::new(),
                last: Activity::default(),
                last_cycle: 0,
                cum: Activity::default(),
                live_cycles: 0,
                span_cycles: 0,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// A span-fed extractor must produce bit-identical windows to
            /// a per-cycle-fed one (spans replayed via `span_prefix`),
            /// and closed windows plus the trailing partial must sum to
            /// the final counters.
            #[test]
            fn random_span_patterns_window_exactly(
                deliveries in proptest::collection::vec(arb_delivery(), 1..60),
                window_cycles in 1u64..64,
            ) {
                let model = PowerModel::for_config(&CoreConfig::power10());
                let mut spanned = fresh(&model, window_cycles);
                let mut per_cycle = fresh(&model, window_cycles);
                let mut cum = Activity::default();
                let mut cycle = 0u64;
                for d in &deliveries {
                    match *d {
                        Delivery::Live { completed, l1d, flops } => {
                            cycle += 1;
                            cum.cycles += 1;
                            cum.completed += completed;
                            cum.l1d_accesses += l1d;
                            cum.vsx_flops += flops;
                            spanned.on_cycle(cycle, &cum);
                            per_cycle.on_cycle(cycle, &cum);
                        }
                        Delivery::Span { len, mma, stall, occ } => {
                            let delta = Activity {
                                cycles: len,
                                mma_powered_cycles: if mma { len } else { 0 },
                                dispatch_stall_cycles: if stall { len } else { 0 },
                                window_occupancy_acc: occ * len,
                                ..Activity::default()
                            };
                            let base = cum;
                            spanned.on_span(cycle + 1, len, &delta);
                            for k in 1..=len {
                                per_cycle.on_cycle(cycle + k, &base.sum(&delta.span_prefix(len, k)));
                            }
                            cycle += len;
                            cum = base.sum(&delta);
                        }
                    }
                }
                prop_assert_eq!(spanned.windows.len(), per_cycle.windows.len());
                for (s, c) in spanned.windows.iter().zip(per_cycle.windows.iter()) {
                    prop_assert_eq!(s.start_cycle, c.start_cycle);
                    prop_assert_eq!(s.end_cycle, c.end_cycle);
                    prop_assert_eq!(s.activity, c.activity);
                    prop_assert_eq!(
                        s.power_estimate.to_bits(),
                        c.power_estimate.to_bits(),
                        "window power must be bit-identical"
                    );
                    prop_assert_eq!(s.end_cycle - s.start_cycle + 1, window_cycles);
                    prop_assert_eq!(s.activity.cycles, window_cycles);
                }
                // Closed windows + trailing partial tile the run exactly.
                let mut total = spanned
                    .windows
                    .iter()
                    .fold(Activity::default(), |acc, w| acc.sum(&w.activity));
                total = total.sum(&cum.delta(&spanned.last));
                prop_assert_eq!(total, cum);
                prop_assert_eq!(spanned.last_cycle + cum.delta(&spanned.last).cycles, cycle);
            }
        }
    }
}
