//! # p10-rtlsim
//!
//! The "RTLSim" analog: detailed, slow, latch-accurate simulation with
//! Powerminer-style switching reports (paper §III-B).
//!
//! In the paper, RTLSim runs the evolving RTL directly and Powerminer
//! extracts logic-activity statistics (clock gating %, potential vs
//! observed latch switching, ghost switching) without the expensive full
//! Einspower physical-design flow. Here, [`run_detailed`] drives the
//! cycle model with a *per-cycle* observer that performs latch-group
//! bookkeeping for all 39 power components — deliberately paying the
//! per-cycle cost that the APEX analog (`p10-apex`) avoids, so the
//! relative speedup of counter-based extraction is measurable.
//!
//! The measurement applies to a *region of interest*: a warmup prefix is
//! excluded, mirroring the paper's per-workload measurement windows
//! computed from baseline runs.
//!
//! ## Example
//!
//! ```
//! use p10_rtlsim::{run_detailed, Roi, ToggleDensity};
//! use p10_uarch::CoreConfig;
//! use p10_workloads::specint_like;
//!
//! let bench = &specint_like()[8];
//! let trace = bench.workload(1).trace_or_panic(8_000);
//! let report = run_detailed(
//!     &CoreConfig::power10(),
//!     vec![trace],
//!     Roi::new(2_000, 100_000),
//!     ToggleDensity::default(),
//! );
//! assert!(report.powerminer.clock_enable_pct > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use p10_power::{ComponentKind, PowerModel, PowerReport};
use p10_uarch::{Activity, Core, CoreConfig, SimResult, SpanObserver};
use serde::{Deserialize, Serialize};

/// Region of interest: cycles to skip (warmup) and the cycle budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Roi {
    /// Warmup cycles excluded from measurement.
    pub warmup_cycles: u64,
    /// Maximum total cycles to simulate.
    pub max_cycles: u64,
}

impl Roi {
    /// Creates a region of interest.
    #[must_use]
    pub fn new(warmup_cycles: u64, max_cycles: u64) -> Self {
        Roi {
            warmup_cycles,
            max_cycles,
        }
    }
}

/// Data toggle density: the probability that a latched bit actually
/// changes value when written. Zero-initialized testcases toggle far less
/// than random-data ones (paper §III-E varies exactly this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToggleDensity(pub f64);

impl Default for ToggleDensity {
    fn default() -> Self {
        ToggleDensity(0.5)
    }
}

impl ToggleDensity {
    /// Density for zero-initialized data.
    #[must_use]
    pub fn zero_init() -> Self {
        ToggleDensity(0.06)
    }

    /// Density for random-initialized data.
    #[must_use]
    pub fn random_init() -> Self {
        ToggleDensity(0.5)
    }
}

/// Per-latch-group switching statistics over the region of interest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatchGroupStats {
    /// Which component the group belongs to.
    pub kind: ComponentKind,
    /// Latch population.
    pub latches: f64,
    /// Latch-cycles with clock enabled / total latch-cycles.
    pub clock_enable_fraction: f64,
    /// Potential switching: latch-cycles clock-enabled (data refreshed
    /// whether or not it changes) per latch per cycle.
    pub potential_switching: f64,
    /// Observed switching: latch value actually changed, per latch per
    /// cycle.
    pub observed_switching: f64,
    /// Ghost switching: data-input toggles with no corresponding write,
    /// per latch per cycle.
    pub ghost_switching: f64,
}

/// The Powerminer-style aggregate report (the metrics the paper says were
/// continuously tracked: % clock enabled, potential latch switching,
/// observed latch switching ratio).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerminerReport {
    /// Percentage of latch clocks enabled (inverse of % clock gating).
    pub clock_enable_pct: f64,
    /// Potential latch switching per latch per cycle.
    pub potential_switching: f64,
    /// Observed latch switching per latch per cycle.
    pub observed_switching: f64,
    /// Observed/potential ratio.
    pub observed_ratio: f64,
    /// Ghost switching per latch per cycle.
    pub ghost_switching: f64,
    /// Total latches in the design.
    pub total_latches: f64,
}

/// Per-slice (64-latch macro) statistics — the latch-accurate layer.
///
/// Within a group, utilization is not uniform: some macros are hot on
/// every op, others nearly idle. The detailed simulation tracks each
/// 64-latch slice separately with an exponential hot-to-cold utilization
/// profile, giving downstream consumers (SERMiner) a realistic per-latch
/// switching distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceStats {
    /// Component this slice belongs to.
    pub kind: ComponentKind,
    /// Latches in the slice (64, except a possibly-smaller tail).
    pub latches: f64,
    /// Clock-enable fraction of this slice.
    pub clock_enable: f64,
    /// Observed switching per latch per cycle in this slice.
    pub switching: f64,
}

/// The result of a detailed RTLSim-analog run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RtlReport {
    /// Timing result over the full run.
    pub sim: SimResult,
    /// Activity measured inside the region of interest only.
    pub roi_activity: Activity,
    /// Power evaluated over the region of interest.
    pub power: PowerReport,
    /// Per-group switching statistics.
    pub groups: Vec<LatchGroupStats>,
    /// Per-slice (64-latch) statistics for the latch-accurate layer.
    pub slices: Vec<SliceStats>,
    /// The aggregate Powerminer report.
    pub powerminer: PowerminerReport,
    /// Per-cycle-equivalent bookkeeping operations the detailed
    /// methodology accounts for (the "cost" of latch-accurate simulation
    /// that APEX avoids). The span-aware observer performs the underlying
    /// group/slice evaluation once per homogeneous run of cycles, but
    /// this counter stays per-cycle so reports are independent of how
    /// the scheduler delivered the cycles.
    pub bookkeeping_ops: u64,
}

/// The span-aware latch bookkeeper behind [`run_detailed`].
///
/// Live cycles are accumulated one at a time; fast-forwarded spans are
/// folded in closed form. To keep every `f64` accumulator **bit-identical**
/// no matter how the scheduler delivers the cycles, consecutive cycles
/// with an identical per-cycle activity delta are coalesced into *runs*
/// (a span is just a pre-coalesced run, and idle stretches stepped by the
/// polled scheduler coalesce into the same runs), and each run's
/// group/slice contributions are evaluated once and scaled by the run
/// length — linear in components per run instead of per cycle.
struct LatchBookkeeper {
    model: PowerModel,
    /// (group index, slice latches, utilization weight) per 64-latch slice.
    slice_layout: Vec<(usize, f64, f64)>,
    idle_floor: f64,
    idle_floor_is_flat: bool,
    warmup: u64,
    warmup_snapshot: Option<Activity>,
    /// Cumulative activity through the last delivered cycle.
    prev: Activity,
    /// Total cycles per *distinct* per-cycle delta. Steady-state kernels
    /// cycle through a handful of delta patterns, so folding once per
    /// distinct delta (at [`flush_run`](Self::flush_run)) instead of once
    /// per consecutive run turns the per-slice accounting from
    /// `O(runs × slices)` into `O(distinct deltas × slices)`. A `BTreeMap`
    /// keeps the fold order deterministic (floating-point accumulation is
    /// order-sensitive), independent of when each delta first appeared —
    /// which also makes the polled and event-driven schedulers agree by
    /// construction, however differently they fragment the run stream.
    runs: std::collections::BTreeMap<Activity, u64>,
    /// Per-group accumulators: [enabled_latch_cycles, events, latch_cycles].
    acc: Vec<[f64; 3]>,
    /// Per-slice accumulators: [enable, switching].
    slice_acc: Vec<[f64; 2]>,
    bookkeeping_ops: u64,
    /// Observation-effectiveness counters: cycles delivered live vs via
    /// closed-form spans.
    live_cycles: u64,
    span_cycles: u64,
}

impl LatchBookkeeper {
    fn new(model: PowerModel, warmup: u64) -> Self {
        // Per-slice layout with an exponential hot-to-cold utilization
        // profile within each group.
        let hot_cold_lambda = match model.style() {
            // Fine-grained gating concentrates activity: cold macros go
            // fully dark, so the hot-to-cold spread is much wider.
            p10_power::DesignStyle::ClockGatedByDefault => 6.0,
            p10_power::DesignStyle::Legacy => 3.0,
        };
        let mut slice_layout: Vec<(usize, f64, f64)> = Vec::new();
        for (gi, spec) in model.components().iter().enumerate() {
            let n_slices = ((spec.latches / 64.0).ceil() as usize).max(1);
            // Normalize the profile so the weights average to 1 per group.
            let lambda = hot_cold_lambda / n_slices as f64;
            let weights: Vec<f64> = (0..n_slices).map(|j| (-lambda * j as f64).exp()).collect();
            let mean: f64 = weights.iter().sum::<f64>() / n_slices as f64;
            for (j, w) in weights.iter().enumerate() {
                let latches = if j + 1 == n_slices {
                    spec.latches - 64.0 * (n_slices as f64 - 1.0)
                } else {
                    64.0
                };
                slice_layout.push((gi, latches.max(1.0), w / mean));
            }
        }
        let tech = p10_power::TechParams::for_style(model.style());
        let idle_floor_is_flat = matches!(model.style(), p10_power::DesignStyle::Legacy);
        let n_groups = model.components().len();
        let n_slices = slice_layout.len();
        LatchBookkeeper {
            model,
            slice_layout,
            idle_floor: tech.idle_clock_enable,
            idle_floor_is_flat,
            warmup,
            warmup_snapshot: None,
            prev: Activity::default(),
            runs: std::collections::BTreeMap::new(),
            acc: vec![[0.0f64; 3]; n_groups],
            slice_acc: vec![[0.0f64; 2]; n_slices],
            bookkeeping_ops: 0,
            live_cycles: 0,
            span_cycles: 0,
        }
    }

    /// Credits `n` cycles of per-cycle delta `d` to the delta's tally.
    fn push_run(&mut self, d: Activity, n: u64) {
        *self.runs.entry(d).or_insert(0) += n;
    }

    /// Folds the accumulated delta tallies into the group and slice
    /// accumulators: group stats are evaluated once per distinct
    /// per-cycle delta and scaled by its total cycle count
    /// (toggle/clock-enable/ghost accounting in closed form).
    fn flush_run(&mut self) {
        let runs = std::mem::take(&mut self.runs);
        for (d, n) in runs {
            let nf = n as f64;
            let stats = self.model.group_stats(&d);
            for (i, g) in stats.iter().enumerate() {
                self.acc[i][0] += g.clock_enable * g.latches * nf;
                self.acc[i][1] += g.events_per_cycle * nf;
                self.acc[i][2] += g.latches * nf;
            }
            for (si, (gi, latches, weight)) in self.slice_layout.iter().enumerate() {
                let g = &stats[*gi];
                let write_rate = (g.events_per_cycle * 64.0 / g.latches.max(1.0)).min(1.0);
                // Clock-enable distribution across slices differs by design
                // style: the legacy design's global clock spine keeps every
                // slice at least at the idle floor (clock gating added after
                // the fact), while the clocks-off-by-default design gates
                // each slice individually — cold slices sit near zero.
                let enable = if self.idle_floor_is_flat {
                    (self.idle_floor + (g.clock_enable - self.idle_floor).max(0.0) * weight)
                        .min(1.0)
                } else {
                    (g.clock_enable * weight).min(1.0)
                };
                self.slice_acc[si][0] += enable * latches * nf;
                self.slice_acc[si][1] +=
                    (write_rate * weight).min(enable.max(1e-12)) * latches * nf;
            }
            self.bookkeeping_ops += (stats.len() as u64 + self.slice_layout.len() as u64) * n;
        }
    }
}

impl SpanObserver for LatchBookkeeper {
    fn on_cycle(&mut self, cycle: u64, act: &Activity) {
        self.live_cycles += 1;
        if cycle == self.warmup {
            self.warmup_snapshot = Some(*act);
        }
        if cycle <= self.warmup {
            self.prev = *act;
            return;
        }
        let d = act.delta(&self.prev);
        self.prev = *act;
        self.push_run(d, 1);
    }

    fn on_span(&mut self, start: u64, len: u64, delta: &Activity) {
        self.span_cycles += len;
        let end = start + len - 1;
        let mut measured = *delta;
        let mut measured_len = len;
        if start <= self.warmup {
            // ROI-warmup boundary: split the span exactly at the warmup
            // cycle so the snapshot equals what per-cycle stepping takes.
            let pre_len = (self.warmup - start + 1).min(len);
            let pre = delta.span_prefix(len, pre_len);
            self.prev = self.prev.sum(&pre);
            if self.warmup <= end {
                self.warmup_snapshot = Some(self.prev);
            }
            if pre_len == len {
                return;
            }
            measured = measured.delta(&pre);
            measured_len = len - pre_len;
        }
        let per_cycle = measured.span_prefix(measured_len, 1);
        self.prev = self.prev.sum(&measured);
        self.push_run(per_cycle, measured_len);
    }
}

/// Runs the detailed latch-accurate simulation.
///
/// Latch bookkeeping across all 39 component groups rides the span-aware
/// observer: live cycles (and, under the polled scheduler, every cycle)
/// are evaluated per homogeneous run, and fast-forwarded idle stretches
/// arrive as closed-form spans — linear in components per span instead of
/// per cycle, with the ROI-warmup boundary split exactly. The accumulated
/// per-group statistics become the Powerminer report, bit-identical to
/// per-cycle stepping.
#[must_use]
pub fn run_detailed<T: Into<p10_isa::TraceView>>(
    cfg: &CoreConfig,
    traces: Vec<T>,
    roi: Roi,
    toggle: ToggleDensity,
) -> RtlReport {
    let mut keeper = LatchBookkeeper::new(PowerModel::for_config(cfg), roi.warmup_cycles);

    let core = Core::new(cfg.clone());
    let sim = core.run_spanned(traces, roi.max_cycles, &mut keeper);
    keeper.flush_run();
    p10_obs::counter("sim.observed_live_cycles", keeper.live_cycles);
    p10_obs::counter("sim.observed_span_cycles", keeper.span_cycles);

    let LatchBookkeeper {
        model,
        slice_layout,
        warmup_snapshot,
        acc,
        slice_acc,
        bookkeeping_ops,
        ..
    } = keeper;

    let warmup = warmup_snapshot.unwrap_or_default();
    let roi_activity = sim.activity.delta(&warmup);
    let power = model.evaluate(&roi_activity);

    let ghost_factor = model_ghost_factor(&model);
    let groups: Vec<LatchGroupStats> = model
        .components()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let latch_cycles = acc[i][2].max(1.0);
            let enable = acc[i][0] / latch_cycles;
            // Each event writes a slice of the group's latches; observed
            // switching scales with the data toggle density.
            let writes_per_latch_cycle = (acc[i][1] * 64.0 / latch_cycles).min(enable.max(0.0));
            LatchGroupStats {
                kind: s.kind,
                latches: s.latches,
                clock_enable_fraction: enable,
                potential_switching: enable,
                observed_switching: writes_per_latch_cycle * toggle.0,
                ghost_switching: writes_per_latch_cycle * toggle.0 * ghost_factor,
            }
        })
        .collect();

    let roi_cycles = roi_activity.cycles.max(1) as f64;
    let slices: Vec<SliceStats> = slice_layout
        .iter()
        .enumerate()
        .map(|(si, (gi, latches, _))| SliceStats {
            kind: model.components()[*gi].kind,
            latches: *latches,
            clock_enable: slice_acc[si][0] / (latches * roi_cycles),
            switching: slice_acc[si][1] / (latches * roi_cycles) * toggle.0,
        })
        .collect();

    let total_latches: f64 = groups.iter().map(|g| g.latches).sum();
    let wavg = |f: &dyn Fn(&LatchGroupStats) -> f64| -> f64 {
        groups.iter().map(|g| f(g) * g.latches).sum::<f64>() / total_latches.max(1.0)
    };
    let potential = wavg(&|g| g.potential_switching);
    let observed = wavg(&|g| g.observed_switching);
    let powerminer = PowerminerReport {
        clock_enable_pct: wavg(&|g| g.clock_enable_fraction) * 100.0,
        potential_switching: potential,
        observed_switching: observed,
        observed_ratio: if potential > 0.0 {
            observed / potential
        } else {
            0.0
        },
        ghost_switching: wavg(&|g| g.ghost_switching),
        total_latches,
    };

    RtlReport {
        sim,
        roi_activity,
        power,
        groups,
        slices,
        powerminer,
        bookkeeping_ops,
    }
}

fn model_ghost_factor(model: &PowerModel) -> f64 {
    p10_power::TechParams::for_style(model.style()).ghost_factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_workloads::specint_like;

    fn trace(ops: u64) -> p10_isa::Trace {
        specint_like()[8].workload(3).trace_or_panic(ops)
    }

    #[test]
    fn roi_excludes_warmup() {
        let cfg = CoreConfig::power10();
        let r = run_detailed(
            &cfg,
            vec![trace(12_000)],
            Roi::new(1_000, 1_000_000),
            ToggleDensity::default(),
        );
        assert!(r.roi_activity.cycles < r.sim.activity.cycles);
        assert!(r.roi_activity.completed < r.sim.activity.completed);
        assert!(r.roi_activity.completed > 0);
    }

    #[test]
    fn p10_gates_clocks_harder_than_p9() {
        let t = trace(15_000);
        let p9 = run_detailed(
            &CoreConfig::power9(),
            vec![t.clone()],
            Roi::new(500, 1_000_000),
            ToggleDensity::default(),
        );
        let p10 = run_detailed(
            &CoreConfig::power10(),
            vec![t],
            Roi::new(500, 1_000_000),
            ToggleDensity::default(),
        );
        assert!(
            p10.powerminer.clock_enable_pct < p9.powerminer.clock_enable_pct,
            "P10 {}% must be below P9 {}%",
            p10.powerminer.clock_enable_pct,
            p9.powerminer.clock_enable_pct
        );
        // And its ghost switching is lower too.
        assert!(p10.powerminer.ghost_switching < p9.powerminer.ghost_switching);
    }

    #[test]
    fn toggle_density_scales_observed_switching() {
        let t = trace(10_000);
        let cfg = CoreConfig::power10();
        let zero = run_detailed(
            &cfg,
            vec![t.clone()],
            Roi::new(500, 1_000_000),
            ToggleDensity::zero_init(),
        );
        let rand = run_detailed(
            &cfg,
            vec![t],
            Roi::new(500, 1_000_000),
            ToggleDensity::random_init(),
        );
        assert!(
            rand.powerminer.observed_switching > 3.0 * zero.powerminer.observed_switching,
            "random {} vs zero {}",
            rand.powerminer.observed_switching,
            zero.powerminer.observed_switching
        );
        // Potential switching (clock enables) is data-independent.
        assert!(
            (rand.powerminer.potential_switching - zero.powerminer.potential_switching).abs()
                < 1e-9
        );
    }

    #[test]
    fn observed_never_exceeds_potential() {
        let cfg = CoreConfig::power9();
        let r = run_detailed(
            &cfg,
            vec![trace(10_000)],
            Roi::new(500, 1_000_000),
            ToggleDensity::random_init(),
        );
        for g in &r.groups {
            assert!(
                g.observed_switching <= g.potential_switching + 1e-9,
                "{:?}: observed {} > potential {}",
                g.kind,
                g.observed_switching,
                g.potential_switching
            );
        }
        assert!(r.powerminer.observed_ratio <= 1.0);
        assert!(r.powerminer.observed_ratio > 0.0);
    }

    #[test]
    fn bookkeeping_cost_scales_with_cycles() {
        let cfg = CoreConfig::power10();
        let short = run_detailed(
            &cfg,
            vec![trace(4_000)],
            Roi::new(100, 1_000_000),
            ToggleDensity::default(),
        );
        let long = run_detailed(
            &cfg,
            vec![trace(16_000)],
            Roi::new(100, 1_000_000),
            ToggleDensity::default(),
        );
        assert!(long.bookkeeping_ops > 2 * short.bookkeeping_ops);
        assert_eq!(long.groups.len(), 39);
    }
}
