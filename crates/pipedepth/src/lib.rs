//! # p10-pipedepth
//!
//! The optimal pipeline-depth study of paper §II-A (Fig. 2), following
//! the methodology of Srinivasan et al. ("Optimizing pipelines for power
//! and performance") and Zyuban's hardware-intensity work: sweep the
//! logic depth per stage (FO4) for several core power targets, model
//! power-limited frequency, and find the throughput-optimal point.
//!
//! Model summary (all quantities relative to a reference design):
//!
//! * Cycle time per stage = `fo4 + latch_overhead` (latch insertion +
//!   skew, in FO4 units); frequency ∝ 1/cycle-time.
//! * Pipeline stages = `logic_depth / fo4`; deeper pipes raise CPI via
//!   hazard penalties that scale with stage count (branch redirect,
//!   dependent-op bubbles).
//! * Power components, per the Einspower decomposition the paper cites:
//!   latch-clock power ∝ latches × frequency (latch count grows
//!   superlinearly with stage count), logic data switching ∝ frequency,
//!   arrays/register files ∝ frequency with a weak depth term, leakage ∝
//!   latch count.
//! * If the power at max frequency exceeds the target envelope, voltage
//!   and frequency scale down together (`P ∝ f³` on the DVFS curve) until
//!   the design fits — the paper's "power limited frequency constraint".
//!
//! Performance is reported in relative BIPS, normalized to the optimum of
//! the baseline (1.0×) power target, exactly like Fig. 2's y-axis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Model parameters (calibrated once; see DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthParams {
    /// Total logic depth of the machine in FO4 (work per instruction).
    pub logic_depth: f64,
    /// Latch insertion + clock-skew overhead per stage, in FO4.
    pub latch_overhead: f64,
    /// Base CPI at a hypothetical 1-stage machine.
    pub cpi_base: f64,
    /// Hazard CPI added per pipeline stage (branch redirects, bubbles).
    pub hazard_per_stage: f64,
    /// Latch-count growth exponent with stage count.
    pub latch_growth: f64,
    /// Share of reference power that is latch-clock power.
    pub clock_share: f64,
    /// Share that is logic/array switching.
    pub switch_share: f64,
    /// Share that is leakage.
    pub leak_share: f64,
}

impl Default for DepthParams {
    fn default() -> Self {
        DepthParams {
            logic_depth: 480.0,
            latch_overhead: 3.0,
            cpi_base: 0.55,
            hazard_per_stage: 0.022,
            latch_growth: 1.1,
            clock_share: 0.45,
            switch_share: 0.40,
            leak_share: 0.15,
        }
    }
}

/// Reference FO4 at which power shares are defined (the POWER9-class
/// baseline design point).
pub const REF_FO4: f64 = 27.0;

/// One point of the Fig. 2 sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DepthPoint {
    /// Logic FO4 per stage.
    pub fo4: f64,
    /// Power target as a fraction of the baseline design's power.
    pub power_target: f64,
    /// Relative performance (BIPS), normalized by the caller.
    pub bips: f64,
    /// Power-limited frequency (relative to the reference design).
    pub freq: f64,
    /// Unconstrained power at maximum frequency (relative).
    pub unconstrained_power: f64,
}

impl DepthParams {
    fn stages(&self, fo4: f64) -> f64 {
        self.logic_depth / fo4
    }

    /// Maximum frequency at this FO4, relative to the reference design.
    #[must_use]
    pub fn max_freq(&self, fo4: f64) -> f64 {
        (REF_FO4 + self.latch_overhead) / (fo4 + self.latch_overhead)
    }

    /// Instructions per cycle at this depth.
    #[must_use]
    pub fn ipc(&self, fo4: f64) -> f64 {
        1.0 / (self.cpi_base + self.hazard_per_stage * self.stages(fo4))
    }

    /// Power at maximum frequency, relative to the reference design at
    /// reference FO4.
    #[must_use]
    pub fn power_at_max_freq(&self, fo4: f64) -> f64 {
        let f = self.max_freq(fo4);
        let latch_ratio = (self.stages(fo4) / self.stages(REF_FO4)).powf(self.latch_growth);
        self.clock_share * latch_ratio * f + self.switch_share * f + self.leak_share * latch_ratio
    }

    /// Evaluates one sweep point under a power target: frequency (and
    /// voltage, down to the Vmin floor) scale until the envelope is met.
    #[must_use]
    pub fn evaluate(&self, fo4: f64, power_target: f64) -> DepthPoint {
        const V_FLOOR: f64 = 0.7; // minimum voltage, fraction of nominal
        let p_max = self.power_at_max_freq(fo4);
        // DVFS: P ∝ V²·f with V tracking f down to the Vmin floor; below
        // it only frequency scales (P ∝ f), which punishes power-hungry
        // deep pipelines much harder at very low power targets.
        let ratio = (power_target / p_max).min(1.0);
        let scale = if ratio >= V_FLOOR.powi(3) {
            ratio.cbrt()
        } else {
            ratio / (V_FLOOR * V_FLOOR)
        };
        let freq = self.max_freq(fo4) * scale;
        DepthPoint {
            fo4,
            power_target,
            bips: freq * self.ipc(fo4),
            freq,
            unconstrained_power: p_max,
        }
    }
}

/// The full Fig. 2 dataset: BIPS vs FO4 curves for each power target,
/// normalized to the baseline-power optimum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Sweep points, grouped by power target in the order given.
    pub points: Vec<DepthPoint>,
    /// The FO4 grid used.
    pub fo4_grid: Vec<f64>,
    /// The power targets used (fractions of baseline).
    pub power_targets: Vec<f64>,
}

impl Fig2 {
    /// The optimal FO4 for a power target.
    ///
    /// # Panics
    ///
    /// Panics if the target was not part of the sweep.
    #[must_use]
    pub fn optimal_fo4(&self, power_target: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| (p.power_target - power_target).abs() < 1e-9)
            .max_by(|a, b| a.bips.partial_cmp(&b.bips).expect("finite"))
            .expect("target must be in the sweep")
            .fo4
    }
}

/// Runs the Fig. 2 sweep with the paper's power targets (0.5×–1.0× of
/// the baseline) plus optional extra low-power targets.
#[must_use]
pub fn run_fig2(params: &DepthParams, extra_targets: &[f64]) -> Fig2 {
    let fo4_grid: Vec<f64> = (8..=50).map(f64::from).collect();
    let mut power_targets = vec![1.0, 0.85, 0.7, 0.5];
    power_targets.extend_from_slice(extra_targets);

    let mut points = Vec::new();
    for &t in &power_targets {
        for &fo4 in &fo4_grid {
            points.push(params.evaluate(fo4, t));
        }
    }
    // Normalize BIPS to the baseline-target optimum (Fig. 2 y-axis).
    let norm = points
        .iter()
        .filter(|p| (p.power_target - 1.0).abs() < 1e-9)
        .map(|p| p.bips)
        .fold(0.0f64, f64::max);
    if norm > 0.0 {
        for p in &mut points {
            p.bips /= norm;
        }
    }
    Fig2 {
        points,
        fo4_grid,
        power_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_stable_at_27_fo4_for_targets_of_interest() {
        // The paper's central Fig. 2 result: the optimal pipeline depth
        // holds at ~27 FO4 across the 0.5x-1.0x power targets.
        let f = run_fig2(&DepthParams::default(), &[]);
        for t in [1.0, 0.85, 0.7, 0.5] {
            let opt = f.optimal_fo4(t);
            assert!(
                (23.0..=31.0).contains(&opt),
                "optimum at target {t} must sit near 27 FO4, got {opt}"
            );
        }
    }

    #[test]
    fn very_low_power_targets_prefer_shallower_pipes() {
        // "higher FO4 points were indicated as optimal for lower core
        // power targets".
        let f = run_fig2(&DepthParams::default(), &[0.25, 0.15]);
        let opt_base = f.optimal_fo4(1.0);
        let opt_low = f.optimal_fo4(0.15);
        assert!(
            opt_low > opt_base + 4.0,
            "low-power optimum {opt_low} must be shallower (higher FO4) than {opt_base}"
        );
    }

    #[test]
    fn bips_normalized_to_baseline_optimum() {
        let f = run_fig2(&DepthParams::default(), &[]);
        let max_base = f
            .points
            .iter()
            .filter(|p| (p.power_target - 1.0).abs() < 1e-9)
            .map(|p| p.bips)
            .fold(0.0f64, f64::max);
        assert!((max_base - 1.0).abs() < 1e-12);
        // Lower targets can only do worse or equal.
        for p in &f.points {
            assert!(p.bips <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn deeper_pipes_raise_frequency_but_hurt_ipc() {
        let p = DepthParams::default();
        assert!(p.max_freq(14.0) > p.max_freq(27.0));
        assert!(p.ipc(14.0) < p.ipc(27.0));
    }

    #[test]
    fn power_envelope_caps_frequency() {
        let p = DepthParams::default();
        let unconstrained = p.evaluate(14.0, 100.0);
        let constrained = p.evaluate(14.0, 0.5);
        assert!(constrained.freq < unconstrained.freq);
        assert!(constrained.bips < unconstrained.bips);
    }

    #[test]
    fn deep_pipe_at_max_freq_burns_more_power() {
        let p = DepthParams::default();
        assert!(p.power_at_max_freq(14.0) > p.power_at_max_freq(27.0));
        assert!(p.power_at_max_freq(27.0) > p.power_at_max_freq(45.0));
    }
}
