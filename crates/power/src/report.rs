//! Power reports: per-component breakdown and aggregate views.

use crate::components::ComponentKind;
use serde::{Deserialize, Serialize};

/// Per-cycle power of one component, split by mechanism (the Einspower
/// decomposition named in the paper: latch-clock, data switching, ghost
/// switching, array, register file — plus leakage).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// Which component.
    pub kind: ComponentKind,
    /// Latch-clock power.
    pub clock: f64,
    /// Logic data-switching power.
    pub data: f64,
    /// Ghost-switching power (input toggling with no corresponding write).
    pub ghost: f64,
    /// Array access power.
    pub array: f64,
    /// Register-file port power.
    pub regfile: f64,
    /// Leakage power.
    pub leakage: f64,
}

impl ComponentPower {
    /// Total power of this component.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.clock + self.data + self.ghost + self.array + self.regfile + self.leakage
    }

    /// Dynamic (non-leakage) power of this component.
    #[must_use]
    pub fn dynamic(&self) -> f64 {
        self.total() - self.leakage
    }
}

/// A full power evaluation for one activity window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Per-component power (39 entries).
    pub components: Vec<ComponentPower>,
    /// Cycles in the evaluated window.
    pub cycles: u64,
    /// Power of the same hardware at zero activity (idle clock enables +
    /// leakage) — the "static" part the paper excludes from *active power*.
    pub idle_total: f64,
}

impl PowerReport {
    /// Total power (core + nest).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.components.iter().map(ComponentPower::total).sum()
    }

    /// Core power: everything except the L2/L3 nest components. This is
    /// the "core power" quantity in Figs. 5 and 10.
    #[must_use]
    pub fn core_total(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| !c.kind.is_nest())
            .map(ComponentPower::total)
            .sum()
    }

    /// Nest (L2+L3) power.
    #[must_use]
    pub fn nest_total(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| c.kind.is_nest())
            .map(ComponentPower::total)
            .sum()
    }

    /// Total leakage power.
    #[must_use]
    pub fn leakage(&self) -> f64 {
        self.components.iter().map(|c| c.leakage).sum()
    }

    /// Active power: the workload-dependent part, excluding leakage and
    /// active-idle power (the paper's definition in §III-D).
    #[must_use]
    pub fn active(&self) -> f64 {
        (self.total() - self.idle_total).max(0.0)
    }

    /// Power of one component by kind, zero if absent.
    #[must_use]
    pub fn component(&self, kind: ComponentKind) -> f64 {
        self.components
            .iter()
            .find(|c| c.kind == kind)
            .map_or(0.0, ComponentPower::total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(kind: ComponentKind, v: f64) -> ComponentPower {
        ComponentPower {
            kind,
            clock: v,
            data: v,
            ghost: 0.0,
            array: 0.0,
            regfile: 0.0,
            leakage: v / 2.0,
        }
    }

    #[test]
    fn totals_partition_into_core_and_nest() {
        let r = PowerReport {
            components: vec![
                cp(ComponentKind::Decode, 2.0),
                cp(ComponentKind::L2Array, 1.0),
            ],
            cycles: 100,
            idle_total: 1.0,
        };
        assert!((r.total() - (r.core_total() + r.nest_total())).abs() < 1e-12);
        assert!(r.core_total() > r.nest_total());
        assert!((r.leakage() - 1.5).abs() < 1e-12);
        assert!((r.active() - (r.total() - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn component_lookup() {
        let r = PowerReport {
            components: vec![cp(ComponentKind::Decode, 2.0)],
            cycles: 1,
            idle_total: 0.0,
        };
        assert!(r.component(ComponentKind::Decode) > 0.0);
        assert_eq!(r.component(ComponentKind::MmaGrid), 0.0);
    }

    #[test]
    fn active_never_negative() {
        let r = PowerReport {
            components: vec![],
            cycles: 1,
            idle_total: 5.0,
        };
        assert_eq!(r.active(), 0.0);
    }
}

impl std::fmt::Display for PowerReport {
    /// Renders the per-component breakdown as a fixed-width table
    /// (components sorted by total power, largest first), followed by
    /// the aggregate rows — the format used for quick power triage.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<20} {:>8} {:>8} {:>7} {:>7} {:>8} {:>8} {:>9}",
            "component", "clock", "data", "ghost", "array", "regfile", "leakage", "total"
        )?;
        let mut rows: Vec<&ComponentPower> = self.components.iter().collect();
        rows.sort_by(|a, b| b.total().partial_cmp(&a.total()).expect("finite"));
        for c in rows {
            if c.total() < 1e-9 {
                continue;
            }
            writeln!(
                f,
                "{:<20} {:>8.2} {:>8.2} {:>7.2} {:>7.2} {:>8.2} {:>8.2} {:>9.2}",
                format!("{:?}", c.kind),
                c.clock,
                c.data,
                c.ghost,
                c.array,
                c.regfile,
                c.leakage,
                c.total()
            )?;
        }
        writeln!(
            f,
            "core {:.2} | nest {:.2} | leakage {:.2} | active {:.2} | total {:.2}",
            self.core_total(),
            self.nest_total(),
            self.leakage(),
            self.active(),
            self.total()
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use crate::components::ComponentKind;

    #[test]
    fn display_is_nonempty_and_sorted() {
        let mk = |kind, v: f64| ComponentPower {
            kind,
            clock: v,
            data: 0.0,
            ghost: 0.0,
            array: 0.0,
            regfile: 0.0,
            leakage: 0.0,
        };
        let r = PowerReport {
            components: vec![
                mk(ComponentKind::Decode, 1.0),
                mk(ComponentKind::VsxPipes, 5.0),
                mk(ComponentKind::MmaGrid, 0.0), // hidden (zero)
            ],
            cycles: 10,
            idle_total: 0.5,
        };
        let text = r.to_string();
        assert!(!text.is_empty());
        let vsx = text.find("VsxPipes").expect("largest shown");
        let dec = text.find("Decode").expect("smaller shown");
        assert!(vsx < dec, "sorted largest-first");
        assert!(!text.contains("MmaGrid"), "zero rows hidden");
        assert!(text.contains("total"));
    }
}
