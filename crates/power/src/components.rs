//! The 39-component decomposition of the core (+L2+L3) used by the
//! bottom-up power model.
//!
//! The paper's bottom-up macro model decomposes the core into 39
//! components (§III-D); this module defines the same granularity for the
//! simulated core. Each component carries a latch budget and an array
//! capacity derived from the configuration, so structure-size changes
//! (bigger L2, deeper queues, doubled predictors...) show up in clock and
//! leakage power automatically.

use p10_uarch::CoreConfig;
use serde::{Deserialize, Serialize};

/// Identity of a power component (39 total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // names are self-describing unit identities
pub enum ComponentKind {
    FetchControl,
    ICacheArray,
    BranchDirection,
    BranchIndirect,
    ReturnStack,
    Predecode,
    InstructionBuffer,
    Decode,
    FusionLogic,
    Dispatch,
    InstructionTable,
    RenameMapper,
    IssueQueue,
    RegfileGpr,
    RegfileVsr,
    BypassNetwork,
    AluSlices,
    MulUnit,
    DivUnit,
    BranchExec,
    VsxPipes,
    MmaGrid,
    MmaAccumulators,
    LsuAgen,
    LoadQueue,
    StoreQueue,
    LoadMissQueue,
    L1DArray,
    Erat,
    Tlb,
    PrefetchEngine,
    StoreDrain,
    Completion,
    SprUnit,
    PervasiveClock,
    L2Array,
    L2Control,
    L3Array,
    L3Control,
}

impl ComponentKind {
    /// All 39 components.
    pub const ALL: [ComponentKind; 39] = [
        ComponentKind::FetchControl,
        ComponentKind::ICacheArray,
        ComponentKind::BranchDirection,
        ComponentKind::BranchIndirect,
        ComponentKind::ReturnStack,
        ComponentKind::Predecode,
        ComponentKind::InstructionBuffer,
        ComponentKind::Decode,
        ComponentKind::FusionLogic,
        ComponentKind::Dispatch,
        ComponentKind::InstructionTable,
        ComponentKind::RenameMapper,
        ComponentKind::IssueQueue,
        ComponentKind::RegfileGpr,
        ComponentKind::RegfileVsr,
        ComponentKind::BypassNetwork,
        ComponentKind::AluSlices,
        ComponentKind::MulUnit,
        ComponentKind::DivUnit,
        ComponentKind::BranchExec,
        ComponentKind::VsxPipes,
        ComponentKind::MmaGrid,
        ComponentKind::MmaAccumulators,
        ComponentKind::LsuAgen,
        ComponentKind::LoadQueue,
        ComponentKind::StoreQueue,
        ComponentKind::LoadMissQueue,
        ComponentKind::L1DArray,
        ComponentKind::Erat,
        ComponentKind::Tlb,
        ComponentKind::PrefetchEngine,
        ComponentKind::StoreDrain,
        ComponentKind::Completion,
        ComponentKind::SprUnit,
        ComponentKind::PervasiveClock,
        ComponentKind::L2Array,
        ComponentKind::L2Control,
        ComponentKind::L3Array,
        ComponentKind::L3Control,
    ];

    /// Whether this component belongs to the nest (L2/L3) rather than the
    /// core proper. Core-power figures (e.g. Fig. 5) exclude these.
    #[must_use]
    pub fn is_nest(self) -> bool {
        matches!(
            self,
            ComponentKind::L2Array
                | ComponentKind::L2Control
                | ComponentKind::L3Array
                | ComponentKind::L3Control
        )
    }

    /// Whether this component is power-gated when fully idle (the MMA
    /// unit, paper §IV-A).
    #[must_use]
    pub fn is_power_gated(self) -> bool {
        matches!(
            self,
            ComponentKind::MmaGrid | ComponentKind::MmaAccumulators
        )
    }
}

/// Physical description of one component instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Which component.
    pub kind: ComponentKind,
    /// Latch budget (relative units).
    pub latches: f64,
    /// Array capacity in KiB (SRAM-like storage).
    pub array_kb: f64,
}

/// Builds the 39 component specs for a configuration.
#[must_use]
pub fn build_components(cfg: &CoreConfig) -> Vec<ComponentSpec> {
    let mut v: Vec<ComponentSpec> = Vec::with_capacity(39);
    macro_rules! push {
        ($kind:expr, $latches:expr, $array_kb:expr $(,)?) => {
            v.push(ComponentSpec {
                kind: $kind,
                latches: $latches,
                array_kb: $array_kb,
            });
        };
    }
    let kb = |bytes: u64| bytes as f64 / 1024.0;

    push!(
        ComponentKind::FetchControl,
        6_000.0 + f64::from(cfg.fetch_width) * 500.0,
        0.0,
    );
    push!(ComponentKind::ICacheArray, 1_000.0, kb(cfg.l1i.size_bytes));
    let dir_kb = f64::from(cfg.branch.direction_entries) * 2.0 / 8.0 / 1024.0;
    push!(
        ComponentKind::BranchDirection,
        2_000.0 + f64::from(cfg.branch.long_history_entries) / 16.0,
        dir_kb + f64::from(cfg.branch.long_history_entries) * 4.0 / 8.0 / 1024.0,
    );
    push!(
        ComponentKind::BranchIndirect,
        500.0,
        f64::from(cfg.branch.indirect_entries) * 8.0 / 1024.0,
    );
    push!(
        ComponentKind::ReturnStack,
        f64::from(cfg.branch.return_stack) * 70.0,
        0.0,
    );
    push!(
        ComponentKind::Predecode,
        if cfg.fusion { 5_000.0 } else { 3_000.0 },
        0.0,
    );
    push!(
        ComponentKind::InstructionBuffer,
        f64::from(cfg.fetch_buffer) * 150.0,
        0.0,
    );
    push!(
        ComponentKind::Decode,
        f64::from(cfg.decode_width) * 1_800.0,
        0.0,
    );
    push!(
        ComponentKind::FusionLogic,
        if cfg.fusion { 2_500.0 } else { 0.0 },
        0.0,
    );
    push!(
        ComponentKind::Dispatch,
        f64::from(cfg.dispatch_width) * 900.0,
        0.0,
    );
    push!(
        ComponentKind::InstructionTable,
        f64::from(cfg.itable_entries) * 45.0,
        0.0,
    );
    push!(
        ComponentKind::RenameMapper,
        if cfg.unified_regfile {
            3_500.0
        } else {
            4_500.0
        },
        0.0,
    );
    // Reservation stations hold operand *data* in latches; the unified
    // design keeps only tags in the queue and data in dense arrays.
    push!(
        ComponentKind::IssueQueue,
        f64::from(cfg.issue_queue_entries) * if cfg.unified_regfile { 60.0 } else { 220.0 },
        0.0,
    );
    if cfg.unified_regfile {
        push!(ComponentKind::RegfileGpr, 1_000.0, 16.0);
        push!(ComponentKind::RegfileVsr, 1_500.0, 32.0);
    } else {
        push!(ComponentKind::RegfileGpr, 14_000.0, 0.0);
        push!(ComponentKind::RegfileVsr, 20_000.0, 0.0);
    }
    push!(
        ComponentKind::BypassNetwork,
        f64::from(cfg.int_slices) * 1_200.0 + f64::from(cfg.vsx_units) * 1_500.0,
        0.0,
    );
    push!(
        ComponentKind::AluSlices,
        f64::from(cfg.int_slices) * 2_500.0,
        0.0,
    );
    push!(ComponentKind::MulUnit, 3_000.0, 0.0);
    push!(ComponentKind::DivUnit, 2_500.0, 0.0);
    push!(
        ComponentKind::BranchExec,
        if cfg.branch_slices >= cfg.int_slices {
            800.0 // merged into the general slices (POWER10)
        } else {
            2_000.0 // dedicated branch port (POWER9)
        },
        0.0,
    );
    push!(
        ComponentKind::VsxPipes,
        f64::from(cfg.vsx_units) * 6_000.0,
        0.0,
    );
    if cfg.mma.is_some() {
        push!(ComponentKind::MmaGrid, 9_000.0, 0.0);
        push!(ComponentKind::MmaAccumulators, 5_000.0, 0.0);
    } else {
        push!(ComponentKind::MmaGrid, 0.0, 0.0);
        push!(ComponentKind::MmaAccumulators, 0.0, 0.0);
    }
    push!(
        ComponentKind::LsuAgen,
        f64::from(cfg.load_ports + cfg.store_ports) * 1_800.0,
        0.0,
    );
    push!(
        ComponentKind::LoadQueue,
        f64::from(cfg.load_queue) * 55.0,
        0.0,
    );
    push!(
        ComponentKind::StoreQueue,
        f64::from(cfg.store_queue) * 85.0,
        0.0,
    );
    push!(
        ComponentKind::LoadMissQueue,
        f64::from(cfg.load_miss_queue) * 120.0,
        0.0,
    );
    push!(ComponentKind::L1DArray, 1_200.0, kb(cfg.l1d.size_bytes));
    push!(ComponentKind::Erat, f64::from(cfg.erat_entries) * 65.0, 0.0,);
    push!(
        ComponentKind::Tlb,
        800.0,
        f64::from(cfg.tlb_entries) * 8.0 / 1024.0,
    );
    push!(
        ComponentKind::PrefetchEngine,
        f64::from(cfg.prefetch_streams) * 180.0,
        0.0,
    );
    push!(
        ComponentKind::StoreDrain,
        if cfg.store_merge { 1_200.0 } else { 600.0 },
        0.0,
    );
    push!(
        ComponentKind::Completion,
        f64::from(cfg.completion_width) * 700.0,
        0.0,
    );
    push!(ComponentKind::SprUnit, 1_200.0, 0.0);

    // Pervasive clock distribution: proportional to everything built so
    // far (core side only; power-gated units bring their own gated clock
    // headers and do not load the always-on spine).
    let core_latches: f64 = v
        .iter()
        .filter(|c| !c.kind.is_power_gated())
        .map(|c| c.latches)
        .sum();
    push!(ComponentKind::PervasiveClock, core_latches * 0.06, 0.0);

    push!(ComponentKind::L2Array, 2_000.0, kb(cfg.l2.size_bytes));
    push!(ComponentKind::L2Control, 3_500.0, 0.0);
    push!(ComponentKind::L3Array, 2_500.0, kb(cfg.l3.size_bytes));
    push!(ComponentKind::L3Control, 4_000.0, 0.0);

    debug_assert_eq!(v.len(), 39);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_39_components_for_both_generations() {
        assert_eq!(build_components(&CoreConfig::power9()).len(), 39);
        assert_eq!(build_components(&CoreConfig::power10()).len(), 39);
        assert_eq!(ComponentKind::ALL.len(), 39);
    }

    #[test]
    fn every_kind_appears_exactly_once() {
        let specs = build_components(&CoreConfig::power10());
        for kind in ComponentKind::ALL {
            assert_eq!(
                specs.iter().filter(|s| s.kind == kind).count(),
                1,
                "{kind:?} must appear once"
            );
        }
    }

    #[test]
    fn reservation_station_removal_shrinks_issue_latches() {
        let find = |cfg: &CoreConfig, kind| {
            build_components(cfg)
                .into_iter()
                .find(|s| s.kind == kind)
                .unwrap()
        };
        let p9 = find(&CoreConfig::power9(), ComponentKind::IssueQueue);
        let p10 = find(&CoreConfig::power10(), ComponentKind::IssueQueue);
        // POWER10 has twice the entries yet fewer issue latches.
        assert!(p10.latches < p9.latches);
        // And its register files become arrays instead of latch stacks.
        let rf9 = find(&CoreConfig::power9(), ComponentKind::RegfileVsr);
        let rf10 = find(&CoreConfig::power10(), ComponentKind::RegfileVsr);
        assert!(rf10.latches < rf9.latches / 5.0);
        assert!(rf10.array_kb > 0.0 && rf9.array_kb == 0.0);
    }

    #[test]
    fn p10_has_more_total_latches_than_p9() {
        // The paper: higher runtime derating "in spite of a higher latch
        // count" — POWER10 is the bigger core.
        let total = |cfg: &CoreConfig| -> f64 {
            build_components(cfg)
                .iter()
                .filter(|s| !s.kind.is_nest())
                .map(|s| s.latches)
                .sum()
        };
        assert!(total(&CoreConfig::power10()) > total(&CoreConfig::power9()));
    }

    #[test]
    fn nest_and_gating_classification() {
        assert!(ComponentKind::L2Array.is_nest());
        assert!(ComponentKind::L3Control.is_nest());
        assert!(!ComponentKind::Decode.is_nest());
        assert!(ComponentKind::MmaGrid.is_power_gated());
        assert!(!ComponentKind::VsxPipes.is_power_gated());
    }

    #[test]
    fn l2_capacity_flows_into_array_kb() {
        let specs = build_components(&CoreConfig::power10());
        let l2 = specs
            .iter()
            .find(|s| s.kind == ComponentKind::L2Array)
            .unwrap();
        assert!((l2.array_kb - 1024.0).abs() < 1e-9);
    }
}
