//! # p10-power
//!
//! A component-level core power model in the style of IBM's Einspower
//! methodology as described in the paper: per-component energy split into
//! **latch-clock**, **logic data switching**, **ghost switching**, **array
//! access**, and **register-file** contributions, plus leakage — driven by
//! the per-unit activity counters produced by the `p10-uarch` cycle model.
//!
//! Power is reported in arbitrary *relative* energy units per cycle. The
//! paper's published numbers are all ratios (POWER10 vs POWER9 at iso
//! voltage/frequency), and this model is calibrated the same way: the
//! technology/discipline constants in [`TechParams`] are fixed once,
//! globally, and every experiment reads off ratios.
//!
//! The POWER9→POWER10 power-efficiency mechanisms are modeled explicitly:
//!
//! * **Clock-gating discipline** — POWER10 designs start with latch clocks
//!   off by default; the idle clock-enable floor drops from ~35% to ~10%
//!   ([`DesignStyle`]).
//! * **Ghost-switching reduction** — data toggling that does not
//!   correspond to a write was explicitly tracked and driven down.
//! * **EA-tagged L1** — the power-hungry ERAT CAM lookup happens only on
//!   L1 misses; the activity counters make this visible directly.
//! * **Reservation-station removal / unified register file** — issue
//!   bookkeeping moves from latch-heavy structures into denser arrays
//!   with two write ports per bank.
//! * **Fusion** — fused pairs do one operation's worth of decode/dispatch
//!   work.
//! * **FP circuit optimization** — the progressive carry-save-adder and
//!   "sum" pass-gate circuits cut VSX energy per flop by ~40%.
//! * **MMA power gating** — a fully idle MMA unit contributes no clock or
//!   leakage power (it is power-gated; see paper §IV-A).
//!
//! ## Example
//!
//! ```
//! use p10_uarch::{Activity, CoreConfig};
//! use p10_power::PowerModel;
//!
//! let cfg = CoreConfig::power10();
//! let model = PowerModel::for_config(&cfg);
//! let mut act = Activity::default();
//! act.cycles = 1000;
//! act.completed = 2000;
//! act.fetched = 2100;
//! act.decoded = 2100;
//! act.issued = 2100;
//! act.alu_ops = 1500;
//! let report = model.evaluate(&act);
//! assert!(report.core_total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod components;
mod model;
mod report;
mod tech;

pub use components::{ComponentKind, ComponentSpec};
pub use model::{GroupActivity, PowerModel};
pub use report::{ComponentPower, PowerReport};
pub use tech::{DesignStyle, TechParams};
