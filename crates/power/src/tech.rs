//! Technology and design-discipline constants.
//!
//! All energies are in arbitrary relative units. Constants are calibrated
//! once so that the paper's published POWER9→POWER10 *ratios* emerge from
//! the mechanisms (see `EXPERIMENTS.md`); no experiment tunes them
//! individually.

use p10_uarch::CoreConfig;
use serde::{Deserialize, Serialize};

/// The design discipline, which determines clock-gating quality and ghost
/// switching (paper §II-B: "latch clocks off by default").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignStyle {
    /// POWER9-era discipline: clock gating added after mainline function.
    Legacy,
    /// POWER10 discipline: clocks off by default, ghost switching tracked
    /// and driven down, structure-efficiency redesign of all major blocks.
    ClockGatedByDefault,
}

impl DesignStyle {
    /// Infers the style from a configuration: the unified register file is
    /// the signature of the POWER10 full redesign.
    #[must_use]
    pub fn infer(cfg: &CoreConfig) -> Self {
        if cfg.unified_regfile {
            DesignStyle::ClockGatedByDefault
        } else {
            DesignStyle::Legacy
        }
    }
}

/// Per-design energy and leakage coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Energy per latch per clock-enabled cycle.
    pub e_latch_clock: f64,
    /// Fraction of a unit's latches whose clocks remain enabled when the
    /// unit is idle (the clock-gating floor).
    pub idle_clock_enable: f64,
    /// Extra fraction of latch clocks enabled per unit of duty (activity
    /// opens clock gates); effective enable = floor + duty * this.
    pub active_clock_enable: f64,
    /// Energy per operation's worth of logic data switching, per latch
    /// involved (scaled by unit size).
    pub e_data_switch: f64,
    /// Ghost switching as a fraction of data switching energy.
    pub ghost_factor: f64,
    /// Energy per kilobyte-normalized array access.
    pub e_array_access: f64,
    /// Energy per register-file port access (per 64-bit word).
    pub e_regfile_port: f64,
    /// Energy per ERAT CAM lookup (the "relatively power-hungry"
    /// effective-to-real translation, paper §II-B).
    pub e_erat_lookup: f64,
    /// Energy per double-precision-flop-equivalent in the VSX pipes.
    pub e_vsx_flop: f64,
    /// Energy per flop-equivalent on the MMA grid (lower than VSX: no
    /// per-op register-file traffic, short local accumulator wiring).
    pub e_mma_flop: f64,
    /// Leakage power per latch per cycle.
    pub leak_per_latch: f64,
    /// Leakage power per KiB of array per cycle.
    pub leak_per_kb: f64,
}

impl TechParams {
    /// Constants for a design style (iso voltage/frequency; technology-node
    /// benefits deliberately excluded, as in the paper's 2.6× claim).
    #[must_use]
    pub fn for_style(style: DesignStyle) -> Self {
        match style {
            DesignStyle::Legacy => TechParams {
                e_latch_clock: 1.2,
                idle_clock_enable: 0.42,
                active_clock_enable: 0.55,
                e_data_switch: 1.15,
                ghost_factor: 0.30,
                e_array_access: 2.0,
                e_regfile_port: 6.0,
                e_erat_lookup: 55.0,
                e_vsx_flop: 26.0,
                e_mma_flop: 10.0,
                leak_per_latch: 6.0e-5,
                leak_per_kb: 0.01,
            },
            DesignStyle::ClockGatedByDefault => TechParams {
                e_latch_clock: 1.2,
                idle_clock_enable: 0.07,
                active_clock_enable: 0.35,
                e_data_switch: 0.85, // structure-efficiency redesign
                ghost_factor: 0.08,
                e_array_access: 2.0,
                e_regfile_port: 4.0, // unified file, 2-port banks
                e_erat_lookup: 55.0,
                e_vsx_flop: 15.6, // CSA + "sum" pass-gate circuits: ~40% lower
                e_mma_flop: 6.0,
                leak_per_latch: 6.0e-5,
                leak_per_kb: 0.01,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_inferred_from_unified_regfile() {
        assert_eq!(
            DesignStyle::infer(&CoreConfig::power9()),
            DesignStyle::Legacy
        );
        assert_eq!(
            DesignStyle::infer(&CoreConfig::power10()),
            DesignStyle::ClockGatedByDefault
        );
    }

    #[test]
    fn p10_discipline_strictly_better_on_gating_and_ghost() {
        let p9 = TechParams::for_style(DesignStyle::Legacy);
        let p10 = TechParams::for_style(DesignStyle::ClockGatedByDefault);
        assert!(p10.idle_clock_enable < p9.idle_clock_enable);
        assert!(p10.ghost_factor < p9.ghost_factor);
        assert!(p10.e_vsx_flop < p9.e_vsx_flop * 0.65); // >40% FP power cut
        assert!(p10.e_mma_flop < p10.e_vsx_flop); // MMA beats VSX per flop
    }

    #[test]
    fn leakage_constants_are_style_independent() {
        // Iso-technology: leakage differences come from structure sizes and
        // power gating, not from the discipline constants.
        let p9 = TechParams::for_style(DesignStyle::Legacy);
        let p10 = TechParams::for_style(DesignStyle::ClockGatedByDefault);
        assert_eq!(p9.leak_per_latch, p10.leak_per_latch);
        assert_eq!(p9.leak_per_kb, p10.leak_per_kb);
    }
}
