//! The power model proper: maps activity counters onto the 39 components.

use crate::components::{build_components, ComponentKind, ComponentSpec};
use crate::report::{ComponentPower, PowerReport};
use crate::tech::{DesignStyle, TechParams};
use p10_uarch::{Activity, CoreConfig};

/// Per-component activity for one evaluation window.
#[derive(Debug, Clone, Copy, Default)]
struct UnitActivity {
    /// Fraction of the unit's capacity used (drives clock-gate opening).
    duty: f64,
    /// Logic events per cycle (drives data + ghost switching).
    events: f64,
    /// Per-event switching energy (relative units).
    event_energy: f64,
    /// Array accesses per cycle (drives array power).
    accesses: f64,
    /// Register-file word-port accesses per cycle.
    rf_words: f64,
    /// Directly computed energy per cycle (e.g. flops × energy/flop).
    direct: f64,
}

/// Latch-group activity summary exposed to the RTLSim/Powerminer analog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupActivity {
    /// Which component.
    pub kind: ComponentKind,
    /// Latch budget of the group.
    pub latches: f64,
    /// Capacity-normalized duty in [0, 1].
    pub duty: f64,
    /// Logic events per cycle.
    pub events_per_cycle: f64,
    /// Fraction of the group's latch clocks enabled per cycle.
    pub clock_enable: f64,
}

/// An Einspower-like component power model bound to one core
/// configuration.
#[derive(Debug, Clone)]
pub struct PowerModel {
    cfg: CoreConfig,
    specs: Vec<ComponentSpec>,
    tech: TechParams,
    style: DesignStyle,
}

impl PowerModel {
    /// Builds the model for a configuration, inferring the design style
    /// (POWER10 discipline iff the unified register file is present).
    #[must_use]
    pub fn for_config(cfg: &CoreConfig) -> Self {
        Self::with_style(cfg, DesignStyle::infer(cfg))
    }

    /// Builds the model with an explicit design style.
    #[must_use]
    pub fn with_style(cfg: &CoreConfig, style: DesignStyle) -> Self {
        PowerModel {
            cfg: cfg.clone(),
            specs: build_components(cfg),
            tech: TechParams::for_style(style),
            style,
        }
    }

    /// The component specs (39 entries).
    #[must_use]
    pub fn components(&self) -> &[ComponentSpec] {
        &self.specs
    }

    /// The design style in use.
    #[must_use]
    pub fn style(&self) -> DesignStyle {
        self.style
    }

    /// Per-component latch-group statistics for one activity window:
    /// `(kind, latches, duty, events_per_cycle, clock_enable_fraction)`.
    ///
    /// This is the interface the RTLSim/Powerminer analog uses to produce
    /// latch-level switching reports without re-deriving the activity
    /// mapping.
    #[must_use]
    pub fn group_stats(&self, act: &Activity) -> Vec<GroupActivity> {
        self.specs
            .iter()
            .map(|s| {
                let ua = self.unit_activity(s.kind, act);
                let gated_off = s.kind.is_power_gated() && act.mma_ops == 0;
                let enable = if gated_off {
                    0.0
                } else {
                    (self.tech.idle_clock_enable + self.tech.active_clock_enable * ua.duty).min(1.0)
                };
                GroupActivity {
                    kind: s.kind,
                    latches: s.latches,
                    duty: ua.duty,
                    events_per_cycle: ua.events,
                    clock_enable: enable,
                }
            })
            .collect()
    }

    /// Evaluates the power for one activity window.
    #[must_use]
    pub fn evaluate(&self, act: &Activity) -> PowerReport {
        let components: Vec<ComponentPower> = self
            .specs
            .iter()
            .map(|s| self.component_power(s, act))
            .collect();
        // Idle baseline: zero activity over the same window.
        let idle = Activity {
            cycles: act.cycles.max(1),
            ..Activity::default()
        };
        let idle_total: f64 = self
            .specs
            .iter()
            .map(|s| self.component_power(s, &idle).total())
            .sum();
        PowerReport {
            components,
            cycles: act.cycles,
            idle_total,
        }
    }

    fn component_power(&self, spec: &ComponentSpec, act: &Activity) -> ComponentPower {
        let t = &self.tech;
        let ua = self.unit_activity(spec.kind, act);
        let gated_off_fraction = if spec.kind.is_power_gated() {
            // Power gating: the unit contributes clock/leakage only while
            // the gate is open. The cycle model reports the actual powered
            // window (wake latency + idle hysteresis included).
            if act.cycles == 0 {
                1.0
            } else {
                1.0 - (act.mma_powered_cycles as f64 / act.cycles as f64).min(1.0)
            }
        } else {
            0.0
        };
        let on = 1.0 - gated_off_fraction;

        let enable = (t.idle_clock_enable + t.active_clock_enable * ua.duty).min(1.0);
        let clock = spec.latches / 1000.0 * enable * t.e_latch_clock * on;
        let data = ua.events * ua.event_energy * t.e_data_switch + ua.direct;
        let ghost = ua.events * ua.event_energy * t.e_data_switch * t.ghost_factor;
        let array = ua.accesses * (1.0 + spec.array_kb).sqrt() * t.e_array_access;
        let regfile = ua.rf_words * t.e_regfile_port;
        let leakage = (spec.latches * t.leak_per_latch + spec.array_kb * t.leak_per_kb) * on;

        ComponentPower {
            kind: spec.kind,
            clock,
            data,
            ghost,
            array,
            regfile,
            leakage,
        }
    }

    /// Maps global activity counters to one component's activity.
    #[allow(clippy::too_many_lines)]
    fn unit_activity(&self, kind: ComponentKind, act: &Activity) -> UnitActivity {
        let c = act.cycles.max(1) as f64;
        let cfg = &self.cfg;
        let per = |n: u64| n as f64 / c;
        let duty_of = |n: u64, capacity: u32| (n as f64 / c / f64::from(capacity.max(1))).min(1.0);
        let mut ua = UnitActivity::default();
        match kind {
            ComponentKind::FetchControl => {
                ua.events = per(act.fetched + act.wrong_path_fetched);
                ua.event_energy = 1.0;
                ua.duty = duty_of(act.fetched + act.wrong_path_fetched, cfg.fetch_width);
            }
            ComponentKind::ICacheArray => {
                // Wrong-path fetch re-reads the array too.
                let wrong_path_groups = act.wrong_path_fetched / u64::from(cfg.fetch_width.max(1));
                ua.accesses = per(act.icache_accesses + wrong_path_groups);
                ua.duty = duty_of(act.icache_accesses + wrong_path_groups, 1);
            }
            ComponentKind::BranchDirection => {
                ua.accesses = per(act.icache_accesses); // read per fetch group
                ua.duty = duty_of(act.icache_accesses, 1);
            }
            ComponentKind::BranchIndirect => {
                ua.accesses = per(act.branch_predictions) / 8.0; // indirect subset
                ua.duty = (per(act.branch_predictions) / 8.0).min(1.0);
            }
            ComponentKind::ReturnStack => {
                ua.events = per(act.branch_ops) / 8.0;
                ua.event_energy = 0.5;
                ua.duty = ua.events.min(1.0);
            }
            ComponentKind::Predecode => {
                ua.events = per(act.fetched);
                ua.event_energy = 0.6;
                ua.duty = duty_of(act.fetched, cfg.fetch_width);
            }
            ComponentKind::InstructionBuffer => {
                ua.events = per(act.fetched + act.decoded);
                ua.event_energy = 0.8;
                ua.duty = duty_of(act.fetched, cfg.fetch_width);
            }
            ComponentKind::Decode => {
                // A fused pair does one operation's worth of decode work.
                ua.events = per(act.decoded - act.fused_pairs.min(act.decoded));
                ua.event_energy = 2.0;
                ua.duty = duty_of(act.decoded, cfg.decode_width);
            }
            ComponentKind::FusionLogic => {
                if cfg.fusion {
                    ua.events = per(act.decoded);
                    ua.event_energy = 0.5;
                    ua.duty = duty_of(act.decoded, cfg.decode_width);
                }
            }
            ComponentKind::Dispatch => {
                ua.events = per(act.dispatched - act.fused_pairs.min(act.dispatched));
                ua.event_energy = 1.5;
                ua.duty = duty_of(act.dispatched, cfg.dispatch_width);
            }
            ComponentKind::InstructionTable => {
                ua.events = per(act.dispatched + act.completed);
                ua.event_energy = 2.5;
                ua.duty = (act.mean_window_occupancy() / f64::from(cfg.itable_entries)).min(1.0);
            }
            ComponentKind::RenameMapper => {
                ua.events = per(act.dispatched);
                ua.event_energy = 1.2;
                ua.duty = duty_of(act.dispatched, cfg.dispatch_width);
            }
            ComponentKind::IssueQueue => {
                ua.events = per(act.dispatched + act.issued);
                // Reservation stations move operand data per event.
                ua.event_energy = if cfg.unified_regfile { 1.2 } else { 3.5 };
                ua.duty = duty_of(act.issued, cfg.dispatch_width);
            }
            ComponentKind::RegfileGpr => {
                ua.rf_words = per(act.regfile_reads + act.regfile_writes) * 0.6;
                ua.duty = duty_of(act.issued, cfg.dispatch_width);
            }
            ComponentKind::RegfileVsr => {
                // 128-bit accesses: two words per port.
                ua.rf_words = per(act.regfile_reads + act.regfile_writes) * 0.4 * 2.0;
                ua.duty = duty_of(act.vsx_fp_ops + act.vsx_simple_ops, cfg.vsx_units);
            }
            ComponentKind::BypassNetwork => {
                ua.events = per(act.issued);
                ua.event_energy = 1.0;
                ua.duty = duty_of(act.issued, cfg.int_slices + cfg.vsx_units);
            }
            ComponentKind::AluSlices => {
                ua.events = per(act.alu_ops);
                ua.event_energy = 2.0;
                ua.duty = duty_of(act.alu_ops, cfg.int_slices);
            }
            ComponentKind::MulUnit => {
                ua.events = per(act.mul_ops);
                ua.event_energy = 4.0;
                ua.duty = per(act.mul_ops).min(1.0);
            }
            ComponentKind::DivUnit => {
                ua.events = per(act.div_ops);
                ua.event_energy = 8.0;
                ua.duty = (per(act.div_ops) * f64::from(cfg.div_latency)).min(1.0);
            }
            ComponentKind::BranchExec => {
                ua.events = per(act.branch_ops);
                ua.event_energy = 1.0;
                ua.duty = duty_of(act.branch_ops, cfg.branch_slices);
            }
            ComponentKind::VsxPipes => {
                ua.events = per(act.vsx_simple_ops);
                ua.event_energy = 2.5;
                ua.direct = per(act.vsx_flops) * self.tech.e_vsx_flop;
                ua.duty = duty_of(act.vsx_fp_ops + act.vsx_simple_ops, cfg.vsx_units);
            }
            ComponentKind::MmaGrid => {
                ua.direct = per(act.mma_flops) * self.tech.e_mma_flop;
                ua.duty = per(act.mma_active_cycles).min(1.0);
            }
            ComponentKind::MmaAccumulators => {
                ua.events = per(act.mma_ops + act.mma_moves);
                ua.event_energy = 6.0; // 512-bit accumulator update
                ua.duty = per(act.mma_active_cycles).min(1.0);
            }
            ComponentKind::LsuAgen => {
                ua.events = per(act.loads + act.stores);
                ua.event_energy = 1.8;
                ua.duty = duty_of(act.loads + act.stores, cfg.load_ports + cfg.store_ports);
            }
            ComponentKind::LoadQueue => {
                ua.events = per(act.loads) * 2.0;
                ua.event_energy = 1.0;
                ua.duty = duty_of(act.loads, cfg.load_ports);
            }
            ComponentKind::StoreQueue => {
                ua.events = per(act.stores) * 2.0 + per(act.store_forwards);
                ua.event_energy = 1.5;
                ua.duty = duty_of(act.stores, cfg.store_ports);
            }
            ComponentKind::LoadMissQueue => {
                ua.events = per(act.l1d_misses);
                ua.event_energy = 1.0;
                ua.duty = per(act.l1d_misses).min(1.0);
            }
            ComponentKind::L1DArray => {
                ua.accesses = per(act.l1d_accesses);
                ua.duty = duty_of(act.l1d_accesses, cfg.load_ports + cfg.store_ports);
            }
            ComponentKind::Erat => {
                // The power-hungry CAM lookup: this is where EA-tagging
                // saves energy.
                ua.direct = per(act.ierat_lookups + act.derat_lookups) * self.tech.e_erat_lookup;
                ua.events = per(act.erat_misses);
                ua.event_energy = 3.0;
                ua.duty = per(act.ierat_lookups + act.derat_lookups).min(1.0);
            }
            ComponentKind::Tlb => {
                ua.accesses = per(act.erat_misses);
                ua.duty = per(act.erat_misses).min(1.0);
            }
            ComponentKind::PrefetchEngine => {
                ua.events = per(act.prefetches_issued + act.l1d_misses);
                ua.event_energy = 1.0;
                ua.duty = per(act.prefetches_issued).min(1.0);
            }
            ComponentKind::StoreDrain => {
                ua.events = per(act.stores + act.store_merges);
                ua.event_energy = 1.2;
                ua.duty = duty_of(act.stores, cfg.store_drain_per_cycle);
            }
            ComponentKind::Completion => {
                ua.events = per(act.completed - act.fused_pairs.min(act.completed) / 2);
                ua.event_energy = 0.8;
                ua.duty = duty_of(act.completed, cfg.completion_width);
            }
            ComponentKind::SprUnit => {
                ua.duty = 0.02;
            }
            ComponentKind::PervasiveClock => {
                // Clock distribution runs whenever the core clocks run.
                ua.duty = 1.0;
            }
            ComponentKind::L2Array => {
                ua.accesses = per(act.l2_accesses);
                ua.duty = per(act.l2_accesses).min(1.0);
            }
            ComponentKind::L2Control => {
                ua.events = per(act.l2_accesses);
                ua.event_energy = 2.0;
                ua.duty = per(act.l2_accesses).min(1.0);
            }
            ComponentKind::L3Array => {
                ua.accesses = per(act.l3_accesses);
                ua.duty = per(act.l3_accesses).min(1.0);
            }
            ComponentKind::L3Control => {
                ua.events = per(act.l3_accesses);
                ua.event_energy = 2.5;
                ua.duty = per(act.l3_accesses).min(1.0);
            }
        }
        ua
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(cycles: u64) -> Activity {
        Activity {
            cycles,
            completed: cycles * 2,
            fetched: cycles * 2,
            decoded: cycles * 2,
            dispatched: cycles * 2,
            issued: cycles * 2,
            alu_ops: cycles,
            branch_ops: cycles / 4,
            branch_predictions: cycles / 4,
            icache_accesses: cycles / 2,
            loads: cycles / 3,
            stores: cycles / 6,
            l1d_accesses: cycles / 2,
            regfile_reads: cycles * 3,
            regfile_writes: cycles * 2,
            window_occupancy_acc: cycles * 64,
            ..Activity::default()
        }
    }

    #[test]
    fn more_activity_never_less_dynamic_power() {
        let cfg = CoreConfig::power10();
        let m = PowerModel::for_config(&cfg);
        let low = m.evaluate(&activity(1000));
        let mut hi_act = activity(1000);
        hi_act.alu_ops *= 2;
        hi_act.loads *= 2;
        hi_act.l1d_accesses *= 2;
        hi_act.vsx_flops = 4000;
        hi_act.vsx_fp_ops = 1000;
        let hi = m.evaluate(&hi_act);
        assert!(hi.total() > low.total());
    }

    #[test]
    fn idle_power_is_clock_floor_plus_leakage() {
        let cfg = CoreConfig::power10();
        let m = PowerModel::for_config(&cfg);
        let idle = m.evaluate(&Activity {
            cycles: 1000,
            ..Activity::default()
        });
        assert!(idle.total() > 0.0, "idle core still burns clock + leakage");
        assert!(idle.active() < 1e-9, "no activity means no active power");
        assert!(idle.leakage() > 0.0);
    }

    #[test]
    fn mma_fully_gated_when_unused() {
        let cfg = CoreConfig::power10();
        let m = PowerModel::for_config(&cfg);
        let r = m.evaluate(&activity(1000));
        assert_eq!(r.component(ComponentKind::MmaGrid), 0.0);
        assert_eq!(r.component(ComponentKind::MmaAccumulators), 0.0);

        let mut act = activity(1000);
        act.mma_ops = 500;
        act.mma_flops = 500 * 32;
        act.mma_active_cycles = 400;
        let r2 = m.evaluate(&act);
        assert!(r2.component(ComponentKind::MmaGrid) > 0.0);
    }

    #[test]
    fn erat_power_tracks_lookups() {
        let cfg = CoreConfig::power9();
        let m = PowerModel::for_config(&cfg);
        let mut few = activity(1000);
        few.derat_lookups = 10;
        let mut many = few;
        many.derat_lookups = 1000;
        many.ierat_lookups = 1000;
        let r_few = m.evaluate(&few);
        let r_many = m.evaluate(&many);
        let dynamic = |r: &crate::PowerReport| {
            r.components
                .iter()
                .find(|c| c.kind == ComponentKind::Erat)
                .unwrap()
                .dynamic()
        };
        assert!(dynamic(&r_many) > dynamic(&r_few) * 5.0);
    }

    #[test]
    fn legacy_style_burns_more_clock_at_idle() {
        let cfg9 = CoreConfig::power9();
        let cfg10 = CoreConfig::power10();
        let idle = Activity {
            cycles: 1000,
            ..Activity::default()
        };
        let p9 = PowerModel::for_config(&cfg9).evaluate(&idle);
        // Evaluate the *POWER10-sized* design with legacy discipline to
        // isolate the discipline effect.
        let p10_legacy = PowerModel::with_style(&cfg10, DesignStyle::Legacy).evaluate(&idle);
        let p10 = PowerModel::for_config(&cfg10).evaluate(&idle);
        assert!(p10.total() < p10_legacy.total());
        assert!(p9.total() > 0.0);
    }

    #[test]
    fn report_has_39_components() {
        let cfg = CoreConfig::power10();
        let r = PowerModel::for_config(&cfg).evaluate(&activity(100));
        assert_eq!(r.components.len(), 39);
    }

    #[test]
    fn ghost_fraction_matches_style() {
        let cfg = CoreConfig::power9();
        let m = PowerModel::for_config(&cfg);
        let r = m.evaluate(&activity(1000));
        let decode = r
            .components
            .iter()
            .find(|cmp| cmp.kind == ComponentKind::Decode)
            .unwrap();
        assert!(decode.ghost > 0.0);
        assert!((decode.ghost / decode.data - 0.30).abs() < 1e-9);
    }
}
