//! # p10-serminer
//!
//! The SERMiner analog: power-aware latch reliability (soft-error)
//! modeling and derating analysis (paper §III-E).
//!
//! SERMiner estimates vulnerability from latch-level switching observed
//! in RTL simulation, using *clock utilization* as the vulnerability
//! proxy (latch data is refreshed every clocked cycle, whether or not the
//! value changes). Latches divide into:
//!
//! * **Static-derated** — never switch through the entire execution of
//!   any target workload (unused structures, configuration latches).
//! * **Runtime-derated** — switch sometimes, but below the Vulnerability
//!   Threshold (VT).
//! * **Vulnerable** — switching activity at or above the VT; candidates
//!   for protection/hardening.
//!
//! The VT semantics follow the paper: higher VT classifies more latches
//! as vulnerable. Operationally, a latch is vulnerable at a given VT if
//! its clock utilization is at least `(1 − VT) ×` the mean utilization of
//! the active population.
//!
//! Inputs are the per-slice (64-latch) switching statistics produced by
//! the detailed RTLSim analog (`p10-rtlsim`), so the derating numbers are
//! grounded in simulated workload behaviour, not assumed distributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use p10_rtlsim::RtlReport;
use serde::{Deserialize, Serialize};

/// Switching below this is "never switches" (static derating).
const STATIC_EPS: f64 = 1e-4;

/// A latch slice merged across workloads: worst-case (maximum) activity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MergedSlice {
    /// Latches in the slice.
    pub latches: f64,
    /// Maximum observed switching across workloads.
    pub max_switching: f64,
    /// Maximum clock-enable fraction across workloads.
    pub max_clock_enable: f64,
}

/// Merges per-workload slice reports into worst-case slice activity.
///
/// # Panics
///
/// Panics if the reports have differing slice layouts (they must come
/// from the same configuration).
#[must_use]
pub fn merge_reports(reports: &[&RtlReport]) -> Vec<MergedSlice> {
    assert!(!reports.is_empty(), "at least one report required");
    let n = reports[0].slices.len();
    let mut out: Vec<MergedSlice> = reports[0]
        .slices
        .iter()
        .map(|s| MergedSlice {
            latches: s.latches,
            max_switching: s.switching,
            max_clock_enable: s.clock_enable,
        })
        .collect();
    for r in &reports[1..] {
        assert_eq!(r.slices.len(), n, "slice layout mismatch across reports");
        for (m, s) in out.iter_mut().zip(r.slices.iter()) {
            m.max_switching = m.max_switching.max(s.switching);
            m.max_clock_enable = m.max_clock_enable.max(s.clock_enable);
        }
    }
    out
}

fn from_single(report: &RtlReport) -> Vec<MergedSlice> {
    merge_reports(&[report])
}

fn total_latches(slices: &[MergedSlice]) -> f64 {
    slices.iter().map(|s| s.latches).sum::<f64>().max(1e-12)
}

/// Fraction of latches that are static-derated (never switch in any
/// workload).
#[must_use]
pub fn static_derating(slices: &[MergedSlice]) -> f64 {
    let st: f64 = slices
        .iter()
        .filter(|s| s.max_switching <= STATIC_EPS)
        .map(|s| s.latches)
        .sum();
    st / total_latches(slices)
}

/// The vulnerability threshold value for a VT in [0, 1]: `(1 − VT)`
/// times the mean clock utilization of the active (non-static) latches.
#[must_use]
pub fn vt_threshold(slices: &[MergedSlice], vt: f64) -> f64 {
    let active: Vec<&MergedSlice> = slices
        .iter()
        .filter(|s| s.max_switching > STATIC_EPS)
        .collect();
    let active_latches: f64 = active.iter().map(|s| s.latches).sum();
    if active_latches <= 0.0 {
        return f64::INFINITY;
    }
    let mean_util: f64 = active
        .iter()
        .map(|s| s.max_clock_enable * s.latches)
        .sum::<f64>()
        / active_latches;
    (1.0 - vt).max(0.0) * mean_util
}

/// Fraction of latches that are runtime-derated at the given VT:
/// non-zero switching but clock utilization below the threshold.
#[must_use]
pub fn runtime_derating(slices: &[MergedSlice], vt: f64) -> f64 {
    let thr = vt_threshold(slices, vt);
    let rt: f64 = slices
        .iter()
        .filter(|s| s.max_switching > STATIC_EPS && s.max_clock_enable < thr)
        .map(|s| s.latches)
        .sum();
    rt / total_latches(slices)
}

/// Fraction of latches classified vulnerable at the given VT.
#[must_use]
pub fn vulnerable_fraction(slices: &[MergedSlice], vt: f64) -> f64 {
    (1.0 - static_derating(slices) - runtime_derating(slices, vt)).max(0.0)
}

/// A row of Fig. 13: derating for one testcase at several VT values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeratingRow {
    /// Testcase name (e.g. `"smt2_dd0_random"`).
    pub testcase: String,
    /// Static derating percentage.
    pub static_pct: f64,
    /// Runtime derating percentage at VT = 10%.
    pub runtime_vt10: f64,
    /// Runtime derating percentage at VT = 50%.
    pub runtime_vt50: f64,
    /// Runtime derating percentage at VT = 90%.
    pub runtime_vt90: f64,
}

/// Computes the Fig. 13 row for one testcase from its detailed report.
#[must_use]
pub fn derating_row(name: &str, report: &RtlReport) -> DeratingRow {
    let slices = from_single(report);
    DeratingRow {
        testcase: name.to_owned(),
        static_pct: static_derating(&slices) * 100.0,
        runtime_vt10: runtime_derating(&slices, 0.10) * 100.0,
        runtime_vt50: runtime_derating(&slices, 0.50) * 100.0,
        runtime_vt90: runtime_derating(&slices, 0.90) * 100.0,
    }
}

/// A point of Fig. 14: average derating versus VT for one design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeratingCurve {
    /// Design name (POWER9 / POWER10).
    pub design: String,
    /// Static derating percentage.
    pub static_pct: f64,
    /// (VT, runtime derating %) points.
    pub runtime_by_vt: Vec<(f64, f64)>,
}

/// Computes the Fig. 14 curve for one design over a merged workload set.
#[must_use]
pub fn derating_curve(design: &str, reports: &[&RtlReport], vts: &[f64]) -> DeratingCurve {
    let slices = merge_reports(reports);
    DeratingCurve {
        design: design.to_owned(),
        static_pct: static_derating(&slices) * 100.0,
        runtime_by_vt: vts
            .iter()
            .map(|&vt| (vt, runtime_derating(&slices, vt) * 100.0))
            .collect(),
    }
}

/// A RAS protection policy (paper: protect everything not statically
/// derated, or only the highly-utilized latches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProtectionPolicy {
    /// Conservative: harden every latch that is not static-derated.
    AllNonStatic,
    /// Aggressive: harden only latches vulnerable at the given VT.
    VulnerableAt(f64),
}

/// Estimated power overhead of a protection policy, assuming hardening a
/// latch costs `harden_cost` of its clock power.
#[must_use]
pub fn protection_overhead(
    slices: &[MergedSlice],
    policy: ProtectionPolicy,
    harden_cost: f64,
) -> f64 {
    let frac = match policy {
        ProtectionPolicy::AllNonStatic => 1.0 - static_derating(slices),
        ProtectionPolicy::VulnerableAt(vt) => vulnerable_fraction(slices, vt),
    };
    frac * harden_cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use p10_rtlsim::{run_detailed, Roi, ToggleDensity};
    use p10_uarch::CoreConfig;
    use p10_workloads::microbench::{generate, DataInit, MicrobenchSpec, OpMix};

    fn report(cfg: &CoreConfig, init: DataInit) -> RtlReport {
        let spec = MicrobenchSpec {
            smt: 1,
            dep_distance: 0,
            init,
            mix: OpMix::Mixed,
        };
        let t = generate(&spec, 7).trace_or_panic(8_000);
        let toggle = match init {
            DataInit::Zero => ToggleDensity::zero_init(),
            DataInit::Random => ToggleDensity::random_init(),
        };
        run_detailed(cfg, vec![t], Roi::new(500, 1_000_000), toggle)
    }

    #[test]
    fn derating_fractions_partition_the_population() {
        let r = report(&CoreConfig::power10(), DataInit::Random);
        let slices = merge_reports(&[&r]);
        for vt in [0.1, 0.5, 0.9] {
            let s = static_derating(&slices);
            let rt = runtime_derating(&slices, vt);
            let v = vulnerable_fraction(&slices, vt);
            assert!((s + rt + v - 1.0).abs() < 1e-9, "partition at vt={vt}");
            assert!(s >= 0.0 && rt >= 0.0 && v >= 0.0);
        }
    }

    #[test]
    fn higher_vt_means_more_vulnerable() {
        let r = report(&CoreConfig::power10(), DataInit::Random);
        let slices = merge_reports(&[&r]);
        let v10 = vulnerable_fraction(&slices, 0.10);
        let v90 = vulnerable_fraction(&slices, 0.90);
        assert!(
            v90 > v10,
            "VT=90% must classify more latches vulnerable: {v10} vs {v90}"
        );
    }

    #[test]
    fn p10_has_higher_runtime_derating_and_lower_static() {
        // Fig. 14: POWER10 runtime derating above POWER9 (aggressive clock
        // gating leaves more latches rarely clocked); static derating
        // lower (fewer never-used latches).
        let p9 = report(&CoreConfig::power9(), DataInit::Random);
        let p10 = report(&CoreConfig::power10(), DataInit::Random);
        let c9 = derating_curve("POWER9", &[&p9], &[0.1, 0.5, 0.9]);
        let c10 = derating_curve("POWER10", &[&p10], &[0.1, 0.5, 0.9]);
        for ((vt, r9), (_, r10)) in c9.runtime_by_vt.iter().zip(c10.runtime_by_vt.iter()) {
            assert!(
                r10 > r9,
                "P10 runtime derating must exceed P9 at VT={vt}: {r9} vs {r10}"
            );
        }
    }

    #[test]
    fn zero_init_derates_more_than_random() {
        let cfg = CoreConfig::power10();
        let zero = report(&cfg, DataInit::Zero);
        let rand = report(&cfg, DataInit::Random);
        let sz = static_derating(&merge_reports(&[&zero]));
        let sr = static_derating(&merge_reports(&[&rand]));
        assert!(
            sz >= sr,
            "zero-init static derating {sz} must be >= random {sr}"
        );
    }

    #[test]
    fn conservative_policy_costs_more_than_aggressive() {
        let r = report(&CoreConfig::power10(), DataInit::Random);
        let slices = merge_reports(&[&r]);
        let all = protection_overhead(&slices, ProtectionPolicy::AllNonStatic, 0.1);
        let aggressive = protection_overhead(&slices, ProtectionPolicy::VulnerableAt(0.10), 0.1);
        assert!(all > aggressive);
        assert!(aggressive > 0.0);
    }

    #[test]
    fn merging_across_workloads_reduces_static_derating() {
        // A latch unused in one workload may be used in another; the
        // merged (suite-level) static derating can only shrink.
        let cfg = CoreConfig::power10();
        let a = report(&cfg, DataInit::Random);
        let spec = MicrobenchSpec {
            smt: 1,
            dep_distance: 1,
            init: DataInit::Random,
            mix: OpMix::Vsx,
        };
        let t = generate(&spec, 9).trace_or_panic(8_000);
        let b = run_detailed(
            &cfg,
            vec![t],
            Roi::new(500, 1_000_000),
            ToggleDensity::random_init(),
        );
        let single = static_derating(&merge_reports(&[&a]));
        let merged = static_derating(&merge_reports(&[&a, &b]));
        assert!(merged <= single + 1e-12);
    }
}
