//! CLI contract of the `figures` driver: bad input fails loudly instead
//! of silently running the wrong experiment or op budget.

use std::process::Command;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = figures().args(args).output().expect("run figures");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{args:?} stderr must mention '{needle}', got: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} stderr must show usage, got: {stderr}"
    );
}

#[test]
fn malformed_ops_fails_loudly() {
    assert_usage_error(&["table1", "--ops", "sixty-thousand"], "invalid --ops");
    assert_usage_error(&["table1", "--ops"], "--ops requires a value");
    assert_usage_error(&["table1", "--ops", "0"], "--ops must be positive");
}

#[test]
fn unknown_experiment_fails_loudly() {
    assert_usage_error(&["fig99"], "unknown experiment 'fig99'");
}

#[test]
fn unknown_flag_fails_loudly() {
    assert_usage_error(&["table1", "--opps", "60000"], "unknown flag '--opps'");
}

#[test]
fn malformed_jobs_fails_loudly() {
    assert_usage_error(&["table1", "--jobs", "many"], "invalid --jobs");
    assert_usage_error(&["table1", "--jobs", "0"], "--jobs must be positive");
}

/// The JSON payload printed after the human-readable header: everything
/// from the first '{'/'[' line to the end of stdout.
fn json_payload(stdout: &str) -> serde_json::Value {
    let start = stdout
        .lines()
        .scan(0usize, |off, line| {
            let this = *off;
            *off += line.len() + 1;
            Some((this, line))
        })
        .find(|(_, l)| l.starts_with('{') || l.starts_with('['))
        .map(|(off, _)| off)
        .expect("JSON payload on stdout");
    serde_json::from_str(&stdout[start..]).expect("payload parses as JSON")
}

/// An object field that must be an unsigned integer.
fn field_u64(v: &serde_json::Value, key: &str) -> u64 {
    match v.get(key) {
        Some(serde_json::Value::U64(n)) => *n,
        other => panic!("field {key} must be u64, got {other:?}"),
    }
}

#[test]
fn quick_experiment_runs_parallel_with_progress() {
    // fig2 is analytic (no core-model simulation), so it is fast even in
    // a test; the engine banner must appear on stderr and JSON on stdout.
    let out = figures()
        .args(["fig2", "--json", "--jobs", "2", "--no-cache"])
        .output()
        .expect("run figures");
    assert!(out.status.success(), "fig2 run failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("2 worker(s)") && stderr.contains("disk cache off"),
        "engine banner missing: {stderr}"
    );
    assert!(
        stderr.contains("[figures] fig2:"),
        "per-experiment timing line missing: {stderr}"
    );
    assert!(
        stderr.contains("[obs] ---- run summary ----"),
        "end-of-run obs summary missing: {stderr}"
    );
    json_payload(&String::from_utf8_lossy(&out.stdout));
}

#[test]
fn apex_speedup_stdout_is_deterministic() {
    // Wall-clock timings moved to stderr/obs; two cold runs must print
    // byte-identical stdout (the cycles/windows line is simulation state).
    let run = || {
        let out = figures()
            .args(["apex-speedup", "--ops", "4000", "--no-cache"])
            .output()
            .expect("run figures");
        assert!(out.status.success(), "apex-speedup run failed: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("apex-speedup wall clock"),
            "wall-clock line must move to stderr"
        );
        out.stdout
    };
    let first = run();
    assert!(
        String::from_utf8_lossy(&first).contains("counter windows over"),
        "deterministic summary line missing: {}",
        String::from_utf8_lossy(&first)
    );
    assert_eq!(
        first,
        run(),
        "apex-speedup stdout must not vary between identical runs"
    );
}

#[test]
fn profile_reports_buckets_that_sum_to_cycles() {
    let out = figures()
        .args(["profile", "--json", "--ops", "2000", "--no-cache"])
        .output()
        .expect("run figures");
    assert!(out.status.success(), "profile run failed: {out:?}");
    let payload = json_payload(&String::from_utf8_lossy(&out.stdout));
    let rows = payload.as_array().expect("profile payload is an array");
    assert!(!rows.is_empty(), "profile must produce rows");
    for row in rows {
        let cycles = field_u64(row, "cycles");
        let attr = row
            .get("attribution")
            .and_then(serde_json::Value::as_object)
            .expect("attribution object");
        let total: u64 = attr
            .iter()
            .map(|(k, v)| match v {
                serde_json::Value::U64(n) => *n,
                other => panic!("bucket {k} must be u64, got {other:?}"),
            })
            .sum();
        assert_eq!(
            total, cycles,
            "attribution buckets must partition the cycles: {row:?}"
        );
    }
}

#[test]
fn trace_out_writes_valid_json_lines() {
    let path = std::env::temp_dir().join(format!("p10sim-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let out = figures()
        .args(["fig2", "--json", "--no-cache", "--trace-out"])
        .arg(&path)
        .output()
        .expect("run figures");
    assert!(out.status.success(), "traced fig2 run failed: {out:?}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "trace file must contain events");
    for line in text.lines() {
        let event: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        field_u64(&event, "t_us");
        field_u64(&event, "thread");
        assert!(
            event
                .get("kind")
                .and_then(serde_json::Value::as_object)
                .is_some(),
            "event missing kind: {line}"
        );
    }
    // The experiment span must be among the events.
    assert!(
        text.lines()
            .any(|l| l.contains("\"Span\"") && l.contains("fig2")),
        "fig2 span event missing from trace"
    );
}
