//! CLI contract of the `figures` driver: bad input fails loudly instead
//! of silently running the wrong experiment or op budget.

use std::process::Command;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = figures().args(args).output().expect("run figures");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{args:?} stderr must mention '{needle}', got: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} stderr must show usage, got: {stderr}"
    );
}

#[test]
fn malformed_ops_fails_loudly() {
    assert_usage_error(&["table1", "--ops", "sixty-thousand"], "invalid --ops");
    assert_usage_error(&["table1", "--ops"], "--ops requires a value");
    assert_usage_error(&["table1", "--ops", "0"], "--ops must be positive");
}

#[test]
fn unknown_experiment_fails_loudly() {
    assert_usage_error(&["fig99"], "unknown experiment 'fig99'");
}

#[test]
fn unknown_flag_fails_loudly() {
    assert_usage_error(&["table1", "--opps", "60000"], "unknown flag '--opps'");
}

#[test]
fn malformed_jobs_fails_loudly() {
    assert_usage_error(&["table1", "--jobs", "many"], "invalid --jobs");
    assert_usage_error(&["table1", "--jobs", "0"], "--jobs must be positive");
}

#[test]
fn quick_experiment_runs_parallel_with_progress() {
    // fig2 is analytic (no core-model simulation), so it is fast even in
    // a test; the engine banner must appear on stderr and JSON on stdout.
    let out = figures()
        .args(["fig2", "--json", "--jobs", "2", "--no-cache"])
        .output()
        .expect("run figures");
    assert!(out.status.success(), "fig2 run failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("2 worker(s)") && stderr.contains("disk cache off"),
        "engine banner missing: {stderr}"
    );
    assert!(
        stderr.contains("[figures] fig2:"),
        "per-experiment timing line missing: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The payload is pretty-printed after the human-readable header:
    // everything from the first '{'/'[' line to the end of stdout.
    let start = stdout
        .lines()
        .scan(0usize, |off, line| {
            let this = *off;
            *off += line.len() + 1;
            Some((this, line))
        })
        .find(|(_, l)| l.starts_with('{') || l.starts_with('['))
        .map(|(off, _)| off)
        .expect("JSON payload on stdout");
    serde_json::from_str::<serde_json::Value>(&stdout[start..]).expect("payload parses as JSON");
}
