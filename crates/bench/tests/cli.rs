//! CLI contract of the `figures` driver: bad input fails loudly instead
//! of silently running the wrong experiment or op budget.

use std::process::Command;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = figures().args(args).output().expect("run figures");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{args:?} stderr must mention '{needle}', got: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} stderr must show usage, got: {stderr}"
    );
}

#[test]
fn malformed_ops_fails_loudly() {
    assert_usage_error(&["table1", "--ops", "sixty-thousand"], "invalid --ops");
    assert_usage_error(&["table1", "--ops"], "--ops requires a value");
    assert_usage_error(&["table1", "--ops", "0"], "--ops must be positive");
}

#[test]
fn unknown_experiment_fails_loudly() {
    assert_usage_error(&["fig99"], "unknown experiment 'fig99'");
}

#[test]
fn unknown_flag_fails_loudly() {
    assert_usage_error(&["table1", "--opps", "60000"], "unknown flag '--opps'");
}

#[test]
fn malformed_jobs_fails_loudly() {
    assert_usage_error(&["table1", "--jobs", "many"], "invalid --jobs");
    assert_usage_error(&["table1", "--jobs", "0"], "--jobs must be positive");
}

/// The JSON payload printed after the human-readable header: everything
/// from the first '{'/'[' line to the end of stdout.
fn json_payload(stdout: &str) -> serde_json::Value {
    let start = stdout
        .lines()
        .scan(0usize, |off, line| {
            let this = *off;
            *off += line.len() + 1;
            Some((this, line))
        })
        .find(|(_, l)| l.starts_with('{') || l.starts_with('['))
        .map(|(off, _)| off)
        .expect("JSON payload on stdout");
    serde_json::from_str(&stdout[start..]).expect("payload parses as JSON")
}

/// An object field that must be an unsigned integer.
fn field_u64(v: &serde_json::Value, key: &str) -> u64 {
    match v.get(key) {
        Some(serde_json::Value::U64(n)) => *n,
        other => panic!("field {key} must be u64, got {other:?}"),
    }
}

#[test]
fn quick_experiment_runs_parallel_with_progress() {
    // fig2 is analytic (no core-model simulation), so it is fast even in
    // a test; the engine banner must appear on stderr and JSON on stdout.
    let out = figures()
        .args(["fig2", "--json", "--jobs", "2", "--no-cache"])
        .output()
        .expect("run figures");
    assert!(out.status.success(), "fig2 run failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("2 worker(s)") && stderr.contains("disk cache off"),
        "engine banner missing: {stderr}"
    );
    assert!(
        stderr.contains("[figures] fig2:"),
        "per-experiment timing line missing: {stderr}"
    );
    assert!(
        stderr.contains("[obs] ---- run summary ----"),
        "end-of-run obs summary missing: {stderr}"
    );
    json_payload(&String::from_utf8_lossy(&out.stdout));
}

#[test]
fn apex_speedup_stdout_is_deterministic() {
    // Wall-clock timings moved to stderr/obs; two cold runs must print
    // byte-identical stdout (the cycles/windows line is simulation state).
    let run = || {
        let out = figures()
            .args(["apex-speedup", "--ops", "4000", "--no-cache"])
            .output()
            .expect("run figures");
        assert!(out.status.success(), "apex-speedup run failed: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("apex-speedup wall clock"),
            "wall-clock line must move to stderr"
        );
        out.stdout
    };
    let first = run();
    assert!(
        String::from_utf8_lossy(&first).contains("counter windows over"),
        "deterministic summary line missing: {}",
        String::from_utf8_lossy(&first)
    );
    assert_eq!(
        first,
        run(),
        "apex-speedup stdout must not vary between identical runs"
    );
}

#[test]
fn profile_reports_buckets_that_sum_to_cycles() {
    let out = figures()
        .args(["profile", "--json", "--ops", "2000", "--no-cache"])
        .output()
        .expect("run figures");
    assert!(out.status.success(), "profile run failed: {out:?}");
    let payload = json_payload(&String::from_utf8_lossy(&out.stdout));
    let rows = payload.as_array().expect("profile payload is an array");
    assert!(!rows.is_empty(), "profile must produce rows");
    for row in rows {
        let cycles = field_u64(row, "cycles");
        let attr = row
            .get("attribution")
            .and_then(serde_json::Value::as_object)
            .expect("attribution object");
        let total: u64 = attr
            .iter()
            .map(|(k, v)| match v {
                serde_json::Value::U64(n) => *n,
                other => panic!("bucket {k} must be u64, got {other:?}"),
            })
            .sum();
        assert_eq!(
            total, cycles,
            "attribution buckets must partition the cycles: {row:?}"
        );
    }
}

#[test]
fn trace_out_writes_valid_json_lines() {
    let path = std::env::temp_dir().join(format!("p10sim-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let out = figures()
        .args(["fig2", "--json", "--no-cache", "--trace-out"])
        .arg(&path)
        .output()
        .expect("run figures");
    assert!(out.status.success(), "traced fig2 run failed: {out:?}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "trace file must contain events");
    for line in text.lines() {
        let event: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        field_u64(&event, "t_us");
        field_u64(&event, "thread");
        assert!(
            event
                .get("kind")
                .and_then(serde_json::Value::as_object)
                .is_some(),
            "event missing kind: {line}"
        );
    }
    // The experiment span must be among the events.
    assert!(
        text.lines()
            .any(|l| l.contains("\"Span\"") && l.contains("fig2")),
        "fig2 span event missing from trace"
    );
}

/// A unique scratch path under the system temp dir.
fn scratch(tag: &str, leaf: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static UNIQ: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "p10sim-cli-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d.join(leaf)
}

#[test]
fn chrome_trace_is_valid_and_tracks_workers() {
    let path = scratch("chrome", "trace.json");
    let out = figures()
        .args([
            "table1",
            "--json",
            "--ops",
            "800",
            "--jobs",
            "2",
            "--no-cache",
            "--no-ledger",
            "--trace-format",
            "chrome",
            "--trace-out",
        ])
        .arg(&path)
        .output()
        .expect("run figures");
    assert!(out.status.success(), "chrome-traced run failed: {out:?}");
    let text = std::fs::read_to_string(&path).expect("chrome trace written");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");

    let field_str = |v: &serde_json::Value, key: &str| -> String {
        match v.get(key) {
            Some(serde_json::Value::Str(s)) => s.clone(),
            other => panic!("field {key} must be a string, got {other:?}"),
        }
    };
    // Validity: every event on a (pid, tid) track, ts monotonic per track.
    let mut last_ts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut phases = Vec::new();
    let mut track_names = Vec::new();
    for e in events.iter() {
        let tid = field_u64(e, "tid");
        let ts = field_u64(e, "ts");
        let prev = last_ts.entry(tid).or_insert(0);
        assert!(*prev <= ts, "ts must be monotonic per track: {e:?}");
        *prev = ts;
        let ph = field_str(e, "ph");
        if ph == "X" && field_str(e, "name") == "table1" {
            phases.push(tid);
        }
        if ph == "M" {
            track_names.push(field_str(e.get("args").expect("metadata args"), "name"));
        }
    }
    assert_eq!(phases.len(), 1, "one table1 slice expected");
    for want in ["main", "worker00", "worker01"] {
        assert!(
            track_names.iter().any(|n| n == want),
            "track '{want}' missing from {track_names:?}"
        );
    }
    // Per-job slices carry the job category for Perfetto filtering.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.get("cat"), Some(serde_json::Value::Str(c)) if c == "job")),
        "job slices missing from trace"
    );
}

#[test]
fn ledger_records_runs_and_gate_passes_on_repeat() {
    let dir = scratch("ledger", "");
    let run = || {
        let out = figures()
            .args(["fig2", "--json", "--no-cache", "--ledger-dir"])
            .arg(&dir)
            .output()
            .expect("run figures");
        assert!(out.status.success(), "fig2 run failed: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("[figures] ledger: run"),
            "ledger append note missing from stderr"
        );
    };
    run();
    run();
    let text = std::fs::read_to_string(dir.join("ledger.jsonl")).expect("ledger written");
    let records: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad ledger line {l:?}: {e}")))
        .collect();
    assert_eq!(records.len(), 2, "one record per run");
    for r in &records {
        assert_eq!(field_u64(r, "schema"), 1);
        assert!(
            matches!(r.get("experiment"), Some(serde_json::Value::Str(s)) if s == "fig2"),
            "experiment field wrong: {r:?}"
        );
        assert!(r.get("machine").is_some() && r.get("summary").is_some());
    }
    // A repeat run at the same speed passes a generous gate.
    let report = figures()
        .args(["obsreport", "--gate", "10000", "--ledger-dir"])
        .arg(&dir)
        .output()
        .expect("run obsreport");
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert_eq!(
        report.status.code(),
        Some(0),
        "repeat run must pass the gate: {stdout}"
    );
    assert!(
        stdout.contains("gate: PASS"),
        "missing PASS verdict: {stdout}"
    );
}

/// Builds a synthetic ledger record with a given per-phase profile,
/// exercising the same `RunRecord` path `figures` uses.
fn synthetic_record(phases: &[(&str, f64)]) -> p10_obs::ledger::RunRecord {
    let summary = p10_obs::Summary {
        total_wall_s: phases.iter().map(|(_, w)| w).sum(),
        phases: phases
            .iter()
            .map(|&(name, wall_s)| p10_obs::PhaseSummary {
                name: name.into(),
                wall_s,
                calls: 1,
            })
            .collect(),
        ..p10_obs::Summary::default()
    };
    p10_obs::ledger::RunRecord::from_summary(
        &p10_obs::ledger::RunIdentity {
            experiment: "all".into(),
            config_text: "jobs=2".into(),
            workload_text: "all|ops=2000".into(),
            sampling_key: "exact".into(),
            ops: 2000,
            jobs: 2,
            started_unix_ms: 1_700_000_000_000,
        },
        summary,
    )
}

#[test]
fn obsreport_gate_fails_on_synthetically_slowed_run() {
    let dir = scratch("gate", "");
    let baseline = synthetic_record(&[("fig2", 0.5), ("fig4", 1.5)]);
    let slowed = synthetic_record(&[("fig2", 0.5), ("fig4", 4.5)]);
    p10_obs::ledger::append(&dir, &baseline).expect("append baseline");
    p10_obs::ledger::append(&dir, &slowed).expect("append slowed");
    let report = |gate: &str| {
        figures()
            .args(["obsreport", "--gate", gate, "--ledger-dir"])
            .arg(&dir)
            .output()
            .expect("run obsreport")
    };
    let out = report("50");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "slowed run must fail the gate: {stdout}"
    );
    assert!(
        stdout.contains("gate: FAIL"),
        "missing FAIL verdict: {stdout}"
    );
    assert!(
        stdout.contains("REGRESSION total") && stdout.contains("REGRESSION fig4"),
        "regressed phases must be named: {stdout}"
    );
    // Appending a recovered run flips the verdict back to PASS.
    let recovered = synthetic_record(&[("fig2", 0.5), ("fig4", 1.5)]);
    p10_obs::ledger::append(&dir, &recovered).expect("append recovered");
    let out = report("50");
    assert_eq!(
        out.status.code(),
        Some(0),
        "recovered run must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn stdout_is_byte_identical_with_flight_recorder_enabled() {
    // The acceptance invariant: ledger + Chrome trace + obs-json must
    // have zero effect on experiment stdout.
    let plain = figures()
        .args(["table1", "--ops", "800", "--no-cache", "--no-ledger"])
        .output()
        .expect("plain run");
    assert!(plain.status.success(), "plain run failed: {plain:?}");
    let instrumented = figures()
        .args(["table1", "--ops", "800", "--no-cache", "--ledger-dir"])
        .arg(scratch("ident", ""))
        .args(["--trace-format", "chrome", "--trace-out"])
        .arg(scratch("ident-trace", "trace.json"))
        .arg("--obs-json")
        .arg(scratch("ident-obs", "obs.json"))
        .output()
        .expect("instrumented run");
    assert!(
        instrumented.status.success(),
        "instrumented run failed: {instrumented:?}"
    );
    assert_eq!(
        plain.stdout, instrumented.stdout,
        "flight-recorder outputs must not perturb stdout"
    );
}

#[test]
fn gate_flag_outside_obsreport_fails_loudly() {
    assert_usage_error(&["table1", "--gate", "50"], "--gate/--baseline");
    assert_usage_error(&["obsreport", "--gate", "many"], "invalid --gate");
}
