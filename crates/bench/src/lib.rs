//! # p10-bench
//!
//! Benchmark harness and figure regeneration for the `p10sim`
//! reproduction.
//!
//! * The [`figures`](../figures/index.html) binary
//!   (`cargo run --release -p p10-bench --bin figures -- all`) regenerates
//!   every table and figure of the paper, printing the same rows/series
//!   the paper reports (and `--json` for machine-readable output). See
//!   `EXPERIMENTS.md` at the repository root for paper-vs-measured values.
//! * The Criterion benches (`cargo bench`) time the simulation substrate
//!   itself (core model throughput, detailed-vs-APEX extraction, kernel
//!   replay) and run scaled-down versions of each experiment so
//!   regressions in either speed or experimental shape are caught.
//!
//! This library crate hosts shared helpers for both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use p10_workloads::{specint_like, Benchmark};

/// The default op budget per workload for full figure regeneration.
pub const FULL_OPS: u64 = 60_000;

/// A reduced op budget for quick (bench-harness) runs.
pub const QUICK_OPS: u64 = 12_000;

/// The standard suite used by the figure regenerators.
#[must_use]
pub fn suite() -> Vec<Benchmark> {
    specint_like()
}

/// A small slice of the suite for timing-oriented benches.
#[must_use]
pub fn small_suite() -> Vec<Benchmark> {
    let mut s = specint_like();
    s.truncate(3);
    s
}
